//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so this crate
//! reimplements the subset of proptest the workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range/tuple/`any`/`collection::vec`
//! strategies, and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** On failure the panic message reports the case number
//!   and the generated inputs; cases are deterministic per test name, so a
//!   failure always reproduces.
//! - **Deterministic seeding.** Case `k` of test `t` derives its RNG from
//!   FNV-1a over `t` mixed with `k` — no environment-dependent entropy, which
//!   makes CI and the parallel sweep driver reproducible by construction.
//! - **Rejection handling.** `prop_assume!` rejects a case without counting
//!   it; a test aborts if fewer than the configured cases are accepted after
//!   20× that many attempts (matching proptest's spirit, not its letter).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index, so each (test, case) pair gets an independent stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; carries the assertion message.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// References to strategies are strategies (lets helpers borrow).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rng.next_u64()) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// A value with a canonical "any" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` — a vector of `len` (a `usize` or a range of
    /// `usize`) elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a boolean condition inside a `proptest!` body.
///
/// On failure the current case returns an error (no panic mid-case), and the
/// runner panics with the case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: `{:?}`",
            format!($($fmt)*),
            left
        );
    }};
}

/// Reject the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors the real macro's grammar for the subset
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..=1, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while accepted < config.cases {
                    assert!(
                        attempt < max_attempts,
                        "proptest {}: too many rejected cases ({} accepted of {} wanted \
                         after {} attempts)",
                        test_name, accepted, config.cases, attempt
                    );
                    let mut rng = $crate::TestRng::for_case(test_name, attempt);
                    attempt += 1;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*
                    ].join(", ");
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (deterministic; re-run \
                                 reproduces): {}\n  inputs: {}",
                                test_name, attempt - 1, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (2usize..=10).prop_flat_map(|n| crate::collection::vec(0u8..=1, n));
        let mut a = crate::TestRng::for_case("t", 5);
        let mut b = crate::TestRng::for_case("t", 5);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0u8..=1).sample(&mut rng);
            assert!(y <= 1);
            let z = (1i64..500).sample(&mut rng);
            assert!((1..500).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts pass, assume rejects odd.
        #[test]
        fn macro_roundtrip(x in 0u64..1000, v in crate::collection::vec(0u8..=1, 2..6)) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x < 1000);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len() + 1, v.len(), "lengths differ by one: {}", v.len());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
