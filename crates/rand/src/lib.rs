//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no cached registry, so the
//! real `rand` cannot be fetched. This crate provides the (small) API surface
//! the workspace actually uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` and `seq::SliceRandom::shuffle` — backed by the
//! same SplitMix64 generator the simulator already uses for its own
//! deterministic randomness (`WakeSchedule::random`, `RandomScheduler`).
//!
//! Determinism is a feature here, not a compromise: every experiment table
//! and property test in the repo seeds explicitly via `seed_from_u64`, and
//! this implementation is stable across platforms and releases.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "by default" (the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Widen to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrow back from `i128`; only called with in-range values.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts. Generic over the element type so
/// the output type drives literal inference, as in the real crate
/// (`rng.gen_range(0..=1)` in `u8` position samples `u8`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        let offset = u128::from(rng.next_u64()) % span;
        T::from_i128(lo + offset as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        let offset = u128::from(rng.next_u64()) % span;
        T::from_i128(lo + offset as i128)
    }
}

/// High-level convenience sampling, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its default distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real crate's ChaCha-based `StdRng` this is not
    /// cryptographic, which is fine: it is only used to seed experiment
    /// grids and property tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain), same constants as the simulator's
            // internal scheduler RNG.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=1);
            assert!(y <= 1);
            let z = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
        assert_ne!(v, (0..50).collect::<Vec<u64>>(), "seed 3 should permute");
    }
}
