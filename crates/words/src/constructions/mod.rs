//! The concrete repetitive-string constructions of §6.3 and §7.
//!
//! Each synchronous lower bound in the paper needs ring configurations in
//! which every short pattern repeats `Ω(n/|σ|)` times. This module builds
//! them:
//!
//! * [`xor`] — fooling input pairs for XOR: exact sizes `n = 3ᵏ` (§6.3.1)
//!   and arbitrary sizes via the non-uniform homomorphism and Theorem 7.5
//!   (§7.1.1);
//! * [`orientation`] — symmetric orientation assignments: exact sizes
//!   `n = 3ᵏ` (§6.3.2) and arbitrary odd sizes via the two-stage
//!   construction (§7.2.1);
//! * [`start_sync`] — adversarial wake-up words: exact sizes `n = 4·3ᵏ`
//!   (§6.3.3) and arbitrary even sizes (§7.2.2);
//! * [`pull_back`] — the Theorem 7.5 inverse-matrix iteration shared by the
//!   arbitrary-size constructions.

pub mod orientation;
pub mod start_sync;
pub mod xor;

use std::error::Error;
use std::fmt;

use crate::matrix::{Mat2, Vec2};

pub use orientation::{orientation_arbitrary, orientation_exact, OrientationWitness};
pub use start_sync::{start_sync_arbitrary, start_sync_exact, StartSyncWitness};
pub use xor::{xor_arbitrary, xor_exact, XorPair};

/// Errors from the string constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstructionError {
    /// The requested size is below the construction's minimum.
    TooSmall {
        /// Requested ring size.
        n: usize,
        /// Smallest supported size.
        min: usize,
    },
    /// The construction requires the opposite parity of `n`.
    WrongParity {
        /// Requested ring size.
        n: usize,
        /// `true` if an even size was required.
        needs_even: bool,
    },
    /// An internal feasibility condition failed (should not happen for
    /// supported sizes; reported rather than panicking).
    Infeasible(&'static str),
}

impl fmt::Display for ConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructionError::TooSmall { n, min } => {
                write!(f, "ring size {n} below construction minimum {min}")
            }
            ConstructionError::WrongParity { n, needs_even } => write!(
                f,
                "ring size {n} has wrong parity (construction needs {})",
                if *needs_even { "even" } else { "odd" }
            ),
            ConstructionError::Infeasible(what) => {
                write!(f, "construction infeasible: {what}")
            }
        }
    }
}

impl Error for ConstructionError {}

/// Theorem 7.5's inverse iteration: given a unimodular positive matrix `A`
/// and a positive integer vector `u` close to a dominant eigenvector,
/// repeatedly applies `A⁻¹` while the result stays strictly positive.
///
/// Returns `(v, k)` with `v = A⁻ᵏ·u` positive and `k` maximal. By
/// Theorem 7.5, if `|u| = n` and `u` is within `O(1)` of `n·w₀`, then
/// `|v| = O(√n)` — the base string from which `u`'s word is grown by `k`
/// homomorphism applications.
///
/// # Panics
///
/// Panics if `A` is not unimodular (`|det A| ≠ 1`) or `u` is not positive.
#[must_use]
pub fn pull_back(a: Mat2, u: Vec2) -> (Vec2, usize) {
    let inv = a
        .unimodular_inverse()
        .expect("pull_back requires |det A| = 1");
    assert!(u.is_positive(), "pull_back requires a positive vector");
    let mut v = u;
    let mut k = 0;
    loop {
        let next = inv.mul_vec(v);
        if !next.is_positive() {
            return (v, k);
        }
        v = next;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_back_inverts_exactly() {
        // XOR matrix: columns (1,2), (1,1), det -1.
        let a = Mat2::from_columns(Vec2::new(1, 2), Vec2::new(1, 1));
        let u = Vec2::new(414, 586); // ~ 1000 * (1, sqrt 2)/(1+sqrt 2)
        let (v, k) = pull_back(a, u);
        assert!(k >= 1, "should pull back at least once");
        // Re-applying A k times recovers u exactly.
        let mut w = v;
        for _ in 0..k {
            w = a.mul_vec(w);
        }
        assert_eq!(w, u);
        // The base is much smaller than the original.
        assert!(v.size() * 4 < u.size());
    }

    #[test]
    fn pull_back_stops_at_positivity_boundary() {
        let a = Mat2::from_columns(Vec2::new(1, 2), Vec2::new(1, 1));
        // A vector far from the eigenvector dies quickly but the result is
        // still positive.
        let (v, _) = pull_back(a, Vec2::new(1, 999));
        assert!(v.is_positive());
    }

    #[test]
    fn errors_display() {
        assert!(ConstructionError::TooSmall { n: 3, min: 486 }
            .to_string()
            .contains("486"));
        assert!(ConstructionError::WrongParity {
            n: 4,
            needs_even: false
        }
        .to_string()
        .contains("odd"));
    }
}
