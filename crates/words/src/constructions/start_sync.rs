//! Adversarial wake-up words for start synchronization (§6.3.3 exact
//! sizes, §7.2.2 arbitrary even sizes).

use crate::constructions::ConstructionError;
use crate::homomorphism::Homomorphism;
use crate::number::lemma_7_8;
use crate::word::Word;

/// The §6.3.3 homomorphism `0 → 011, 1 → 100` (shared with the XOR lower
/// bound).
#[must_use]
pub fn homomorphism() -> Homomorphism {
    Homomorphism::parse("011", "100")
}

/// A wake-up word witness: a balanced ε-word whose ±1 walk gives an
/// adversary start schedule forcing `Ω(n log n)` synchronization messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartSyncWitness {
    /// The ε-word `ω` (equal numbers of zeros and ones, so the walk wraps
    /// legally).
    pub word: Word,
    /// Number of inner homomorphism applications.
    pub iterations: usize,
    /// Two processors guaranteed to wake at different cycles while having
    /// identical large neighborhoods (0-based indices).
    pub distinct_pair: (usize, usize),
}

impl StartSyncWitness {
    /// Ring size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.word.len()
    }
}

/// §6.3.3: the exact-size wake word `ω = σ₀σ₀σ₁σ₁ = h^k(0011)` with
/// `σ₀ = h^k(0)`, `σ₁ = h^k(1) = complement(σ₀)` and `n = 4·3ᵏ`.
///
/// The walk of `σ₀` does not return to zero (its numbers of ones and zeros
/// differ), so processors `⌊m/2⌋` and `⌊3m/2⌋` (`m = 3ᵏ`) wake at
/// different cycles; yet they have the same `⌊m/2⌋`-neighborhood.
///
/// ```
/// use anonring_words::constructions::start_sync_exact;
/// let w = start_sync_exact(2);
/// assert_eq!(w.n(), 36);
/// assert_eq!(w.word.ones(), w.word.zeros());
/// ```
#[must_use]
pub fn start_sync_exact(k: usize) -> StartSyncWitness {
    let h = homomorphism();
    let word = h.iterate(&Word::parse("0011"), k);
    let m = 3usize.pow(k as u32);
    StartSyncWitness {
        word,
        iterations: k,
        distinct_pair: (m / 2, 3 * m / 2),
    }
}

/// Smallest even ring size supported by [`start_sync_arbitrary`]
/// (`k ≥ 1` requires `m = n/2 ≥ 3⁵`).
pub const START_SYNC_ARBITRARY_MIN_N: usize = 486;

/// §7.2.2: the two-stage wake word for an arbitrary even `n = 2m ≥ 486`.
///
/// The inner word `ω' = h^{2k}(0)` has `p` zeros and `q` ones with
/// `|p − q| = 1`; Lemma 7.8 gives block shapes `H(0) = 0^{z₀}1^{o₀}`,
/// `H(1) = 0^{z₁}1^{o₁}` solving `z₀p + z₁q = o₀p + o₁q = m`, so
/// `ω = H(ω')` is balanced of length `n`. Corollary 7.7 makes every
/// mid-scale subword repeat `Ω(n/|σ|)` times.
///
/// # Errors
///
/// * [`ConstructionError::WrongParity`] for odd `n`;
/// * [`ConstructionError::TooSmall`] below the minimum size;
/// * [`ConstructionError::Infeasible`] if a positivity condition fails
///   (does not happen for supported sizes).
pub fn start_sync_arbitrary(n: usize) -> Result<StartSyncWitness, ConstructionError> {
    if !n.is_multiple_of(2) {
        return Err(ConstructionError::WrongParity {
            n,
            needs_even: true,
        });
    }
    if n < START_SYNC_ARBITRARY_MIN_N {
        return Err(ConstructionError::TooSmall {
            n,
            min: START_SYNC_ARBITRARY_MIN_N,
        });
    }
    let m = n / 2;
    let h = homomorphism();
    let log3m = (m as f64).ln() / 3f64.ln();
    let k = (((log3m - 1.0) / 4.0).floor() as usize).max(1);
    let omega_prime = h.iterate(&Word::parse("0"), 2 * k);
    let p = omega_prime.zeros() as u64;
    let q = omega_prime.ones() as u64;
    debug_assert_eq!(p.abs_diff(q), 1);
    // Zeros: z0 blocks of H(0), z1 of H(1) with z0 p + z1 q = m.
    let (z0, z1) = lemma_7_8(p, q, m as u64);
    // Ones: a second solution of the same equation.
    let candidates = [
        (z0 + q as i64, z1 - p as i64),
        (z0 - q as i64, z1 + p as i64),
    ];
    let (o0, o1) = candidates
        .into_iter()
        .find(|&(a, b)| a > 0 && b > 0)
        .ok_or(ConstructionError::Infeasible(
            "no positive solution for the ones counts",
        ))?;
    if z0 <= 0 || z1 <= 0 {
        return Err(ConstructionError::Infeasible(
            "zeros block multiplicities not positive",
        ));
    }
    let h0 = Word::constant(0, z0 as usize).concat(&Word::constant(1, o0 as usize));
    let h1 = Word::constant(0, z1 as usize).concat(&Word::constant(1, o1 as usize));
    let big_h = Homomorphism::new(h0, h1);
    let word = big_h.apply(&omega_prime);
    debug_assert_eq!(word.len(), n);
    debug_assert_eq!(word.ones(), m);

    // The middle third H(h^{2k-1}(1)) is unbalanced, forcing Omega(n)
    // active cycles; two processors inside the unequal halves wake at
    // different times. We locate a concrete unequal pair by walking.
    let distinct_pair = unequal_wake_pair(&word);

    Ok(StartSyncWitness {
        word,
        iterations: 2 * k,
        distinct_pair,
    })
}

/// Finds two indices whose ±1 walk values differ (hence wake at different
/// cycles).
///
/// # Panics
///
/// Panics if the walk is constant, which cannot happen for a word
/// containing both symbols.
fn unequal_wake_pair(word: &Word) -> (usize, usize) {
    let mut t = 0i64;
    let mut values = Vec::with_capacity(word.len());
    for &e in word.as_slice() {
        t += if e == 1 { 1 } else { -1 };
        values.push(t);
    }
    let min = values
        .iter()
        .enumerate()
        .min_by_key(|&(_, v)| v)
        .expect("nonempty");
    let max = values
        .iter()
        .enumerate()
        .max_by_key(|&(_, v)| v)
        .expect("nonempty");
    assert!(min.1 != max.1, "constant walk");
    (min.0, max.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_word_is_balanced_but_thirds_are_not() {
        for k in 1..6 {
            let w = start_sync_exact(k);
            assert_eq!(w.n(), 4 * 3usize.pow(k as u32));
            assert_eq!(w.word.ones(), w.word.zeros(), "k={k}");
            let sigma0 = homomorphism().iterate(&Word::parse("0"), k);
            assert_ne!(sigma0.ones(), sigma0.zeros(), "k={k}");
            // omega = sigma0 sigma0 sigma1 sigma1 with sigma1 = comp.
            let sigma1 = sigma0.complement();
            assert_eq!(
                w.word,
                sigma0.concat(&sigma0).concat(&sigma1).concat(&sigma1),
                "k={k}"
            );
        }
    }

    #[test]
    fn exact_distinct_pair_wakes_at_different_cycles() {
        for k in 1..5 {
            let w = start_sync_exact(k);
            let mut t = 0i64;
            let mut walk = Vec::new();
            for &e in w.word.as_slice() {
                t += if e == 1 { 1 } else { -1 };
                walk.push(t);
            }
            let (i, j) = w.distinct_pair;
            assert_ne!(walk[i], walk[j], "k={k}");
        }
    }

    #[test]
    fn arbitrary_rejects_bad_sizes() {
        assert!(matches!(
            start_sync_arbitrary(487),
            Err(ConstructionError::WrongParity { .. })
        ));
        assert!(matches!(
            start_sync_arbitrary(100),
            Err(ConstructionError::TooSmall { .. })
        ));
    }

    #[test]
    fn arbitrary_word_is_balanced_with_distinct_pair() {
        for n in [486usize, 500, 1000, 2026, 9998, 20_000] {
            let w = start_sync_arbitrary(n).unwrap();
            assert_eq!(w.n(), n, "n={n}");
            assert_eq!(w.word.ones(), n / 2, "n={n}");
            let mut t = 0i64;
            let mut walk = Vec::new();
            for &e in w.word.as_slice() {
                t += if e == 1 { 1 } else { -1 };
                walk.push(t);
            }
            assert_eq!(*walk.last().unwrap(), 0, "n={n}: legal wrap");
            let (i, j) = w.distinct_pair;
            assert_ne!(walk[i], walk[j], "n={n}");
        }
    }

    #[test]
    fn arbitrary_word_is_repetitive_at_mid_scales() {
        let n = 2000;
        let w = start_sync_arbitrary(n).unwrap();
        // Block length is Theta(sqrt n); mid-scale subwords repeat.
        let block = (n as f64).sqrt() as usize;
        for len in [block, 2 * block] {
            let min = w.word.min_cyclic_occurrences(len);
            let need = n as f64 / (400.0 * len as f64);
            assert!(min as f64 >= need, "len={len}: {min} < {need}");
        }
    }
}
