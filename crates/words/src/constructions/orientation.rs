//! Symmetric orientation assignments (§6.3.2 exact sizes, §7.2.1
//! arbitrary odd sizes).

use crate::constructions::ConstructionError;
use crate::homomorphism::Homomorphism;
use crate::number::lemma_7_8;
use crate::word::Word;

/// The §6.3.2 homomorphism `0 → 011, 1 → 001`, which satisfies
/// `h(0) = complement(reverse(h(1)))` — the identity that plants mirrored
/// neighborhoods with opposite orientations.
#[must_use]
pub fn exact_homomorphism() -> Homomorphism {
    Homomorphism::parse("011", "001")
}

/// The §7.2.1 inner homomorphism `0 → 00100, 1 → 11011` (uniform, `d = 5`,
/// `c = 2`, palindromic images).
#[must_use]
pub fn arbitrary_inner_homomorphism() -> Homomorphism {
    Homomorphism::parse("00100", "11011")
}

/// §6.3.2: the orientation assignment `D = h^k(0)` for a ring of size
/// `n = 3ᵏ` (each bit is a processor's `D(i)`).
///
/// Processors `⌈n/6⌉` and `⌈n/2⌉` (1-based) have identical
/// `(⌈n/6⌉ − 1)`-neighborhoods but opposite orientations, and every short
/// neighborhood repeats `Ω(n/k)` times — making the single configuration a
/// fooling pair with itself.
///
/// ```
/// use anonring_words::constructions::orientation_exact;
/// let d = orientation_exact(3);
/// assert_eq!(d.len(), 27);
/// ```
#[must_use]
pub fn orientation_exact(k: usize) -> Word {
    exact_homomorphism().iterate(&Word::parse("0"), k)
}

/// The §7.2.1 two-stage construction for an arbitrary odd ring size:
/// an ε-word `ω` of length `n` such that
///
/// * every cyclic subword of length `Θ(√n) ≤ |σ| ≤ Θ(n)` occurs
///   `Ω(n/|σ|)` times (Corollary 7.7),
/// * `ω` has an even number of ones (so the prefix-XOR orientations
///   `Dᵃ = prefix_xor(ω)` and `Dᵇ = complement(Dᵃ)` are well defined), and
/// * `ω` contains a palindrome of length `> n/6` with a 1 at its center —
///   which plants two adjacent processors with opposite orientations and
///   identical large neighborhoods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientationWitness {
    /// The ε-word `ω = H(h^{2k}(0))`.
    pub epsilon: Word,
    /// Inner iteration count (`2k` applications of `h`).
    pub inner_iterations: usize,
    /// `H(0) = 0^r`.
    pub r: usize,
    /// `H(1) = 1^s` (odd).
    pub s: usize,
    /// Index of the central 1 of the leading palindromic block
    /// `H(h^{2k−1}(0))`.
    pub palindrome_center: usize,
    /// Length of that palindromic block (`> n/6`).
    pub palindrome_len: usize,
}

impl OrientationWitness {
    /// Ring size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.epsilon.len()
    }

    /// The orientation assignment `Dᵃ(i) = ε₁ ⊕ … ⊕ ε_i`.
    #[must_use]
    pub fn orientation_a(&self) -> Word {
        self.epsilon.prefix_xor()
    }

    /// The complementary assignment `Dᵇ = complement(Dᵃ)`.
    #[must_use]
    pub fn orientation_b(&self) -> Word {
        self.orientation_a().complement()
    }
}

/// Smallest ring size supported by [`orientation_arbitrary`]
/// (`k ≥ 1` requires `log₅ n ≥ 5`).
pub const ORIENTATION_ARBITRARY_MIN_N: usize = 3125;

/// §7.2.1: builds the two-stage orientation witness for an arbitrary odd
/// `n ≥ 3125`.
///
/// # Errors
///
/// * [`ConstructionError::WrongParity`] for even `n` (even rings cannot be
///   oriented, Theorem 3.5);
/// * [`ConstructionError::TooSmall`] below the minimum size;
/// * [`ConstructionError::Infeasible`] if an internal positivity condition
///   fails (does not happen for supported sizes).
pub fn orientation_arbitrary(n: usize) -> Result<OrientationWitness, ConstructionError> {
    if n.is_multiple_of(2) {
        return Err(ConstructionError::WrongParity {
            n,
            needs_even: false,
        });
    }
    if n < ORIENTATION_ARBITRARY_MIN_N {
        return Err(ConstructionError::TooSmall {
            n,
            min: ORIENTATION_ARBITRARY_MIN_N,
        });
    }
    let h = arbitrary_inner_homomorphism();
    // k = floor((log5 n - 1) / 4), guaranteed >= 1 by the size check.
    let log5n = (n as f64).ln() / 5f64.ln();
    let k = (((log5n - 1.0) / 4.0).floor() as usize).max(1);
    let omega_prime = h.iterate(&Word::parse("0"), 2 * k);
    let p = omega_prime.zeros() as u64;
    let q = omega_prime.ones() as u64;
    debug_assert_eq!(p, (5u64.pow(2 * k as u32) + 3u64.pow(2 * k as u32)) / 2);
    debug_assert_eq!(q, (5u64.pow(2 * k as u32) - 3u64.pow(2 * k as u32)) / 2);
    let (mut r, mut s) = lemma_7_8(p, q, n as u64);
    if s % 2 == 0 {
        // p is odd, so adding p makes s odd; the pair still solves
        // rp + sq = n.
        s += p as i64;
        r -= q as i64;
    }
    if r <= 0 || s <= 0 {
        return Err(ConstructionError::Infeasible(
            "block multiplicities not positive",
        ));
    }
    let (r, s) = (r as usize, s as usize);
    let big_h = Homomorphism::new(Word::constant(0, r), Word::constant(1, s));
    let epsilon = big_h.apply(&omega_prime);
    debug_assert_eq!(epsilon.len(), n);
    debug_assert_eq!(epsilon.ones() % 2, 0, "even number of ones");

    // Leading palindromic block: H(h^{2k-1}(0)).
    let inner_block = h.iterate(&Word::parse("0"), 2 * k - 1);
    let block = big_h.apply(&inner_block);
    debug_assert!(block.is_palindrome());
    let palindrome_len = block.len();
    let palindrome_center = (palindrome_len - 1) / 2;
    debug_assert_eq!(block.symbol(palindrome_center), 1);

    Ok(OrientationWitness {
        epsilon,
        inner_iterations: 2 * k,
        r,
        s,
        palindrome_center,
        palindrome_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_word_decomposes_as_paper_says() {
        // h^k(0) = h^{k-1}(0) h^{k-1}(1) h^{k-1}(1)
        //        = h^{k-1}(0) rev-comp(h^{k-1}(0)) rev-comp(h^{k-1}(0)).
        let h = exact_homomorphism();
        for k in 1..6 {
            let w = orientation_exact(k);
            let prev = orientation_exact(k - 1);
            let prev1 = h.iterate(&Word::parse("1"), k - 1);
            assert_eq!(w, prev.concat(&prev1).concat(&prev1), "k={k}");
            assert_eq!(prev1, prev.complement().reversed(), "k={k}");
        }
    }

    #[test]
    fn exact_word_is_repetitive() {
        let d = orientation_exact(5); // n = 243
        let n = d.len();
        // Every cyclic subword of length 2m+1 <= n/9 occurs at least
        // n/(27 |sigma|) times (Theorem 6.3 with d=3, c=2).
        for len in [1usize, 3, 9, 27] {
            if len > n / 9 {
                continue;
            }
            let min = d.min_cyclic_occurrences(len);
            let need = (n as f64) / (27.0 * len as f64);
            assert!(min as f64 >= need, "len={len}: {min} < {need}");
        }
    }

    #[test]
    fn arbitrary_rejects_bad_sizes() {
        assert!(matches!(
            orientation_arbitrary(4000),
            Err(ConstructionError::WrongParity { .. })
        ));
        assert!(matches!(
            orientation_arbitrary(101),
            Err(ConstructionError::TooSmall { .. })
        ));
    }

    #[test]
    fn arbitrary_witness_has_all_paper_properties() {
        for n in [3125usize, 4001, 5555, 9999, 20_001] {
            let w = orientation_arbitrary(n).unwrap();
            assert_eq!(w.n(), n, "n={n}");
            assert_eq!(w.epsilon.ones() % 2, 0, "n={n}: even ones");
            assert!(w.s % 2 == 1, "n={n}: s odd");
            assert!(
                w.palindrome_len > n / 6,
                "n={n}: palindrome {} <= n/6",
                w.palindrome_len
            );
            // The leading block is a palindrome with 1 at its center.
            let block = w.epsilon.cyclic_subword(0, w.palindrome_len);
            assert!(block.is_palindrome(), "n={n}");
            assert_eq!(block.symbol(w.palindrome_center), 1, "n={n}");
            // Orientations are complementary and derived by prefix XOR.
            assert_eq!(w.orientation_b(), w.orientation_a().complement());
        }
    }

    #[test]
    fn arbitrary_block_sizes_are_order_sqrt_n() {
        for n in [3125usize, 10_001, 50_001] {
            let w = orientation_arbitrary(n).unwrap();
            let root = (n as f64).sqrt();
            assert!((w.r as f64) < 60.0 * root, "n={n}: r={}", w.r);
            assert!((w.s as f64) < 60.0 * root, "n={n}: s={}", w.s);
            assert!((w.r as f64) > root, "n={n}: r={}", w.r);
            assert!((w.s as f64) > root, "n={n}: s={}", w.s);
        }
    }

    #[test]
    fn arbitrary_witness_is_repetitive_at_large_scales() {
        // Corollary 7.7: subwords of length between the block size and
        // a*n repeat Omega(n/|sigma|) times. Empirical spot check.
        let n = 4001;
        let w = orientation_arbitrary(n).unwrap();
        let block = w.r.max(w.s);
        for len in [block, 2 * block, 4 * block] {
            if len > n / 8 {
                continue;
            }
            let min = w.epsilon.min_cyclic_occurrences(len);
            let need = n as f64 / (400.0 * len as f64);
            assert!(min as f64 >= need, "len={len}: {min} < {need}");
        }
    }
}
