//! Fooling input pairs for XOR (§6.3.1 exact sizes, §7.1.1 arbitrary
//! sizes).

use crate::constructions::{pull_back, ConstructionError};
use crate::homomorphism::Homomorphism;
use crate::matrix::Vec2;
use crate::word::Word;

/// The §6.3.1 homomorphism `0 → 011, 1 → 100` (uniform, `d = 3`, `c = 2`,
/// and `h^k(1) = complement of h^k(0)`).
#[must_use]
pub fn exact_homomorphism() -> Homomorphism {
    Homomorphism::parse("011", "100")
}

/// The §7.1.1 homomorphism `0 → 011, 1 → 10` (non-uniform, `|det A| = 1`,
/// `μ = 1 + √2`, `c = 3`).
#[must_use]
pub fn arbitrary_homomorphism() -> Homomorphism {
    Homomorphism::parse("011", "10")
}

/// A pair of equal-length ring inputs on which XOR takes different values,
/// both grown by `iterations` applications of a repetitive homomorphism
/// from short base strings — a synchronous fooling pair in the making.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorPair {
    /// First input string.
    pub word0: Word,
    /// Second input string (same length, opposite parity of ones).
    pub word1: Word,
    /// The homomorphism both strings are images of.
    pub homomorphism: Homomorphism,
    /// Number of homomorphism applications (`k` in `h^k(ρ)`).
    pub iterations: usize,
    /// Lengths of the two base strings `ρ₀, ρ₁`.
    pub base_lens: (usize, usize),
}

impl XorPair {
    /// Ring size `n = |word0| = |word1|`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.word0.len()
    }
}

/// §6.3.1: the exact-size pair `(h^k(0), h^k(1))` with `n = 3ᵏ`.
///
/// XOR is 0 on the first string and 1 on the second (for `k ≥ 1` the
/// number of ones of `h^k(0)` is even and of `h^k(1)` odd).
///
/// ```
/// use anonring_words::constructions::xor_exact;
/// let pair = xor_exact(3);
/// assert_eq!(pair.n(), 27);
/// assert_ne!(pair.word0.parity(), pair.word1.parity());
/// ```
#[must_use]
pub fn xor_exact(k: usize) -> XorPair {
    let h = exact_homomorphism();
    let word0 = h.iterate(&Word::parse("0"), k);
    let word1 = h.iterate(&Word::parse("1"), k);
    XorPair {
        word0,
        word1,
        homomorphism: h,
        iterations: k,
        base_lens: (1, 1),
    }
}

/// §7.1.1: a fooling pair for XOR at **arbitrary** ring size `n`.
///
/// Takes the integer vector `w₁` of weight `n` nearest to `n`-times the
/// dominant eigenvector of `A_h` and its neighbour `w₂ = w₁ + (−1, +1)`,
/// pulls both back through `A⁻¹` (Theorem 7.5) to bases of length
/// `O(√n)`, and re-grows them with `h`. The resulting strings have length
/// exactly `n`, numbers of ones differing by exactly 1 (so XOR differs),
/// and by Theorem 7.4 every short subword of either occurs `Ω(n/|σ|)`
/// times in both.
///
/// # Errors
///
/// Returns [`ConstructionError::TooSmall`] for `n < 8` (below that the
/// nudged vector may not stay positive).
pub fn xor_arbitrary(n: usize) -> Result<XorPair, ConstructionError> {
    const MIN_N: usize = 8;
    if n < MIN_N {
        return Err(ConstructionError::TooSmall { n, min: MIN_N });
    }
    let h = arbitrary_homomorphism();
    let a = h.characteristic_matrix();
    let (ev_zero, _ev_one) = a.dominant_eigenvector();
    let p = (n as f64 * ev_zero).round() as i64;
    let p = p.clamp(2, n as i64 - 2);
    let q = n as i64 - p;
    let w1 = Vec2::new(p, q);
    let w2 = Vec2::new(p - 1, q + 1);
    let (_, k1) = pull_back(a, w1);
    let (_, k2) = pull_back(a, w2);
    let k = k1.min(k2);
    // Recompute the bases at the common iteration count.
    let inv = a.unimodular_inverse().expect("det = -1");
    let back = |mut v: Vec2, steps: usize| {
        for _ in 0..steps {
            v = inv.mul_vec(v);
        }
        v
    };
    let b1 = back(w1, k);
    let b2 = back(w2, k);
    if !b1.is_positive() || !b2.is_positive() {
        return Err(ConstructionError::Infeasible(
            "pulled-back base vector not positive",
        ));
    }
    let rho1 = Word::constant(0, b1.zeros as usize).concat(&Word::constant(1, b1.ones as usize));
    let rho2 = Word::constant(0, b2.zeros as usize).concat(&Word::constant(1, b2.ones as usize));
    let word0 = h.iterate(&rho1, k);
    let word1 = h.iterate(&rho2, k);
    debug_assert_eq!(word0.len(), n);
    debug_assert_eq!(word1.len(), n);
    debug_assert_eq!(word0.ones().abs_diff(word1.ones()), 1);
    Ok(XorPair {
        word0,
        word1,
        homomorphism: h,
        iterations: k,
        base_lens: (rho1.len(), rho2.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_pair_lengths_and_parities() {
        for k in 1..7 {
            let pair = xor_exact(k);
            assert_eq!(pair.n(), 3usize.pow(k as u32));
            assert_eq!(pair.word1, pair.word0.complement());
            assert_eq!(pair.word0.parity(), 0, "k={k}");
            assert_eq!(pair.word1.parity(), 1, "k={k}");
        }
    }

    #[test]
    fn arbitrary_pair_has_exact_length_and_opposite_parity() {
        for n in [8usize, 13, 50, 100, 101, 257, 1000, 1001, 4096, 9999] {
            let pair = xor_arbitrary(n).unwrap();
            assert_eq!(pair.word0.len(), n, "n={n}");
            assert_eq!(pair.word1.len(), n, "n={n}");
            assert_ne!(pair.word0.parity(), pair.word1.parity(), "n={n}");
        }
    }

    #[test]
    fn arbitrary_pair_bases_are_order_sqrt_n() {
        for n in [100usize, 1000, 10_000, 100_000] {
            let pair = xor_arbitrary(n).unwrap();
            let bound = 25.0 * (n as f64).sqrt();
            assert!(
                (pair.base_lens.0 as f64) <= bound,
                "n={n}: base0 {} > {bound}",
                pair.base_lens.0
            );
            assert!(
                (pair.base_lens.1 as f64) <= bound,
                "n={n}: base1 {} > {bound}",
                pair.base_lens.1
            );
            assert!(pair.iterations >= 1, "n={n}");
        }
    }

    #[test]
    fn arbitrary_pair_is_repetitive() {
        // Every cyclic subword of length <= a*sqrt(n) occurring in either
        // word occurs Omega(n/|sigma|) times in both (Theorem 7.4). We
        // check a conservative empirical version at a few lengths.
        let n = 2000;
        let pair = xor_arbitrary(n).unwrap();
        for len in [2usize, 5, 10] {
            for w in [&pair.word0, &pair.word1] {
                for sigma in w.distinct_cyclic_subwords(len) {
                    for other in [&pair.word0, &pair.word1] {
                        let got = other.cyclic_occurrences(&sigma);
                        let need = n as f64 / (200.0 * len as f64);
                        assert!(
                            got as f64 >= need,
                            "len={len}: sigma {sigma} occurs {got} < {need}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_sizes_are_rejected() {
        assert!(matches!(
            xor_arbitrary(4),
            Err(ConstructionError::TooSmall { .. })
        ));
    }
}
