//! D0L sequence analysis: fixed points, repetition-freeness, and subword
//! complexity profiles.
//!
//! The paper's lower-bound strings descend directly from Thue's study of
//! square-free words via iterated homomorphisms ([14, 15] in its
//! bibliography), and §8 relates its *repetitiveness* notion to the
//! subword complexity of D0L languages [6]. This module provides those
//! classical tools: they validate that our generators behave like the
//! objects the theory says they are (e.g. Thue–Morse is overlap-free,
//! repetitive strings have `O(k)` distinct `k`-subwords).

use crate::homomorphism::Homomorphism;
use crate::word::Word;

/// A prefix of length `len` of the infinite fixed point `h^∞(seed)`.
///
/// Requires `h(seed)` to start with `seed` (the prolongability condition
/// for a D0L fixed point) and `h` to be growing on some letter reachable
/// from the seed.
///
/// # Panics
///
/// Panics if `h(seed)` does not extend `seed`, or if iteration stops
/// growing before reaching `len` symbols.
#[must_use]
pub fn fixed_point_prefix(h: &Homomorphism, seed: u8, len: usize) -> Word {
    let seed_word = Word::from_symbols(vec![seed]);
    let image = h.apply(&seed_word);
    assert!(
        image.len() > 1 && image.symbol(0) == seed,
        "h must be prolongable on the seed"
    );
    let mut w = seed_word;
    while w.len() < len {
        let next = h.apply(&w);
        assert!(next.len() > w.len(), "homomorphism stopped growing");
        w = next;
    }
    Word::from_symbols(w.as_slice()[..len].to_vec())
}

/// Whether the word contains a *square* `xx` (a nonempty block repeated
/// immediately) — Thue 1906 built infinite square-free words over three
/// letters; over two letters squares are unavoidable beyond length 3.
#[must_use]
pub fn has_square(w: &Word) -> bool {
    let n = w.len();
    let s = w.as_slice();
    for i in 0..n {
        for l in 1..=(n - i) / 2 {
            if s[i..i + l] == s[i + l..i + 2 * l] {
                return true;
            }
        }
    }
    false
}

/// Whether the word contains an *overlap* `axaxa` (equivalently, a block
/// repeated twice plus its first letter). Thue 1912: the Thue–Morse word
/// is overlap-free.
#[must_use]
pub fn has_overlap(w: &Word) -> bool {
    let n = w.len();
    let s = w.as_slice();
    for i in 0..n {
        // overlap of period l starting at i: s[i..i+2l+1] with
        // s[j] == s[j+l] for all j in i..=i+l.
        for l in 1..=(n.saturating_sub(i + 1)) / 2 {
            if (i..=i + l).all(|j| s[j] == s[j + l]) {
                return true;
            }
        }
    }
    false
}

/// The subword complexity profile `k ↦ #distinct cyclic k-subwords` for
/// `k = 1..=max_k` — §8's bridge between repetitiveness and D0L subword
/// complexity: a string in which every `k`-subword repeats `Ω(n/k)` times
/// has only `O(k)` distinct `k`-subwords.
#[must_use]
pub fn complexity_profile(w: &Word, max_k: usize) -> Vec<usize> {
    (1..=max_k).map(|k| w.subword_complexity(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::thue_morse;

    #[test]
    fn thue_morse_fixed_point_is_the_limit_of_iterates() {
        let h = thue_morse();
        let prefix = fixed_point_prefix(&h, 0, 64);
        let iterate = h.iterate(&Word::parse("0"), 6);
        assert_eq!(prefix, iterate);
        // Known prefix: 0110100110010110...
        assert_eq!(&prefix.to_string()[..16], "0110100110010110");
    }

    #[test]
    fn thue_morse_is_overlap_free_hence_cube_free() {
        let w = fixed_point_prefix(&thue_morse(), 0, 256);
        assert!(!has_overlap(&w), "Thue 1912");
        // ...but like every long binary word it has squares.
        assert!(has_square(&w));
    }

    #[test]
    fn squares_and_overlaps_are_detected() {
        assert!(has_square(&Word::parse("0101")));
        assert!(!has_square(&Word::parse("010")));
        assert!(has_overlap(&Word::parse("01010")));
        assert!(!has_overlap(&Word::parse("0110")));
        assert!(!has_overlap(&Word::parse("011010011")));
    }

    #[test]
    fn repetitive_strings_have_linear_subword_complexity() {
        // The paper's §8 remark: every k-subword of the XOR lower-bound
        // string repeats often, so there are at most O(k) of them.
        let h = Homomorphism::parse("011", "100");
        let w = h.iterate(&Word::parse("0"), 6); // n = 729
        for (k, &c) in complexity_profile(&w, 12).iter().enumerate() {
            let k = k + 1;
            assert!(c <= 8 * k, "k={k}: complexity {c} not O(k)");
        }
        // Contrast: a pseudo-random word has complexity ~min(2^k, n).
        let rnd = Word::from_symbols(
            (0..729u64)
                .map(|i| {
                    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    ((z ^ (z >> 31)) & 1) as u8
                })
                .collect(),
        );
        assert!(rnd.subword_complexity(8) > 200);
    }

    #[test]
    #[should_panic(expected = "prolongable")]
    fn fixed_point_requires_prolongability() {
        // h(0) = 10 does not start with 0.
        let h = Homomorphism::parse("10", "01");
        let _ = fixed_point_prefix(&h, 0, 10);
    }
}
