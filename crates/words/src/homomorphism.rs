//! Word homomorphisms over `{0, 1}` and their iteration (D0L systems).

use std::fmt;

use crate::matrix::{Mat2, Vec2};
use crate::word::Word;

/// A homomorphism `h: {0,1} → {0,1}*`, determined by the images `h(0)` and
/// `h(1)` and extended to words by concatenation.
///
/// The lower bounds of §6 require `h` to satisfy:
///
/// * **condition (6c)**: every word of length 2 occurs in `h^c(0)` and in
///   `h^c(1)` for some constant `c` — see [`Homomorphism::condition_6c`];
/// * **condition (6d)**: uniformity, `|h(0)| = |h(1)| = d ≥ 2` — see
///   [`Homomorphism::is_uniform`];
///
/// while §7.1 instead requires positivity and `|det A_h| = 1` (then `h` is
/// *quasi-uniform* by Lemma 7.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Homomorphism {
    image0: Word,
    image1: Word,
}

impl Homomorphism {
    /// Builds a homomorphism from the images of 0 and 1.
    ///
    /// # Panics
    ///
    /// Panics if either image is empty (the paper's homomorphisms are
    /// growing: `d ≥ 2`, and non-erasing is the minimum we insist on).
    #[must_use]
    pub fn new(image0: Word, image1: Word) -> Homomorphism {
        assert!(
            !image0.is_empty() && !image1.is_empty(),
            "homomorphism images must be nonempty"
        );
        Homomorphism { image0, image1 }
    }

    /// Convenience constructor from bit strings.
    ///
    /// ```
    /// use anonring_words::Homomorphism;
    /// let h = Homomorphism::parse("011", "100");
    /// assert!(h.is_uniform());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on invalid characters or empty images.
    #[must_use]
    pub fn parse(image0: &str, image1: &str) -> Homomorphism {
        Homomorphism::new(Word::parse(image0), Word::parse(image1))
    }

    /// The image `h(b)` of a single symbol.
    ///
    /// # Panics
    ///
    /// Panics if `b > 1`.
    #[must_use]
    pub fn image(&self, b: u8) -> &Word {
        match b {
            0 => &self.image0,
            1 => &self.image1,
            other => panic!("invalid symbol {other}"),
        }
    }

    /// Applies the homomorphism to a word.
    #[must_use]
    pub fn apply(&self, w: &Word) -> Word {
        let mut out = Vec::new();
        for &b in w.as_slice() {
            out.extend_from_slice(self.image(b).as_slice());
        }
        Word::from_symbols(out)
    }

    /// The `k`-fold iterate `h^k(seed)`.
    #[must_use]
    pub fn iterate(&self, seed: &Word, k: usize) -> Word {
        let mut w = seed.clone();
        for _ in 0..k {
            w = self.apply(&w);
        }
        w
    }

    /// Whether `h` is uniform with `d ≥ 2` (condition 6d).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.image0.len() == self.image1.len() && self.image0.len() >= 2
    }

    /// The uniform image length `d`, if uniform.
    #[must_use]
    pub fn uniform_degree(&self) -> Option<usize> {
        if self.is_uniform() {
            Some(self.image0.len())
        } else {
            None
        }
    }

    /// The smallest `c ≤ max_c` such that every word of length 2 occurs
    /// (as a plain substring) in both `h^c(0)` and `h^c(1)` — condition
    /// (6c). Returns `None` if no such `c` exists up to the bound.
    ///
    /// ```
    /// use anonring_words::Homomorphism;
    /// // §6.3.1's XOR homomorphism: c = 2.
    /// assert_eq!(Homomorphism::parse("011", "100").condition_6c(5), Some(2));
    /// // Thue–Morse (§6.3.4): c = 3.
    /// assert_eq!(Homomorphism::parse("01", "10").condition_6c(5), Some(3));
    /// ```
    #[must_use]
    pub fn condition_6c(&self, max_c: usize) -> Option<usize> {
        let pairs = [
            Word::parse("00"),
            Word::parse("01"),
            Word::parse("10"),
            Word::parse("11"),
        ];
        (1..=max_c).find(|&c| {
            let w0 = self.iterate(&Word::parse("0"), c);
            let w1 = self.iterate(&Word::parse("1"), c);
            pairs
                .iter()
                .all(|p| w0.occurrences(p) > 0 && w1.occurrences(p) > 0)
        })
    }

    /// The characteristic matrix `A_h = (χ_{h(0)} χ_{h(1)})`.
    #[must_use]
    pub fn characteristic_matrix(&self) -> Mat2 {
        Mat2::from_columns(
            Vec2::new(self.image0.zeros() as i64, self.image0.ones() as i64),
            Vec2::new(self.image1.zeros() as i64, self.image1.ones() as i64),
        )
    }

    /// The growth rate of `|h^k(ε)|`: `d` for a uniform homomorphism, the
    /// dominant eigenvalue `μ` otherwise (Lemma 7.1 / condition 7a).
    #[must_use]
    pub fn growth_rate(&self) -> f64 {
        if let Some(d) = self.uniform_degree() {
            d as f64
        } else {
            self.characteristic_matrix().dominant_eigenvalue()
        }
    }

    /// Theorem 6.3's repetition constants `(a, b) = (1/d^c, 1/d^{c+1})`
    /// for a uniform homomorphism satisfying (6c): any `σ` occurring
    /// cyclically in `ω = h^k(ρ)` with `|σ| ≤ a·|ω|/|ρ|` occurs at least
    /// `b·|ω'|/|σ|` times in **any** `ω' = h^k(ρ')`.
    ///
    /// Returns `None` when the homomorphism is not uniform or (6c) fails
    /// below the probe bound.
    #[must_use]
    pub fn repetition_constants(&self, max_c: usize) -> Option<(f64, f64)> {
        let d = self.uniform_degree()? as f64;
        let c = self.condition_6c(max_c)? as i32;
        Some((d.powi(-c), d.powi(-(c + 1))))
    }
}

impl fmt::Display for Homomorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0→{}, 1→{}", self.image0, self.image1)
    }
}

/// The Thue–Morse homomorphism `0 → 01, 1 → 10` used by Theorem 6.7.
#[must_use]
pub fn thue_morse() -> Homomorphism {
    Homomorphism::parse("01", "10")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_concatenates_images() {
        let h = Homomorphism::parse("011", "100");
        assert_eq!(h.apply(&Word::parse("01")), Word::parse("011100"));
        assert_eq!(h.iterate(&Word::parse("0"), 0), Word::parse("0"));
        assert_eq!(h.iterate(&Word::parse("0"), 2).len(), 9);
    }

    #[test]
    fn xor_homomorphism_images_are_complements() {
        // §6.3.1: h^k(1) is the complement of h^k(0).
        let h = Homomorphism::parse("011", "100");
        for k in 0..6 {
            let w0 = h.iterate(&Word::parse("0"), k);
            let w1 = h.iterate(&Word::parse("1"), k);
            assert_eq!(w1, w0.complement(), "k={k}");
            // XOR differs: |h^k(0)| = 3^k is odd, so complementing flips
            // the parity.
            assert_ne!(w0.parity(), w1.parity(), "k={k}");
        }
    }

    #[test]
    fn orientation_homomorphism_reverse_complement_identity() {
        // §6.3.2: h(0) = 011, h(1) = 001 satisfy h^k(0) = complement of
        // reverse of h^k(1).
        let h = Homomorphism::parse("011", "001");
        for k in 0..6 {
            let w0 = h.iterate(&Word::parse("0"), k);
            let w1 = h.iterate(&Word::parse("1"), k);
            assert_eq!(w0, w1.reversed().complement(), "k={k}");
        }
    }

    #[test]
    fn condition_6c_values_match_paper() {
        assert_eq!(Homomorphism::parse("011", "100").condition_6c(5), Some(2));
        assert_eq!(Homomorphism::parse("011", "001").condition_6c(5), Some(2));
        assert_eq!(Homomorphism::parse("01", "10").condition_6c(5), Some(3));
        assert_eq!(
            Homomorphism::parse("00100", "11011").condition_6c(5),
            Some(2)
        );
        // §7.1.1's nonuniform homomorphism: c = 3.
        assert_eq!(Homomorphism::parse("011", "10").condition_6c(5), Some(3));
        // A homomorphism that never mixes symbols fails (6c).
        assert_eq!(Homomorphism::parse("00", "11").condition_6c(8), None);
    }

    #[test]
    fn characteristic_matrix_tracks_counts() {
        let h = Homomorphism::parse("011", "10");
        let m = h.characteristic_matrix();
        assert_eq!((m.a, m.b, m.c, m.d), (1, 2, 1, 1));
        // chi(h(w)) = A chi(w).
        let w = Word::parse("0110");
        let hw = h.apply(&w);
        let chi = Vec2::new(w.zeros() as i64, w.ones() as i64);
        let chi_h = m.mul_vec(chi);
        assert_eq!(chi_h.zeros as usize, hw.zeros());
        assert_eq!(chi_h.ones as usize, hw.ones());
    }

    #[test]
    fn growth_rates() {
        assert_eq!(Homomorphism::parse("011", "100").growth_rate(), 3.0);
        let mu = Homomorphism::parse("011", "10").growth_rate();
        assert!((mu - (1.0 + 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn theorem_6_3_repetition_bound_empirically() {
        // For h(0)=011, h(1)=100 (d=3, c=2): any sigma occurring
        // cyclically in omega = h^k(rho), |sigma| <= |omega|/(9 |rho|),
        // occurs >= |omega'|/(27 |sigma|) times in any omega' = h^k(rho').
        let h = Homomorphism::parse("011", "100");
        let k = 4; // |omega| = 81 * |rho|
        for rho in ["0", "1", "01"] {
            let omega = h.iterate(&Word::parse(rho), k);
            let bound_len = omega.len() / (9 * rho.len());
            for len in 1..=bound_len {
                for sigma in omega.distinct_cyclic_subwords(len) {
                    for rho2 in ["0", "1", "10"] {
                        let omega2 = h.iterate(&Word::parse(rho2), k);
                        let need = omega2.len() as f64 / (27.0 * len as f64);
                        let got = omega2.cyclic_occurrences(&sigma);
                        assert!(
                            got as f64 >= need,
                            "sigma={sigma} in h^{k}({rho2}): {got} < {need}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repetition_constants_formula() {
        let (a, b) = Homomorphism::parse("011", "100")
            .repetition_constants(5)
            .unwrap();
        assert!((a - 1.0 / 9.0).abs() < 1e-12);
        assert!((b - 1.0 / 27.0).abs() < 1e-12);
        assert!(Homomorphism::parse("011", "10")
            .repetition_constants(5)
            .is_none());
    }

    #[test]
    fn thue_morse_is_overlap_free_squarish_check() {
        // Sanity: Thue-Morse words have low subword complexity; every
        // length-2^j prefix property is out of scope, but at least check
        // growth and (6c).
        let h = thue_morse();
        assert_eq!(h.uniform_degree(), Some(2));
        let w = h.iterate(&Word::parse("0"), 6);
        assert_eq!(w.len(), 64);
        assert_eq!(w.ones(), 32);
    }

    #[test]
    fn display() {
        assert_eq!(
            Homomorphism::parse("011", "100").to_string(),
            "0→011, 1→100"
        );
    }
}
