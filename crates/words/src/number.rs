//! Elementary number theory: Lemma 7.8.

/// Greatest common divisor.
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
#[must_use]
pub fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Lemma 7.8: for coprime positive `p, q` and any `n`, returns integers
/// `(r, s)` with `r·p + s·q = n` and `|r − s| ≤ (p + q) / 2`.
///
/// The construction follows the paper's proof: start from any solution and
/// repeatedly shift by `(−q, +p)` or `(+q, −p)` to minimise `|r − s|`.
///
/// # Panics
///
/// Panics if `p` and `q` are not coprime or not positive.
#[must_use]
pub fn lemma_7_8(p: u64, q: u64, n: u64) -> (i64, i64) {
    assert!(p > 0 && q > 0, "p and q must be positive");
    assert_eq!(gcd(p, q), 1, "p and q must be coprime");
    let (g, x, _) = egcd(p as i128, q as i128);
    debug_assert_eq!(g, 1);
    // r0 * p ≡ n (mod q) with r0 = x * n.
    let p_i = p as i128;
    let q_i = q as i128;
    let n_i = n as i128;
    let mut r = (x * n_i).rem_euclid(q_i);
    let mut s = (n_i - r * p_i) / q_i;
    debug_assert_eq!(r * p_i + s * q_i, n_i);
    // Minimise |r - s| by stepping along the solution lattice.
    loop {
        let better = if r > s {
            (r - q_i, s + p_i)
        } else {
            (r + q_i, s - p_i)
        };
        if (better.0 - better.1).abs() < (r - s).abs() {
            r = better.0;
            s = better.1;
        } else {
            break;
        }
    }
    debug_assert!((r - s).unsigned_abs() <= ((p as u128) + (q as u128)).div_ceil(2));
    (r as i64, s as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 5), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn egcd_bezout() {
        for (a, b) in [(240i128, 46i128), (17, 31), (1, 1), (99991, 7)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(a * x + b * y, g);
            assert_eq!(g, gcd(a as u64, b as u64) as i128);
        }
    }

    #[test]
    fn lemma_7_8_satisfies_both_conditions() {
        for (p, q) in [(3u64, 2u64), (17, 8), (113, 40), (5, 4), (1, 1)] {
            for n in [10u64, 100, 1001, 99_999] {
                let (r, s) = lemma_7_8(p, q, n);
                assert_eq!(
                    r as i128 * p as i128 + s as i128 * q as i128,
                    n as i128,
                    "p={p} q={q} n={n}"
                );
                assert!(
                    (r - s).unsigned_abs() <= (p + q).div_ceil(2),
                    "p={p} q={q} n={n}: r={r} s={s}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn lemma_7_8_requires_coprimality() {
        let _ = lemma_7_8(4, 2, 10);
    }
}
