//! Binary words and their combinatorics.

use std::collections::HashSet;
use std::fmt;

/// A finite word over the alphabet `{0, 1}`.
///
/// Words double as ring inputs (`I`), ring orientations (`D`, via
/// prefix-XOR in §7.2.1) and adversary wake-up encodings (§6.3.3), so the
/// type lives here rather than in any one consumer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(Vec<u8>);

impl Word {
    /// The empty word.
    #[must_use]
    pub fn new() -> Word {
        Word(Vec::new())
    }

    /// Builds a word from symbols, validating they are 0/1.
    ///
    /// # Panics
    ///
    /// Panics on symbols other than 0 and 1.
    #[must_use]
    pub fn from_symbols(symbols: Vec<u8>) -> Word {
        assert!(
            symbols.iter().all(|&s| s <= 1),
            "word symbols must be 0 or 1"
        );
        Word(symbols)
    }

    /// Parses a word from a `{0,1}` string, e.g. `"0110"`.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `'0'` and `'1'`.
    #[must_use]
    pub fn parse(s: &str) -> Word {
        Word(
            s.chars()
                .map(|c| match c {
                    '0' => 0,
                    '1' => 1,
                    other => panic!("invalid word character {other:?}"),
                })
                .collect(),
        )
    }

    /// The word `σᵏ` (`σ` repeated `k` times).
    #[must_use]
    pub fn repeat(&self, k: usize) -> Word {
        let mut v = Vec::with_capacity(self.len() * k);
        for _ in 0..k {
            v.extend_from_slice(&self.0);
        }
        Word(v)
    }

    /// The constant word `bᵏ`.
    ///
    /// # Panics
    ///
    /// Panics if `b > 1`.
    #[must_use]
    pub fn constant(b: u8, k: usize) -> Word {
        assert!(b <= 1, "word symbols must be 0 or 1");
        Word(vec![b; k])
    }

    /// Word length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the word is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The symbols as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the word, returning its symbols.
    #[must_use]
    pub fn into_symbols(self) -> Vec<u8> {
        self.0
    }

    /// The symbol at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn symbol(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// Concatenation `self · other`.
    #[must_use]
    pub fn concat(&self, other: &Word) -> Word {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Word(v)
    }

    /// The bitwise complement `ω̄`.
    #[must_use]
    pub fn complement(&self) -> Word {
        Word(self.0.iter().map(|&b| 1 - b).collect())
    }

    /// The reversal `ωᴿ`.
    #[must_use]
    pub fn reversed(&self) -> Word {
        let mut v = self.0.clone();
        v.reverse();
        Word(v)
    }

    /// The left cyclic shift by `k` positions.
    #[must_use]
    pub fn rotated(&self, k: usize) -> Word {
        if self.is_empty() {
            return Word::new();
        }
        let n = self.len();
        let k = k % n;
        let mut v = Vec::with_capacity(n);
        v.extend_from_slice(&self.0[k..]);
        v.extend_from_slice(&self.0[..k]);
        Word(v)
    }

    /// Number of ones.
    #[must_use]
    pub fn ones(&self) -> usize {
        self.0.iter().map(|&b| b as usize).sum()
    }

    /// Number of zeros.
    #[must_use]
    pub fn zeros(&self) -> usize {
        self.len() - self.ones()
    }

    /// XOR of all symbols (the parity of the number of ones).
    #[must_use]
    pub fn parity(&self) -> u8 {
        (self.ones() % 2) as u8
    }

    /// Whether `ω = ωᴿ`.
    #[must_use]
    pub fn is_palindrome(&self) -> bool {
        let n = self.len();
        (0..n / 2).all(|i| self.0[i] == self.0[n - 1 - i])
    }

    /// Number of (possibly overlapping) occurrences of `pattern` as a plain
    /// substring.
    #[must_use]
    pub fn occurrences(&self, pattern: &Word) -> usize {
        if pattern.is_empty() || pattern.len() > self.len() {
            return 0;
        }
        (0..=self.len() - pattern.len())
            .filter(|&i| self.0[i..i + pattern.len()] == pattern.0[..])
            .count()
    }

    /// Number of *cyclic* occurrences of `pattern`: start positions
    /// `0 ≤ i < |ω|` such that `pattern` matches reading circularly
    /// (paper §2). Requires `|pattern| ≤ |ω|`; longer patterns have no
    /// cyclic occurrence.
    #[must_use]
    pub fn cyclic_occurrences(&self, pattern: &Word) -> usize {
        let n = self.len();
        let m = pattern.len();
        if pattern.is_empty() || m > n {
            return 0;
        }
        (0..n)
            .filter(|&i| (0..m).all(|j| self.0[(i + j) % n] == pattern.0[j]))
            .count()
    }

    /// Whether `pattern` occurs cyclically in the word.
    #[must_use]
    pub fn contains_cyclically(&self, pattern: &Word) -> bool {
        self.cyclic_occurrences(pattern) > 0
    }

    /// The cyclic subword of length `len` starting at `i`.
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    #[must_use]
    pub fn cyclic_subword(&self, i: usize, len: usize) -> Word {
        assert!(!self.is_empty(), "cyclic subword of empty word");
        let n = self.len();
        Word((0..len).map(|j| self.0[(i + j) % n]).collect())
    }

    /// The set of distinct cyclic subwords of length `len`.
    #[must_use]
    pub fn distinct_cyclic_subwords(&self, len: usize) -> HashSet<Word> {
        if self.is_empty() {
            return HashSet::new();
        }
        (0..self.len())
            .map(|i| self.cyclic_subword(i, len))
            .collect()
    }

    /// Subword complexity: the number of distinct cyclic subwords of length
    /// `len` (paper §8 relates repetitiveness to this measure — a string in
    /// which every length-`k` subword repeats `Ω(n/k)` times has only
    /// `O(k)` distinct subwords of length `k`).
    #[must_use]
    pub fn subword_complexity(&self, len: usize) -> usize {
        self.distinct_cyclic_subwords(len).len()
    }

    /// The minimum number of cyclic occurrences over all cyclic subwords of
    /// length `len` that occur at all — the word analogue of the symmetry
    /// index `SI(R, k)` for oriented rings.
    #[must_use]
    pub fn min_cyclic_occurrences(&self, len: usize) -> usize {
        self.distinct_cyclic_subwords(len)
            .iter()
            .map(|s| self.cyclic_occurrences(s))
            .min()
            .unwrap_or(0)
    }

    /// Whether `other` is a cyclic rotation of `self`.
    #[must_use]
    pub fn is_rotation_of(&self, other: &Word) -> bool {
        self.len() == other.len() && (self.is_empty() || self.concat(self).occurrences(other) > 0)
    }

    /// Prefix-XOR: `out[i] = ω₁ ⊕ … ⊕ ω_{i+1}` — the paper's §7.2.1 map
    /// from an ε-word to a ring orientation `Dᵃ`.
    #[must_use]
    pub fn prefix_xor(&self) -> Word {
        let mut acc = 0u8;
        Word(
            self.0
                .iter()
                .map(|&b| {
                    acc ^= b;
                    acc
                })
                .collect(),
        )
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<u8> for Word {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Word {
        Word::from_symbols(iter.into_iter().collect())
    }
}

impl Extend<u8> for Word {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        for s in iter {
            assert!(s <= 1, "word symbols must be 0 or 1");
            self.0.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let w = Word::parse("011010");
        assert_eq!(w.to_string(), "011010");
        assert_eq!(w.len(), 6);
        assert_eq!(w.ones(), 3);
        assert_eq!(w.zeros(), 3);
        assert_eq!(w.parity(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid word character")]
    fn parse_rejects_garbage() {
        let _ = Word::parse("01x");
    }

    #[test]
    fn complement_and_reverse() {
        let w = Word::parse("0011");
        assert_eq!(w.complement(), Word::parse("1100"));
        assert_eq!(w.reversed(), Word::parse("1100"));
        assert_eq!(w.complement().reversed(), Word::parse("0011"));
    }

    #[test]
    fn rotation() {
        let w = Word::parse("0110");
        assert_eq!(w.rotated(1), Word::parse("1100"));
        assert_eq!(w.rotated(4), w);
        assert!(w.is_rotation_of(&Word::parse("1001")));
        assert!(!w.is_rotation_of(&Word::parse("1010")));
    }

    #[test]
    fn occurrences_plain_vs_cyclic() {
        let w = Word::parse("0101");
        let p = Word::parse("01");
        assert_eq!(w.occurrences(&p), 2);
        assert_eq!(w.cyclic_occurrences(&p), 2);
        let q = Word::parse("10");
        assert_eq!(w.occurrences(&q), 1);
        assert_eq!(w.cyclic_occurrences(&q), 2);
        // Longer-than-word patterns never occur cyclically.
        assert_eq!(w.cyclic_occurrences(&Word::parse("01010")), 0);
    }

    #[test]
    fn palindromes() {
        assert!(Word::parse("0110").is_palindrome());
        assert!(Word::parse("00100").is_palindrome());
        assert!(!Word::parse("01").is_palindrome());
        assert!(Word::new().is_palindrome());
    }

    #[test]
    fn subword_complexity_of_periodic_word() {
        // (011)^3 has exactly 3 distinct cyclic subwords of each length
        // 1..=3... of length 1 it has 2 (0 and 1).
        let w = Word::parse("011").repeat(3);
        assert_eq!(w.subword_complexity(1), 2);
        assert_eq!(w.subword_complexity(2), 3);
        assert_eq!(w.subword_complexity(3), 3);
        assert_eq!(w.min_cyclic_occurrences(2), 3);
    }

    #[test]
    fn prefix_xor_matches_recurrence() {
        // D_i = D_{i-1} XOR eps_i with D_0 = eps_1.
        let eps = Word::parse("10110");
        let d = eps.prefix_xor();
        assert_eq!(d, Word::parse("11011"));
        for i in 1..eps.len() {
            assert_eq!(d.symbol(i), d.symbol(i - 1) ^ eps.symbol(i));
        }
    }

    #[test]
    fn constant_and_repeat() {
        assert_eq!(Word::constant(1, 4), Word::parse("1111"));
        assert_eq!(Word::parse("01").repeat(0), Word::new());
        assert!(Word::new().is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let w: Word = [0u8, 1, 1].into_iter().collect();
        assert_eq!(w, Word::parse("011"));
    }
}
