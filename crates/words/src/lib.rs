//! # anonring-words
//!
//! Binary words, iterated word homomorphisms (D0L systems) and the
//! repetitive-string constructions of Attiya, Snir and Warmuth,
//! *Computing on an Anonymous Ring* (J. ACM 35(4), 1988), §6.2 and §7.
//!
//! The synchronous lower bounds of the paper all rest on one idea: build
//! ring configurations in which every short pattern repeats `Ω(n/|σ|)`
//! times, so that whenever one processor sends a message, many others must
//! too. Such strings are produced by iterating a word homomorphism `h`
//! satisfying:
//!
//! * **(6c)** every word of length 2 occurs in `h^c(0)` and `h^c(1)` for
//!   some constant `c`;
//! * **(6d)** `h` is uniform (`|h(0)| = |h(1)| = d ≥ 2`) — or, for
//!   arbitrary ring sizes, quasi-uniform with `|det A_h| = 1` (§7.1).
//!
//! This crate provides:
//!
//! * [`Word`] — binary words with cyclic-occurrence counting, palindrome
//!   tests and subword complexity;
//! * [`Homomorphism`] — application, iteration, condition (6c)/(6d)
//!   checking and the characteristic matrix;
//! * [`matrix`] — the exact 2×2 integer linear algebra behind Theorem 7.5;
//! * [`constructions`] — the concrete fooling-string builders used by every
//!   synchronous lower-bound experiment (XOR, orientation, start
//!   synchronization; exact `n = s·dᵏ` sizes and arbitrary sizes).
//!
//! ```
//! use anonring_words::{Homomorphism, Word};
//!
//! // The XOR homomorphism of §6.3.1.
//! let h = Homomorphism::new(Word::parse("011"), Word::parse("100"));
//! assert_eq!(h.condition_6c(4), Some(2));
//! let w = h.iterate(&Word::parse("0"), 3);
//! assert_eq!(w.len(), 27);
//! // h^k(1) is the bitwise complement of h^k(0), so their parities differ.
//! let w1 = h.iterate(&Word::parse("1"), 3);
//! assert_ne!(w.parity(), w1.parity());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod constructions;
pub mod dol;
pub mod homomorphism;
pub mod matrix;
pub mod number;
pub mod word;

pub use homomorphism::Homomorphism;
pub use matrix::{Mat2, Vec2};
pub use word::Word;
