//! Exact 2×2 integer linear algebra for characteristic matrices (§7.1).
//!
//! A word `ω` has characteristic vector `χ_ω = (zeros, ones)`; a
//! homomorphism `h` has characteristic matrix `A_h = (χ_{h(0)} χ_{h(1)})`
//! with the basic relation `χ_{h(ω)} = A_h · χ_ω`. Theorem 7.5 runs this
//! relation *backwards*: when `|det A| = 1`, `A⁻¹` is an integer matrix,
//! and a near-eigenvector of size `n` can be pulled back `Θ(log n)` times
//! while staying positive.

use std::fmt;

/// A 2-vector of signed integers — typically a characteristic vector
/// `(zeros, ones)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vec2 {
    /// First coefficient (count of zeros).
    pub zeros: i64,
    /// Second coefficient (count of ones).
    pub ones: i64,
}

impl Vec2 {
    /// Builds a vector.
    #[must_use]
    pub fn new(zeros: i64, ones: i64) -> Vec2 {
        Vec2 { zeros, ones }
    }

    /// The `l₁` size `|u| = |u₁| + |u₂|` (equals the word length for
    /// nonnegative vectors).
    #[must_use]
    pub fn size(&self) -> i64 {
        self.zeros.abs() + self.ones.abs()
    }

    /// Whether both coefficients are strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.zeros > 0 && self.ones > 0
    }

    /// Whether both coefficients are nonnegative.
    #[must_use]
    pub fn is_nonnegative(&self) -> bool {
        self.zeros >= 0 && self.ones >= 0
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.zeros, self.ones)
    }
}

/// A 2×2 integer matrix in row-major order:
///
/// ```text
/// | a  c |
/// | b  d |
/// ```
///
/// following the paper's Lemma 7.1 naming (`a, b` form the first column =
/// `χ_{h(0)}`; `c, d` the second = `χ_{h(1)}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mat2 {
    /// Row 1, column 1 — zeros of `h(0)`.
    pub a: i64,
    /// Row 2, column 1 — ones of `h(0)`.
    pub b: i64,
    /// Row 1, column 2 — zeros of `h(1)`.
    pub c: i64,
    /// Row 2, column 2 — ones of `h(1)`.
    pub d: i64,
}

impl Mat2 {
    /// Builds a matrix from the two columns.
    #[must_use]
    pub fn from_columns(col0: Vec2, col1: Vec2) -> Mat2 {
        Mat2 {
            a: col0.zeros,
            b: col0.ones,
            c: col1.zeros,
            d: col1.ones,
        }
    }

    /// The determinant `ad − bc`.
    #[must_use]
    pub fn det(&self) -> i64 {
        self.a * self.d - self.b * self.c
    }

    /// Whether all coefficients are strictly positive (Lemma 7.1's
    /// hypothesis).
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.a > 0 && self.b > 0 && self.c > 0 && self.d > 0
    }

    /// Matrix–vector product.
    #[must_use]
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Vec2 {
            zeros: self.a * v.zeros + self.c * v.ones,
            ones: self.b * v.zeros + self.d * v.ones,
        }
    }

    /// The exact integer inverse, available iff `|det| = 1`
    /// (Theorem 7.5's hypothesis).
    #[must_use]
    pub fn unimodular_inverse(&self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() != 1 {
            return None;
        }
        // A^{-1} = (1/det) * |  d  -c |
        //                    | -b   a |
        Some(Mat2 {
            a: self.d * det,
            c: -self.c * det,
            b: -self.b * det,
            d: self.a * det,
        })
    }

    /// The dominant eigenvalue `μ` of Lemma 7.1(i):
    /// `μ = (a + d + √((a−d)² + 4bc)) / 2`, which satisfies `μ > 1` and
    /// `μ > |ν|` for positive nonsingular matrices.
    #[must_use]
    pub fn dominant_eigenvalue(&self) -> f64 {
        let a = self.a as f64;
        let b = self.b as f64;
        let c = self.c as f64;
        let d = self.d as f64;
        (a + d + ((a - d) * (a - d) + 4.0 * b * c).sqrt()) / 2.0
    }

    /// A positive eigenvector of the dominant eigenvalue, normalised to
    /// `l₁` size 1 (Lemma 7.1(ii)).
    #[must_use]
    pub fn dominant_eigenvector(&self) -> (f64, f64) {
        let mu = self.dominant_eigenvalue();
        // (a - mu) r + c s = 0  =>  r : s = c : (mu - a).
        let r = self.c as f64;
        let s = mu - self.a as f64;
        let norm = r + s;
        (r / norm, s / norm)
    }
}

impl fmt::Display for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[[{}, {}], [{}, {}]]", self.a, self.c, self.b, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §7.1.1 XOR matrix for h(0) = 011, h(1) = 10.
    fn xor_matrix() -> Mat2 {
        Mat2::from_columns(Vec2::new(1, 2), Vec2::new(1, 1))
    }

    #[test]
    fn determinant_and_inverse() {
        let m = xor_matrix();
        assert_eq!(m.det(), -1);
        let inv = m.unimodular_inverse().unwrap();
        // A * A^{-1} = I.
        let e0 = m.mul_vec(inv.mul_vec(Vec2::new(1, 0)));
        let e1 = m.mul_vec(inv.mul_vec(Vec2::new(0, 1)));
        assert_eq!(e0, Vec2::new(1, 0));
        assert_eq!(e1, Vec2::new(0, 1));
    }

    #[test]
    fn non_unimodular_has_no_integer_inverse() {
        // Uniform homomorphism matrix (|h(0)|=|h(1)|=3): det = 1*2-2*1 = 0? Use
        // the 011/100 matrix: columns (1,2) and (2,1), det = 1-4 = -3.
        let m = Mat2::from_columns(Vec2::new(1, 2), Vec2::new(2, 1));
        assert_eq!(m.det(), -3);
        assert!(m.unimodular_inverse().is_none());
    }

    #[test]
    fn dominant_eigenvalue_matches_formula() {
        let m = xor_matrix();
        // mu = 1 + sqrt(2).
        let mu = m.dominant_eigenvalue();
        assert!((mu - (1.0 + 2f64.sqrt())).abs() < 1e-12);
        let (r, s) = m.dominant_eigenvector();
        assert!(r > 0.0 && s > 0.0);
        assert!((r + s - 1.0).abs() < 1e-12);
        // Check A v = mu v approximately.
        let av = (
            m.a as f64 * r + m.c as f64 * s,
            m.b as f64 * r + m.d as f64 * s,
        );
        assert!((av.0 - mu * r).abs() < 1e-9);
        assert!((av.1 - mu * s).abs() < 1e-9);
    }

    #[test]
    fn vec2_predicates() {
        assert!(Vec2::new(1, 1).is_positive());
        assert!(!Vec2::new(0, 1).is_positive());
        assert!(Vec2::new(0, 1).is_nonnegative());
        assert!(!Vec2::new(-1, 1).is_nonnegative());
        assert_eq!(Vec2::new(-2, 3).size(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Vec2::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(xor_matrix().to_string(), "[[1, 1], [2, 1]]");
    }
}
