//! Property tests for the D0L machinery: homomorphism algebra, repetition
//! bounds and the arbitrary-size constructions.

use anonring_words::constructions::{pull_back, start_sync_arbitrary, xor_arbitrary};
use anonring_words::{Homomorphism, Mat2, Vec2, Word};
use proptest::prelude::*;

fn arb_word(max_len: usize) -> impl Strategy<Value = Word> {
    proptest::collection::vec(0u8..=1, 1..=max_len).prop_map(Word::from_symbols)
}

fn arb_homomorphism() -> impl Strategy<Value = Homomorphism> {
    (arb_word(4), arb_word(4)).prop_map(|(a, b)| Homomorphism::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `h(u·v) = h(u)·h(v)` — homomorphism.
    #[test]
    fn homomorphisms_respect_concatenation(h in arb_homomorphism(), u in arb_word(8), v in arb_word(8)) {
        prop_assert_eq!(h.apply(&u.concat(&v)), h.apply(&u).concat(&h.apply(&v)));
    }

    /// `χ_{h(ω)} = A_h · χ_ω` — the characteristic-matrix relation §7.1
    /// builds on.
    #[test]
    fn characteristic_matrix_tracks_counts(h in arb_homomorphism(), w in arb_word(16)) {
        let m = h.characteristic_matrix();
        let chi = Vec2::new(w.zeros() as i64, w.ones() as i64);
        let hw = h.apply(&w);
        let chi_h = m.mul_vec(chi);
        prop_assert_eq!(chi_h.zeros as usize, hw.zeros());
        prop_assert_eq!(chi_h.ones as usize, hw.ones());
    }

    /// Cyclic occurrence counts are rotation invariant, and every
    /// length-k window count sums to n.
    #[test]
    fn cyclic_occurrences_are_rotation_invariant(w in arb_word(16), r in 0usize..16, k in 1usize..5) {
        prop_assume!(k <= w.len());
        let rotated = w.rotated(r);
        let mut total = 0usize;
        for sigma in w.distinct_cyclic_subwords(k) {
            prop_assert_eq!(
                w.cyclic_occurrences(&sigma),
                rotated.cyclic_occurrences(&sigma)
            );
            total += w.cyclic_occurrences(&sigma);
        }
        prop_assert_eq!(total, w.len());
    }

    /// Reversal maps occurrence counts onto reversed patterns.
    #[test]
    fn reversal_maps_occurrences(w in arb_word(16), k in 1usize..5) {
        prop_assume!(k <= w.len());
        let rev = w.reversed();
        for sigma in w.distinct_cyclic_subwords(k) {
            prop_assert_eq!(
                w.cyclic_occurrences(&sigma),
                rev.cyclic_occurrences(&sigma.reversed())
            );
        }
    }

    /// Subword complexity is bounded by both the word length and the
    /// alphabet power.
    #[test]
    fn subword_complexity_bounds(w in arb_word(20), k in 1usize..6) {
        let c = w.subword_complexity(k);
        prop_assert!(c <= w.len());
        prop_assert!(c <= 1usize << k.min(20));
    }

    /// The Theorem 7.5 pull-back inverts exactly: re-applying `A` k times
    /// recovers the original vector.
    #[test]
    fn pull_back_round_trips(z in 1i64..500, o in 1i64..500) {
        let a = Mat2::from_columns(Vec2::new(1, 2), Vec2::new(1, 1));
        let u = Vec2::new(z, o);
        let (v, k) = pull_back(a, u);
        prop_assert!(v.is_positive());
        let mut w = v;
        for _ in 0..k {
            w = a.mul_vec(w);
        }
        prop_assert_eq!(w, u);
    }

    /// The arbitrary-n XOR pair exists at every size ≥ 8 with exact
    /// length and opposite parities.
    #[test]
    fn xor_arbitrary_total_on_supported_sizes(n in 8usize..600) {
        let pair = xor_arbitrary(n).unwrap();
        prop_assert_eq!(pair.word0.len(), n);
        prop_assert_eq!(pair.word1.len(), n);
        prop_assert_ne!(pair.word0.parity(), pair.word1.parity());
        // Both are genuine h-images: lengths shrink back by the
        // homomorphism's growth factor.
        prop_assert!(pair.base_lens.0 < n || pair.iterations == 0);
    }

    /// The arbitrary even-n wake word is always perfectly balanced.
    #[test]
    fn start_sync_arbitrary_balanced(half in 243usize..700) {
        let n = 2 * half;
        let w = start_sync_arbitrary(n).unwrap();
        prop_assert_eq!(w.word.len(), n);
        prop_assert_eq!(w.word.ones(), half);
    }

    /// Prefix-XOR is a bijection onto orientations with fixed parity:
    /// applying it then differencing recovers the word.
    #[test]
    fn prefix_xor_differences_invert(w in arb_word(20)) {
        let d = w.prefix_xor();
        let mut recovered = vec![d.symbol(0)];
        for i in 1..w.len() {
            recovered.push(d.symbol(i) ^ d.symbol(i - 1));
        }
        prop_assert_eq!(Word::from_symbols(recovered), w);
    }
}
