//! # anonring-core
//!
//! The algorithms and lower bounds of Attiya, Snir and Warmuth,
//! *Computing on an Anonymous Ring* (J. ACM 35(4), 1988), implemented on
//! the simulators of [`anonring_sim`] and the string machinery of
//! [`anonring_words`].
//!
//! ## What can be computed (§3)
//!
//! On an anonymous ring of known size `n`, a function is computable iff it
//! is invariant under cyclic shifts of the input — plus reversal for
//! non-oriented rings (Theorem 3.4; see [`functions`] and
//! [`computability`]). The *input distribution* problem — every processor
//! learns the whole ring relative to itself — is the hardest computable
//! problem: solve it and any computable function follows by local
//! evaluation (see [`view::RingView`]).
//!
//! ## Algorithms (§4)
//!
//! | paper | module | messages |
//! |-------|--------|----------|
//! | §4.1 asynchronous input distribution | [`algorithms::async_input_dist`] | `n(n−1)` |
//! | §4.2 synchronous AND | [`algorithms::sync_and`] | `≤ 2n` |
//! | Fig. 2 synchronous input distribution | [`algorithms::sync_input_dist`] | `O(n log n)` |
//! | Fig. 4 (quasi-)orientation | [`algorithms::orientation`] | `O(n log n)` |
//! | Fig. 5 start synchronization | [`algorithms::start_sync`] | `O(n log n)` |
//! | §4.2.4 bit-message start synchronization | [`algorithms::start_sync_bits`] | `O(n log n)` 1-bit msgs |
//!
//! ## Lower bounds (§5–§7)
//!
//! The [`lower_bounds`] module implements the fooling-pair framework (both
//! the asynchronous Theorem 5.1 and the synchronous Theorem 6.2 versions)
//! and the concrete witnesses for AND, orientation, XOR and start
//! synchronization, at exact and arbitrary ring sizes. Closed-form bound
//! values live in [`bounds`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algorithms;
pub mod bounds;
pub mod computability;
pub mod functions;
pub mod lower_bounds;
pub mod view;

pub use view::RingView;
