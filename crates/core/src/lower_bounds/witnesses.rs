//! The paper's concrete fooling-pair witnesses (§5.2, §6.3, §7).

use anonring_sim::{Orientation, RingConfig};
use anonring_words::constructions::{
    self, start_sync_arbitrary, start_sync_exact, xor_arbitrary, xor_exact, ConstructionError,
};
use anonring_words::Word;

use crate::lower_bounds::fooling::{find_twins, AsyncFoolingPair, SyncFoolingPair};

fn oriented_bits_config(word: &Word) -> RingConfig<u8> {
    RingConfig::oriented(word.as_slice().to_vec())
}

/// §5.2.1: the AND fooling pair `R₁ = 1ⁿ`, `R₂ = 1ⁿ⁻¹0` with
/// `α = ⌊n/2⌋ − 1` and `β ≡ n` — bound `n·⌊n/2⌋` messages.
///
/// ```
/// use anonring_core::lower_bounds::witnesses::and_async_pair;
///
/// let pair = and_async_pair(16);
/// pair.verify_structure().expect("conditions 5a/5b hold");
/// assert_eq!(pair.bound(), 128.0); // n * floor(n/2)
/// ```
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn and_async_pair(n: usize) -> AsyncFoolingPair<u8> {
    assert!(n >= 4, "the AND pair needs n >= 4");
    let r1 = RingConfig::oriented(vec![1u8; n]);
    let mut v = vec![1u8; n];
    v[n - 1] = 0;
    let r2 = RingConfig::oriented(v);
    let alpha = n / 2 - 1;
    // The witness with the largest distance to the unique 0.
    let p = (n - 1 + n / 2) % n; // floor(n/2) - 1 hops from position n-1
    AsyncFoolingPair {
        r1,
        r2,
        p1: p,
        p2: p,
        alpha,
        beta: vec![n as f64; alpha + 1],
    }
}

/// §5.2.1 (general form): for any Boolean `f` with `f(0ⁿ) ≠ f(1ⁿ)`, one of
/// the two pairs `(1ⁿ, 0^⌈n/2⌉1^⌊n/2⌋)` or `(0ⁿ, 0^⌈n/2⌉1^⌊n/2⌋)` fools
/// any algorithm for `f`, with `α = ⌊(n−2)/4⌋` and `β ≡ n` — so *every*
/// such function costs `Ω(n²)` messages asynchronously.
///
/// `one_vs_mixed` selects which of the two candidate pairs to build.
///
/// # Panics
///
/// Panics if `n < 6`.
#[must_use]
pub fn constant_gap_async_pair(n: usize, one_vs_mixed: bool) -> AsyncFoolingPair<u8> {
    assert!(n >= 6, "the constant-gap pair needs n >= 6");
    let mixed: Vec<u8> = (0..n).map(|i| u8::from(i >= n.div_ceil(2))).collect();
    let uniform = vec![u8::from(one_vs_mixed); n];
    let r1 = RingConfig::oriented(uniform);
    let r2 = RingConfig::oriented(mixed);
    let alpha = (n - 2) / 4;
    // Witness inside the matching half of the mixed configuration.
    let p2 = if one_vs_mixed {
        // middle of the ones block [ceil(n/2), n)
        n.div_ceil(2) + n / 4
    } else {
        // middle of the zeros block [0, ceil(n/2))
        n / 4
    };
    AsyncFoolingPair {
        r1,
        r2,
        p1: p2,
        p2,
        alpha,
        beta: vec![n as f64; alpha + 1],
    }
}

/// Theorem 5.3 (Figure 6): the orientation pair — `R₁` fully clockwise,
/// `R₂` two opposing half-rings — with `α = ⌊(n−2)/4⌋`, `β ≡ n`; bound
/// `n·⌊(n+2)/4⌋` messages for any asynchronous orientation algorithm.
///
/// # Panics
///
/// Panics if `n` is even (even rings cannot be oriented, Theorem 3.5) or
/// `n < 5`.
#[must_use]
pub fn orientation_async_pair(n: usize) -> AsyncFoolingPair<()> {
    assert!(n % 2 == 1 && n >= 5, "orientation needs odd n >= 5");
    let r1 = RingConfig::new(vec![(); n], vec![Orientation::Clockwise; n]).expect("valid");
    let m = n / 2;
    // Processors 0..=m clockwise, the rest counterclockwise (the paper's
    // 1..m and m+1..2m+1, shifted to 0-based).
    let orientations = (0..n)
        .map(|i| {
            if i <= m {
                Orientation::Clockwise
            } else {
                Orientation::Counterclockwise
            }
        })
        .collect();
    let r2 = RingConfig::new(vec![(); n], orientations).expect("valid");
    let alpha = (n - 2) / 4;
    // The paper's processor ~n/4 sits deep inside the clockwise half of
    // R2 and matches any processor of R1.
    let p2 = n / 4;
    AsyncFoolingPair {
        r1,
        r2,
        p1: p2,
        p2,
        alpha,
        beta: vec![n as f64; alpha + 1],
    }
}

/// §6.3.1: the synchronous XOR pair `(hᵏ(0), hᵏ(1))` on oriented rings of
/// size `n = 3ᵏ`, with `2α + 1 = n/9` and `β(k) = 2n/(27(2k+1))` — bound
/// `(n/54)·ln(n/9)` messages.
///
/// # Panics
///
/// Panics if `k < 3` (smaller rings leave no room for `α ≥ 0`).
#[must_use]
pub fn xor_sync_pair(k: usize) -> SyncFoolingPair<u8> {
    assert!(k >= 3, "need n = 3^k >= 27");
    let w = xor_exact(k);
    let n = w.word0.len();
    let alpha = (n / 9 - 1) / 2;
    let r1 = oriented_bits_config(&w.word0);
    let r2 = oriented_bits_config(&w.word1);
    let (p1, p2) = find_twins(&r1, &r2, alpha).expect("Theorem 6.3 guarantees twins");
    SyncFoolingPair {
        r1,
        r2,
        p1,
        p2,
        alpha,
        beta: (0..=alpha)
            .map(|j| 2.0 * n as f64 / (27.0 * (2 * j + 1) as f64))
            .collect(),
    }
}

/// §7.1.1: a synchronous XOR fooling pair at **arbitrary** `n`, built from
/// the non-uniform homomorphism via Theorem 7.5. The `β` profile is the
/// *measured* joint symmetry index (the paper's constants are asymptotic;
/// the measured profile is what Theorem 6.2 actually certifies).
///
/// `alpha_cap` bounds the radius (symmetry-index evaluation is `O(n²·α)`).
///
/// # Errors
///
/// Propagates [`ConstructionError`] for unsupported sizes.
pub fn xor_sync_pair_arbitrary(
    n: usize,
    alpha_cap: usize,
) -> Result<SyncFoolingPair<u8>, ConstructionError> {
    let w = xor_arbitrary(n)?;
    let r1 = oriented_bits_config(&w.word0);
    let r2 = oriented_bits_config(&w.word1);
    // Conservative radius: patterns repeat while 2a+1 <= a_const * n /
    // max base length (Theorem 7.4); cap for tractability.
    let base = w.base_lens.0.max(w.base_lens.1).max(1);
    let alpha = ((n / (30 * base)).saturating_sub(1) / 2).min(alpha_cap);
    let (p1, p2) =
        find_twins(&r1, &r2, alpha).ok_or(ConstructionError::Infeasible("no twins found"))?;
    let pair = SyncFoolingPair {
        r1,
        r2,
        p1,
        p2,
        alpha,
        beta: vec![1.0; alpha + 1],
    };
    Ok(pair.with_measured_beta())
}

/// §6.3.2: the synchronous orientation witness `D = hᵏ(0)` at `n = 3ᵏ`,
/// used as a fooling pair with itself: two processors with equal
/// neighborhoods but opposite orientations, `β(j) = 4n/(27(2j+1))` —
/// bound `(n/27)·ln(n/9)` messages.
///
/// The configuration's inputs are `()`; the orientation bits are the
/// topology.
///
/// # Panics
///
/// Panics if `k < 3`.
#[must_use]
pub fn orientation_sync_pair(k: usize) -> SyncFoolingPair<()> {
    assert!(k >= 3, "need n = 3^k >= 27");
    let d = constructions::orientation_exact(k);
    let n = d.len();
    let config = RingConfig::new(
        vec![(); n],
        d.as_slice()
            .iter()
            .map(|&b| Orientation::from_bit(b))
            .collect(),
    )
    .expect("valid ring");
    let alpha = (n / 9 - 1) / 2;
    // The paper's twins: the middles of the first and second thirds
    // (1-based ceil(n/6) and ceil(n/2)).
    let p1 = n.div_ceil(6) - 1;
    let p2 = n.div_ceil(2) - 1;
    SyncFoolingPair {
        r1: config.clone(),
        r2: config,
        p1,
        p2,
        alpha,
        beta: (0..=alpha)
            .map(|j| 4.0 * n as f64 / (27.0 * (2 * j + 1) as f64))
            .collect(),
    }
}

/// §7.2.1: the arbitrary-odd-`n` orientation witness: the two prefix-XOR
/// orientations `Dᵃ`, `Dᵇ` of the two-stage ε-word, with measured `β`.
/// The twins are the palindrome-centre processor and its left neighbour
/// (opposite orientations, identical large neighborhoods).
///
/// `alpha_cap` bounds the verified radius for tractability.
///
/// # Errors
///
/// Propagates [`ConstructionError`] for unsupported sizes.
pub fn orientation_sync_pair_arbitrary(
    n: usize,
    alpha_cap: usize,
) -> Result<SyncFoolingPair<()>, ConstructionError> {
    let w = constructions::orientation_arbitrary(n)?;
    let to_config = |d: &Word| {
        RingConfig::new(
            vec![(); n],
            d.as_slice()
                .iter()
                .map(|&b| Orientation::from_bit(b))
                .collect(),
        )
        .expect("valid ring")
    };
    let r1 = to_config(&w.orientation_a());
    let r2 = to_config(&w.orientation_b());
    let c = w.palindrome_center;
    // epsilon[c] = 1 and the surrounding window is a palindrome, so
    // processors c and c-1 mirror each other; Da and Db swap their roles.
    let alpha_max = (w.palindrome_len / 2).saturating_sub(1);
    let alpha = alpha_max.min(alpha_cap);
    let pair = SyncFoolingPair {
        r1,
        r2,
        p1: c,
        p2: c,
        alpha,
        beta: vec![1.0; alpha + 1],
    };
    Ok(pair.with_measured_beta())
}

/// §6.3.3: the start-synchronization witness at `n = 4·3ᵏ`: the wake word
/// `σ₀σ₀σ₁σ₁` (as ring inputs, for symmetry accounting) with the twins
/// `⌊m/2⌋`, `⌊3m/2⌋` that wake at different cycles; `β(j) = n/(27(2j+1))`
/// — bound `(n/54)·ln(n/36)` messages.
///
/// # Panics
///
/// Panics if `k < 3`.
#[must_use]
pub fn start_sync_pair(k: usize) -> SyncFoolingPair<u8> {
    assert!(k >= 3, "need m = 3^k >= 27");
    let w = start_sync_exact(k);
    let n = w.n();
    let m = n / 4;
    let config = oriented_bits_config(&w.word);
    let alpha = (m / 9 - 1) / 2;
    SyncFoolingPair {
        r1: config.clone(),
        r2: config,
        p1: w.distinct_pair.0,
        p2: w.distinct_pair.1,
        alpha,
        // Theorem 6.3 (d = 3, c = 2): every window of length 2j+1 <= m/9
        // occurs at least 4m/(27(2j+1)) = n/(27(2j+1)) times per copy;
        // the joint index over the duplicated configuration doubles it.
        beta: (0..=alpha)
            .map(|j| 2.0 * n as f64 / (27.0 * (2 * j + 1) as f64))
            .collect(),
    }
}

/// §7.2.2: the arbitrary-even-`n` start-synchronization witness with
/// measured `β`.
///
/// # Errors
///
/// Propagates [`ConstructionError`] for unsupported sizes.
pub fn start_sync_pair_arbitrary(
    n: usize,
    alpha_cap: usize,
) -> Result<SyncFoolingPair<u8>, ConstructionError> {
    let w = start_sync_arbitrary(n)?;
    let config = oriented_bits_config(&w.word);
    let alpha = alpha_cap;
    let (p1, p2) = twins_with_different_wakes(&config, &w.word, alpha)
        .ok_or(ConstructionError::Infeasible("no unequal-wake twins"))?;
    let pair = SyncFoolingPair {
        r1: config.clone(),
        r2: config,
        p1,
        p2,
        alpha,
        beta: vec![1.0; alpha + 1],
    };
    Ok(pair.with_measured_beta())
}

/// Finds two processors with equal `alpha`-neighborhoods in the wake-word
/// configuration whose ±1 walk values (wake times) differ — the (6a)
/// witnesses for start synchronization.
fn twins_with_different_wakes(
    config: &RingConfig<u8>,
    word: &Word,
    alpha: usize,
) -> Option<(usize, usize)> {
    use std::collections::HashMap;
    let mut walk = Vec::with_capacity(word.len());
    let mut t = 0i64;
    for &e in word.as_slice() {
        t += if e == 1 { 1 } else { -1 };
        walk.push(t);
    }
    let mut best: Option<(usize, usize, i64)> = None;
    let mut seen: HashMap<_, usize> = HashMap::new();
    for i in 0..config.n() {
        let nb = anonring_sim::neighborhood(config, i, alpha);
        if let Some(&j) = seen.get(&nb) {
            let gap = (walk[i] - walk[j]).abs();
            if gap > 0 && best.is_none_or(|(.., g)| gap > g) {
                best = Some((j, i, gap));
            }
        } else {
            seen.insert(nb, i);
        }
    }
    best.map(|(a, b, _)| (a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_pair_structure_and_bound() {
        for n in [4usize, 7, 10, 25] {
            let pair = and_async_pair(n);
            pair.verify_structure().unwrap();
            assert_eq!(pair.bound(), (n * (n / 2)) as f64, "n={n}");
        }
    }

    #[test]
    fn constant_gap_pairs_verify() {
        for n in [6usize, 9, 16, 31] {
            for case in [false, true] {
                let pair = constant_gap_async_pair(n, case);
                pair.verify_structure().unwrap();
                assert!(pair.bound() >= (n * n / 4) as f64 - n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn orientation_async_pair_verifies() {
        for n in [5usize, 9, 15, 31] {
            let pair = orientation_async_pair(n);
            pair.verify_structure().unwrap();
            assert!(pair.bound() >= (n * (n / 4)) as f64, "n={n}");
        }
    }

    #[test]
    fn xor_sync_pair_verifies_and_meets_formula() {
        for k in [3usize, 4, 5] {
            let pair = xor_sync_pair(k);
            pair.verify_structure().unwrap();
            let n = 3u64.pow(k as u32);
            let formula = crate::bounds::xor_sync_lower(n);
            assert!(
                pair.bound() >= formula,
                "k={k}: {} < {formula}",
                pair.bound()
            );
            // XOR really differs on the two inputs.
            let x1: u8 = pair.r1.inputs().iter().fold(0, |a, &b| a ^ b);
            let x2: u8 = pair.r2.inputs().iter().fold(0, |a, &b| a ^ b);
            assert_ne!(x1, x2);
        }
    }

    #[test]
    fn xor_arbitrary_pair_verifies() {
        for n in [200usize, 501, 777] {
            let pair = xor_sync_pair_arbitrary(n, 8).unwrap();
            pair.verify_structure().unwrap();
            assert!(pair.bound() >= n as f64 / 4.0, "n={n}: {}", pair.bound());
        }
    }

    #[test]
    fn orientation_sync_pair_verifies() {
        for k in [3usize, 4, 5] {
            let pair = orientation_sync_pair(k);
            pair.verify_structure().unwrap();
            let n = 3u64.pow(k as u32);
            assert!(pair.bound() >= crate::bounds::orientation_sync_lower(n));
            // The twins face opposite ways.
            assert_ne!(
                pair.r1.topology().orientation(pair.p1),
                pair.r2.topology().orientation(pair.p2)
            );
        }
    }

    #[test]
    fn orientation_arbitrary_pair_verifies() {
        let pair = orientation_sync_pair_arbitrary(3125, 6).unwrap();
        pair.verify_structure().unwrap();
        assert!(pair.bound() >= 3125.0 / 2.0);
        assert_ne!(
            pair.r1.topology().orientation(pair.p1),
            pair.r2.topology().orientation(pair.p2)
        );
    }

    #[test]
    fn start_sync_pairs_verify() {
        for k in [3usize, 4] {
            let pair = start_sync_pair(k);
            pair.verify_structure().unwrap();
            let n = 4 * 3u64.pow(k as u32);
            assert!(pair.bound() >= crate::bounds::start_sync_sync_lower(n));
        }
        let pair = start_sync_pair_arbitrary(1000, 6).unwrap();
        pair.verify_structure().unwrap();
        assert!(pair.bound() >= 500.0);
    }
}
