//! Fooling pairs: definitions 5a/5b and 6a/6b, machine-checked.

use std::hash::Hash;

use anonring_sim::{joint_symmetry_index, neighborhood, symmetry_index, RingConfig};

/// Finds a pair of processors with equal `alpha`-neighborhoods across two
/// configurations — the "twin" needed by conditions (5a)/(6a).
#[must_use]
pub fn find_twins<V: Clone + Eq + Hash>(
    r1: &RingConfig<V>,
    r2: &RingConfig<V>,
    alpha: usize,
) -> Option<(usize, usize)> {
    use std::collections::HashMap;
    let mut seen = HashMap::new();
    for i in 0..r1.n() {
        seen.entry(neighborhood(r1, i, alpha)).or_insert(i);
    }
    for j in 0..r2.n() {
        if let Some(&i) = seen.get(&neighborhood(r2, j, alpha)) {
            return Some((i, j));
        }
    }
    None
}

/// An asynchronous `(α, β)` fooling pair (§5.1).
///
/// Conditions:
/// * **(5a)** processors `p1 ∈ R₁`, `p2 ∈ R₂` have equal
///   `α`-neighborhoods but must produce different outputs;
/// * **(5b)** `SI(R₁, k) ≥ β(k)` for `0 ≤ k ≤ α`.
///
/// Theorem 5.1: any algorithm whose outputs satisfy the disagreement
/// sends at least `Σ β(k)` messages on `R₁` under the synchronizing
/// adversary.
#[derive(Debug, Clone)]
pub struct AsyncFoolingPair<V> {
    /// The configuration that pays the bound.
    pub r1: RingConfig<V>,
    /// The contrasting configuration.
    pub r2: RingConfig<V>,
    /// Witness processor in `r1`.
    pub p1: usize,
    /// Witness processor in `r2`.
    pub p2: usize,
    /// Neighborhood radius up to which the processors are twins.
    pub alpha: usize,
    /// Claimed repetition profile `β(0..=α)`.
    pub beta: Vec<f64>,
}

impl<V: Clone + Eq + Hash> AsyncFoolingPair<V> {
    /// The Theorem 5.1 bound `Σ_{k=0}^{α} β(k)`.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.beta.iter().sum()
    }

    /// Checks condition (5b) — and the neighborhood half of (5a) —
    /// against the actual configurations. Returns a description of the
    /// first violated condition, if any.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    pub fn verify_structure(&self) -> Result<(), String> {
        if self.beta.len() != self.alpha + 1 {
            return Err(format!(
                "beta has {} entries for alpha = {}",
                self.beta.len(),
                self.alpha
            ));
        }
        if neighborhood(&self.r1, self.p1, self.alpha)
            != neighborhood(&self.r2, self.p2, self.alpha)
        {
            return Err(format!(
                "processors {} and {} are distinguishable at radius {}",
                self.p1, self.p2, self.alpha
            ));
        }
        for (k, &need) in self.beta.iter().enumerate() {
            let got = symmetry_index(&self.r1, k) as f64;
            if got < need {
                return Err(format!("SI(R1, {k}) = {got} < beta({k}) = {need}"));
            }
        }
        Ok(())
    }

    /// Checks the output half of condition (5a) against the ring outputs
    /// of actual runs on `r1` and `r2`.
    #[must_use]
    pub fn outputs_disagree<O: PartialEq>(&self, out1: &[O], out2: &[O]) -> bool {
        out1[self.p1] != out2[self.p2]
    }
}

/// A synchronous `(α, β)` fooling pair (§6.1): like the asynchronous one
/// but with the *joint* symmetry index — no neighborhood may be rare in
/// both configurations at once, because a cycle advances the computation
/// only if a message is sent in one of the two runs (Lemma 6.1).
///
/// The two configurations may be the *same* configuration with two
/// distinct witness processors (used for orientation, §6.3.2).
#[derive(Debug, Clone)]
pub struct SyncFoolingPair<V> {
    /// First configuration.
    pub r1: RingConfig<V>,
    /// Second configuration (possibly equal to `r1`).
    pub r2: RingConfig<V>,
    /// Witness processor in `r1`.
    pub p1: usize,
    /// Witness processor in `r2`.
    pub p2: usize,
    /// Neighborhood radius up to which the processors are twins.
    pub alpha: usize,
    /// Claimed joint repetition profile `β(0..=α)`.
    pub beta: Vec<f64>,
}

impl<V: Clone + Eq + Hash> SyncFoolingPair<V> {
    /// The Theorem 6.2 bound `½·Σ_{k=0}^{α} β(k)` (messages on one of the
    /// two configurations).
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.beta.iter().sum::<f64>() / 2.0
    }

    /// Checks condition (6b) — and the neighborhood half of (6a).
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    pub fn verify_structure(&self) -> Result<(), String> {
        if self.beta.len() != self.alpha + 1 {
            return Err(format!(
                "beta has {} entries for alpha = {}",
                self.beta.len(),
                self.alpha
            ));
        }
        if neighborhood(&self.r1, self.p1, self.alpha)
            != neighborhood(&self.r2, self.p2, self.alpha)
        {
            return Err(format!(
                "processors {} and {} are distinguishable at radius {}",
                self.p1, self.p2, self.alpha
            ));
        }
        for (k, &need) in self.beta.iter().enumerate() {
            let got = joint_symmetry_index(&[self.r1.clone(), self.r2.clone()], k) as f64;
            if got < need {
                return Err(format!("SI(R1, R2, {k}) = {got} < beta({k}) = {need}"));
            }
        }
        Ok(())
    }

    /// Replaces the claimed `β` with the *measured* joint symmetry index —
    /// the tightest profile Theorem 6.2 supports for these configurations.
    #[must_use]
    pub fn with_measured_beta(mut self) -> Self {
        self.beta = (0..=self.alpha)
            .map(|k| joint_symmetry_index(&[self.r1.clone(), self.r2.clone()], k) as f64)
            .collect();
        self
    }

    /// Checks the output half of condition (6a).
    #[must_use]
    pub fn outputs_disagree<O: PartialEq>(&self, out1: &[O], out2: &[O]) -> bool {
        out1[self.p1] != out2[self.p2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_style_pair_verifies() {
        let n = 10usize;
        let pair = AsyncFoolingPair {
            r1: RingConfig::oriented(vec![1u8; n]),
            r2: RingConfig::oriented({
                let mut v = vec![1u8; n];
                v[n - 1] = 0;
                v
            }),
            p1: 4,
            p2: 4,
            alpha: n / 2 - 1,
            beta: vec![n as f64; n / 2],
        };
        pair.verify_structure().unwrap();
        assert_eq!(pair.bound(), (n * (n / 2)) as f64);
        assert!(pair.outputs_disagree(&[1u64; 10], &[0u64; 10]));
    }

    #[test]
    fn structure_violations_are_reported() {
        let n = 6usize;
        // A pair whose processors are actually distinguishable.
        let bad = AsyncFoolingPair {
            r1: RingConfig::oriented(vec![1u8; n]),
            r2: RingConfig::oriented(vec![0u8; n]),
            p1: 0,
            p2: 0,
            alpha: 1,
            beta: vec![1.0, 1.0],
        };
        assert!(bad.verify_structure().is_err());
        // An overstated beta.
        let overstated = AsyncFoolingPair {
            r1: RingConfig::oriented(vec![1u8, 1, 1, 1, 1, 0]),
            r2: RingConfig::oriented(vec![1u8; 6]),
            p1: 2,
            p2: 2,
            alpha: 1,
            beta: vec![6.0, 6.0],
        };
        assert!(overstated.verify_structure().is_err());
    }

    #[test]
    fn measured_beta_is_never_less_than_claimed_for_valid_pairs() {
        let w = anonring_words::constructions::xor_exact(3);
        let n = w.word0.len();
        let alpha = (n / 9 - 1) / 2;
        let r1 = RingConfig::oriented(w.word0.as_slice().to_vec());
        let r2 = RingConfig::oriented(w.word1.as_slice().to_vec());
        let (p1, p2) = find_twins(&r1, &r2, alpha).expect("6.3 guarantees twins");
        let pair = SyncFoolingPair {
            r1,
            r2,
            p1,
            p2,
            alpha,
            beta: (0..=alpha)
                .map(|k| 2.0 * n as f64 / (27.0 * (2 * k + 1) as f64))
                .collect(),
        };
        pair.verify_structure().unwrap();
        let claimed = pair.bound();
        let measured = pair.clone().with_measured_beta().bound();
        assert!(measured >= claimed);
    }
}
