//! The fooling-pair lower-bound framework (§5.1, §6.1) and the paper's
//! concrete witnesses (§5.2, §6.3, §7).
//!
//! A *fooling pair* is two initial configurations containing two
//! indistinguishable processors that must answer differently, in which
//! every small neighborhood repeats many times. Theorem 5.1
//! (asynchronous) and Theorem 6.2 (synchronous) convert the repetition
//! profile `β(k)` into a message lower bound:
//!
//! * asynchronous: `Σ_{k=0}^{α} β(k)` messages on `R₁` under the
//!   synchronizing adversary;
//! * synchronous: `½·Σ_{k=0}^{α} β(k)` messages on one of `R₁`, `R₂`.
//!
//! Everything here is *machine-checked*: [`fooling`] verifies the symmetry
//! condition against the real symmetry-index function and the
//! disagreement condition against actual runs, and the experiment harness
//! confirms that the universal algorithms really do pay the bound.

pub mod fooling;
pub mod random_functions;
pub mod witnesses;

pub use fooling::{AsyncFoolingPair, SyncFoolingPair};
