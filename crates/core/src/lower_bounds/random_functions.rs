//! Random computable functions (Theorem 5.4 and Theorem 6.7).
//!
//! A computable Boolean function on an oriented `n`-ring is exactly a
//! Boolean function on *necklaces* — the equivalence classes of `{0,1}ⁿ`
//! under rotation (Theorem 3.4). Theorem 5.4 shows that a random such
//! function almost surely costs `Ω(n²)` messages asynchronously (it
//! disagrees between `1ⁿ` and some necklace containing `⌈n/2⌉` contiguous
//! ones); Theorem 6.7 shows a random one almost surely costs
//! `Ω(n log n)` synchronously (it disagrees on two Thue–Morse images).
//!
//! This module provides the exact combinatorial quantities; the sampling
//! experiments live in `anonring-bench`.

use std::collections::HashSet;

use anonring_words::homomorphism::thue_morse;
use anonring_words::Word;

/// The lexicographically least rotation of an `n`-bit necklace (as a mask,
/// bit `i` = input of processor `i`).
#[must_use]
pub fn canonical_rotation(mask: u64, n: usize) -> u64 {
    assert!((1..=32).contains(&n), "supported up to n = 32");
    let m = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mask = mask & m;
    (0..n)
        .map(|r| ((mask >> r) | (mask << (n - r))) & m)
        .min()
        .expect("n >= 1")
}

/// All necklace representatives for `n`-bit inputs (exhaustive; use small
/// `n`).
#[must_use]
pub fn necklace_representatives(n: usize) -> Vec<u64> {
    assert!(n <= 22, "exhaustive enumeration limited to n <= 22");
    let mut set: HashSet<u64> = HashSet::new();
    for mask in 0u64..(1 << n) {
        set.insert(canonical_rotation(mask, n));
    }
    let mut v: Vec<u64> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// The necklaces that contain `⌈n/2⌉` contiguous ones — the paper's `s`
/// in Theorem 5.4 (a lower bound for it: the paper uses `s ≥ 2^{n/2}/n`).
#[must_use]
pub fn necklaces_with_half_ones_run(n: usize) -> Vec<u64> {
    assert!(n <= 22, "exhaustive enumeration limited to n <= 22");
    let run = n.div_ceil(2);
    let ones = (1u64 << run) - 1;
    let mut set = HashSet::new();
    // All strings starting with ceil(n/2) ones.
    for rest in 0u64..(1 << (n - run)) {
        set.insert(canonical_rotation(ones | (rest << run), n));
    }
    let mut v: Vec<u64> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// Theorem 5.4's probability bound: a random computable Boolean function
/// has asynchronous message complexity `≤ n²/4` with probability less
/// than `2^{1 − s}`, where `s ≥ 2^{n/2}/n`.
#[must_use]
pub fn theorem_5_4_probability_bound(n: u64) -> f64 {
    let s = 2f64.powf(n as f64 / 2.0) / n as f64;
    2f64.powf(1.0 - s)
}

/// The Thue–Morse images `hᵏ(σ)` over all seeds `σ` of length `len` —
/// Theorem 6.7's family of `2^len` length-`len·2ᵏ` ring inputs, any two
/// of which form a fooling pair for a function that separates them.
///
/// # Panics
///
/// Panics for `len > 20` (2^len images).
#[must_use]
pub fn thue_morse_images(len: usize, k: usize) -> Vec<Word> {
    assert!(len <= 20, "2^len images; keep len small");
    let h = thue_morse();
    (0u64..(1 << len))
        .map(|mask| {
            let seed: Word = (0..len).map(|i| ((mask >> i) & 1) as u8).collect();
            h.iterate(&seed, k)
        })
        .collect()
}

/// Theorem 6.7's probability bound at `n = 2^{2k}`: a random computable
/// function costs fewer than `(n/64)·ln(n/64)` synchronous messages with
/// probability at most `2^{1 − 2^{√n}/n}`.
#[must_use]
pub fn theorem_6_7_probability_bound(n: u64) -> f64 {
    let s = 2f64.powf((n as f64).sqrt()) / n as f64;
    2f64.powf(1.0 - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rotation_is_rotation_invariant() {
        let n = 6;
        for mask in 0u64..(1 << n) {
            let c = canonical_rotation(mask, n);
            let rotated = ((mask >> 1) | (mask << (n - 1))) & ((1 << n) - 1);
            assert_eq!(canonical_rotation(rotated, n), c, "mask {mask:b}");
            assert!(c <= mask);
        }
    }

    #[test]
    fn necklace_counts_match_known_values() {
        // OEIS A000031: binary necklaces of length n.
        assert_eq!(necklace_representatives(1).len(), 2);
        assert_eq!(necklace_representatives(2).len(), 3);
        assert_eq!(necklace_representatives(3).len(), 4);
        assert_eq!(necklace_representatives(4).len(), 6);
        assert_eq!(necklace_representatives(5).len(), 8);
        assert_eq!(necklace_representatives(6).len(), 14);
        assert_eq!(necklace_representatives(8).len(), 36);
    }

    #[test]
    fn half_run_necklaces_exceed_paper_lower_bound() {
        for n in [6usize, 8, 10, 12, 14] {
            let s = necklaces_with_half_ones_run(n).len() as f64;
            let paper = 2f64.powf(n as f64 / 2.0) / n as f64;
            assert!(s >= paper, "n={n}: s={s} < {paper}");
        }
    }

    #[test]
    fn thue_morse_images_are_distinct_and_sized() {
        let images = thue_morse_images(4, 2);
        assert_eq!(images.len(), 16);
        assert!(images.iter().all(|w| w.len() == 16));
        let set: std::collections::HashSet<_> = images.iter().collect();
        assert_eq!(set.len(), 16, "distinct seeds give distinct images");
    }

    #[test]
    fn probability_bounds_shrink_fast() {
        assert!(theorem_5_4_probability_bound(20) < 1e-9);
        assert!(theorem_6_7_probability_bound(256) < 1e-9);
        // Small sizes give vacuous (but valid) bounds.
        assert!(theorem_5_4_probability_bound(8) <= 2.0);
        assert!(theorem_6_7_probability_bound(64) <= 0.5);
    }
}
