//! §4.2.1's closing remark: trading time for bits with "zero content"
//! messages.
//!
//! > "If there are k different types of messages, then we replace each
//! > cycle by k subcycles and represent a message of type i sent at cycle
//! > t by an empty message sent at cycle k(t−1) + i."
//!
//! [`TimeEncoded`] wraps **any** synchronous process whose message type
//! admits a finite code ([`TimeCodable`]) and runs it with messages that
//! carry *zero bits*: the information lives entirely in the send time
//! within a window of `k` subcycles. Message counts are unchanged; bit
//! cost drops to zero; time multiplies by `k`.
//!
//! Applied to Figure 2 — whose labels are up to `n`-bit strings, hence
//! `k = Θ(2ⁿ)` — this produces exactly the extreme point of the paper's
//! §8 trade-off: `Θ(n log n)` *zero-bit* messages at exponential time.
//! Applied to Figure 4 (8 message types) it is entirely practical.

use std::marker::PhantomData;

use anonring_sim::sync::{Emit, Received, Step, SyncProcess};
use anonring_sim::{Message, Port};
use anonring_words::Word;

use crate::algorithms::orientation::OrientMsg;
use crate::algorithms::sync_input_dist::IdMsg;

/// A message type with an injective finite encoding, so that it can be
/// transmitted as a bare send-time offset.
pub trait TimeCodable: Message {
    /// Number of distinct codes (the paper's `k`), possibly a function of
    /// the ring size.
    fn range(n: usize) -> u64;
    /// This message's code in `0..range(n)`.
    fn encode(&self, n: usize) -> u64;
    /// Inverse of [`TimeCodable::encode`].
    ///
    /// # Panics
    ///
    /// Implementations may panic on codes never produced by `encode`.
    fn decode(code: u64, n: usize) -> Self;
}

/// Words of length ≤ `n` encode as `(1 << len) | bits` — the leading 1
/// preserves the length.
fn encode_word(w: &Word, n: usize) -> u64 {
    assert!(w.len() <= n, "word longer than the ring");
    let mut v = 1u64;
    for &b in w.as_slice() {
        v = (v << 1) | u64::from(b);
    }
    v
}

fn decode_word(mut v: u64) -> Word {
    let mut bits = Vec::new();
    while v > 1 {
        bits.push((v & 1) as u8);
        v >>= 1;
    }
    bits.reverse();
    Word::from_symbols(bits)
}

impl TimeCodable for IdMsg {
    fn range(n: usize) -> u64 {
        assert!(n < 60, "the exponential window must fit in u64");
        3 << (n + 1)
    }
    fn encode(&self, n: usize) -> u64 {
        let (tag, w) = match self {
            IdMsg::Label(w) => (0u64, w),
            IdMsg::Collect(w) => (1, w),
            IdMsg::Broadcast(w) => (2, w),
        };
        tag * (1 << (n + 1)) + encode_word(w, n)
    }
    fn decode(code: u64, n: usize) -> IdMsg {
        let window = 1u64 << (n + 1);
        let w = decode_word(code % window);
        match code / window {
            0 => IdMsg::Label(w),
            1 => IdMsg::Collect(w),
            2 => IdMsg::Broadcast(w),
            other => panic!("invalid tag {other}"),
        }
    }
}

impl TimeCodable for OrientMsg {
    fn range(_n: usize) -> u64 {
        8
    }
    fn encode(&self, _n: usize) -> u64 {
        match self {
            OrientMsg::Marker(Port::Left) => 0,
            OrientMsg::Marker(Port::Right) => 1,
            OrientMsg::Seg(0) => 2,
            OrientMsg::Seg(_) => 3,
            OrientMsg::Fin(0, Port::Left) => 4,
            OrientMsg::Fin(0, Port::Right) => 5,
            OrientMsg::Fin(_, Port::Left) => 6,
            OrientMsg::Fin(_, Port::Right) => 7,
        }
    }
    fn decode(code: u64, _n: usize) -> OrientMsg {
        match code {
            0 => OrientMsg::Marker(Port::Left),
            1 => OrientMsg::Marker(Port::Right),
            2 => OrientMsg::Seg(0),
            3 => OrientMsg::Seg(1),
            4 => OrientMsg::Fin(0, Port::Left),
            5 => OrientMsg::Fin(0, Port::Right),
            6 => OrientMsg::Fin(1, Port::Left),
            7 => OrientMsg::Fin(1, Port::Right),
            other => panic!("invalid code {other}"),
        }
    }
}

/// The zero-bit message: the code is the send *time*, not content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyMsg;

impl Message for EmptyMsg {
    fn bit_len(&self) -> usize {
        0
    }
}

/// Runs `P` with every message replaced by an [`EmptyMsg`] sent at the
/// subcycle encoding its type. Inner cycle `t` occupies real cycles
/// `[t·k, (t+1)·k)`; a type-`c` message of inner cycle `t` is sent at
/// real cycle `t·k + c`.
#[derive(Debug, Clone)]
pub struct TimeEncoded<P: SyncProcess>
where
    P::Msg: TimeCodable,
{
    inner: P,
    n: usize,
    k: u64,
    inner_cycle: u64,
    /// Messages scheduled for the current window: (send offset, port).
    outbox: Vec<(u64, Port)>,
    /// Arrival offsets observed in the current window, per port.
    arrivals: [Option<u64>; 2],
    halted: Option<<P as SyncProcess>::Output>,
    _marker: PhantomData<P>,
}

impl<P: SyncProcess> TimeEncoded<P>
where
    P::Msg: TimeCodable,
{
    /// Wraps an inner process for a ring of size `n`.
    #[must_use]
    pub fn new(inner: P, n: usize) -> TimeEncoded<P> {
        TimeEncoded {
            inner,
            n,
            k: P::Msg::range(n),
            inner_cycle: 0,
            outbox: Vec::new(),
            arrivals: [None, None],
            halted: None,
            _marker: PhantomData,
        }
    }
}

impl<P: SyncProcess> SyncProcess for TimeEncoded<P>
where
    P::Msg: TimeCodable,
{
    type Msg = EmptyMsg;
    type Output = P::Output;

    fn step(&mut self, cycle: u64, rx: Received<EmptyMsg>) -> Step<EmptyMsg, P::Output> {
        let offset = cycle % self.k;

        // Record arrivals: a message sent at offset c arrives at offset
        // c + 1 (possibly wrapping into this window from... it cannot
        // wrap: c < k implies c + 1 <= k, and offset k is the next
        // window's offset 0 — so a message sent at the *last* subcycle
        // arrives at offset 0 of the next window, which is fine because
        // decoding happens before the window's own sends).
        for (port, _) in rx.iter() {
            let arrival_offset = if offset == 0 { self.k } else { offset };
            let slot = &mut self.arrivals[usize::from(port == Port::Right)];
            debug_assert!(slot.is_none(), "one message per port per window");
            *slot = Some(arrival_offset - 1);
        }

        let mut step: Step<EmptyMsg, P::Output> = Step::idle();

        if offset == 0 {
            // Window boundary: deliver the previous window's arrivals to
            // the inner process and collect its sends for this window.
            if let Some(output) = self.halted.take() {
                return Step::halt(output);
            }
            let inner_rx = Received {
                from_left: self.arrivals[0].take().map(|c| P::Msg::decode(c, self.n)),
                from_right: self.arrivals[1].take().map(|c| P::Msg::decode(c, self.n)),
            };
            let inner_step = self.inner.step(self.inner_cycle, inner_rx);
            self.inner_cycle += 1;
            self.outbox.clear();
            if let Some(m) = inner_step.to_left {
                self.outbox.push((m.encode(self.n), Port::Left));
            }
            if let Some(m) = inner_step.to_right {
                self.outbox.push((m.encode(self.n), Port::Right));
            }
            if let Some(output) = inner_step.halt {
                if self.outbox.is_empty() {
                    return Step::halt(output);
                }
                // Send the final messages at their subcycles, then halt.
                self.halted = Some(output);
            }
        }

        for &(send_offset, port) in &self.outbox {
            if send_offset == offset {
                match port {
                    Port::Left => step.to_left = Some(EmptyMsg),
                    Port::Right => step.to_right = Some(EmptyMsg),
                }
            }
        }
        step.in_span("encode", cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::orientation::OrientationProc;
    use crate::algorithms::sync_input_dist::SyncInputDist;
    use crate::view::ground_truth_view;
    use anonring_sim::sync::SyncEngine;
    use anonring_sim::{RingConfig, RingTopology};

    #[test]
    fn word_codes_round_trip() {
        for s in ["", "0", "1", "0110", "111111"] {
            let w = Word::parse(s);
            assert_eq!(decode_word(encode_word(&w, 8)), w, "{s:?}");
        }
    }

    #[test]
    fn id_msg_codes_round_trip() {
        let n = 6;
        for msg in [
            IdMsg::Label(Word::parse("011")),
            IdMsg::Collect(Word::new()),
            IdMsg::Broadcast(Word::parse("110100")),
        ] {
            assert_eq!(IdMsg::decode(msg.encode(n), n), msg);
            assert!(msg.encode(n) < IdMsg::range(n));
        }
    }

    #[test]
    fn orient_msg_codes_round_trip() {
        for code in 0..8 {
            let msg = OrientMsg::decode(code, 5);
            assert_eq!(msg.encode(5), code);
        }
    }

    #[test]
    fn figure_2_runs_on_zero_bit_messages() {
        // The §8 extreme point: Θ(n log n) messages, zero bits, huge time.
        for bits in ["0110", "11011", "10101010"] {
            let config = RingConfig::oriented_bits(bits).unwrap();
            let n = config.n();
            let mut engine = SyncEngine::from_config(&config, |_, &b| {
                TimeEncoded::new(SyncInputDist::new(n, b), n)
            });
            engine.set_max_cycles(100_000_000);
            let report = engine.run().unwrap();
            assert_eq!(report.bits, 0, "zero-content messages");
            for (i, view) in report.outputs().iter().enumerate() {
                assert_eq!(view, &ground_truth_view(&config, i), "{bits} processor {i}");
            }
            // Time exploded by the window factor k = 3·2^(n+1).
            assert!(report.cycles >= (report.messages.max(1)) * 4);
        }
    }

    #[test]
    fn time_encoded_costs_match_plain_figure_2_in_messages() {
        let config = RingConfig::oriented_bits("110100").unwrap();
        let n = config.n();
        let plain = crate::algorithms::sync_input_dist::run(&config).unwrap();
        let mut engine = SyncEngine::from_config(&config, |_, &b| {
            TimeEncoded::new(SyncInputDist::new(n, b), n)
        });
        engine.set_max_cycles(100_000_000);
        let encoded = engine.run().unwrap();
        assert_eq!(encoded.messages, plain.messages);
        assert_eq!(encoded.bits, 0);
        assert!(plain.bits > 0);
        assert!(encoded.cycles > plain.cycles * 100);
    }

    #[test]
    fn figure_4_runs_on_zero_bit_messages_at_scale() {
        // With only 8 message types the adapter is practical.
        for n in [9usize, 27, 64] {
            let bits: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 8 & 1) as u8).collect();
            let topology = RingTopology::from_bits(&bits).unwrap();
            let procs = (0..n)
                .map(|_| TimeEncoded::new(OrientationProc::new(n), n))
                .collect();
            let mut engine = SyncEngine::new(topology.clone(), procs).unwrap();
            engine.set_max_cycles(10_000_000);
            let report = engine.run().unwrap();
            assert_eq!(report.bits, 0);
            let after = topology.with_switched(report.outputs());
            assert!(after.is_quasi_oriented(), "n={n}");
            if n % 2 == 1 {
                assert!(after.is_oriented(), "n={n}");
            }
        }
    }
}
