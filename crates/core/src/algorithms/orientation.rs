//! Figure 4: quasi-orienting a ring in `O(n log n)` messages.
//!
//! Processors must agree which way is "right", but a deterministic
//! algorithm cannot break the symmetry of an even ring with half the
//! processors facing each way (Theorem 3.5) — so the target is
//! *quasi-orientation*: the output switches make the ring either oriented
//! or perfectly alternating (and an odd ring, which cannot alternate,
//! becomes oriented).
//!
//! Rounds have two phases. **Endpoint selection**: every active processor
//! sends a `LEFT` marker out its left port and a `RIGHT` marker out its
//! right port; an active stays in the race iff a `LEFT` marker arrives on
//! its *left* port — which happens exactly when it and its nearest active
//! left neighbour face each other. **Elimination**: surviving endpoints
//! send a `0` token out their right ports into their segment; the two
//! tokens meet at a single processor only if the segment has odd length,
//! and that processor's `1` reply keeps exactly one endpoint alive.
//!
//! The race can only end in silence: either no endpoints were found (all
//! remaining actives agree on a direction) or every segment had even
//! length (the surviving endpoints alternate orientation). A silent round
//! tells every processor the race is over, and the lately-eliminated
//! (*marked*) processors — which sit at odd distances from one another and
//! are either all alike (case 1) or alternating (case 2) — anchor a final
//! token pass that tells everyone else how to turn.
//!
//! **Final pass (engineered; see DESIGN.md).** The paper's pseudocode
//! ("send 0 right; forward the complement; switch on a 1 from the right;
//! halt after two messages") under-determines this step: tokens leak
//! through marked processors, so a processor can receive two tokens from
//! the *same* rotational direction and halt before the opposite sweep
//! arrives, missing its switch signal (e.g. `D = 10100000`). We keep the
//! paper's parity-complementing idea but make it deterministic: every
//! marked processor launches a token in *both* directions, tagged with the
//! originating port; forwarders complement the parity bit and preserve the
//! tag; every processor waits for the lead token on *each* port, which
//! tells it (a) its orientation relative to the nearest anchor on that
//! side (tag vs arrival port) and (b) the parity of its distance to it.
//! If the two anchors agree in orientation (case 1) the processor aligns
//! with them; if they differ (case 2) it orients by distance parity,
//! producing the alternating quasi-orientation. Both verdicts always
//! agree, the pass costs at most `2n + 2·|marked|` one-bit-pair messages,
//! and odd rings — where case 2 is impossible — end fully oriented.
//!
//! As with Figure 2, our phases last `n + 1` cycles (DESIGN.md).

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Message, Port, RingTopology, SimError};

/// Messages of the Figure 4 algorithm. Each carries a single bit of
/// content (the kind is implied by the phase in which it is sent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrientMsg {
    /// Phase 1 marker, tagged with the port the *originator* sent it on.
    Marker(Port),
    /// Phase 2 segment token: `0` from an endpoint, `1` for the reply.
    Seg(u8),
    /// Final-pass token: hop-parity bit (complemented at each hop) plus
    /// the port its anchor launched it on.
    Fin(u8, Port),
}

impl Message for OrientMsg {
    fn bit_len(&self) -> usize {
        match self {
            OrientMsg::Marker(_) | OrientMsg::Seg(_) => 1,
            OrientMsg::Fin(..) => 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Rounds,
    Final,
}

/// The Figure 4 process. Output: `true` if this processor should switch
/// its left and right connections.
#[derive(Debug, Clone)]
pub struct OrientationProc {
    n: usize,
    active: bool,
    marked: bool,
    switched: bool,
    endpoint_mark: bool,
    got_one: bool,
    heard_this_round: bool,
    seg_seen: bool,
    rc: u64,
    round: u64,
    mode: Mode,
    fin_sent: bool,
    /// Lead final-pass token per port: (parity bit, anchor tag).
    fin_first: [Option<(u8, Port)>; 2],
}

impl OrientationProc {
    /// Creates the process for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> OrientationProc {
        assert!(n >= 2, "ring size must be at least 2");
        OrientationProc {
            n,
            active: true,
            marked: false,
            switched: false,
            endpoint_mark: false,
            got_one: false,
            heard_this_round: false,
            seg_seen: false,
            rc: 0,
            round: 0,
            mode: Mode::Rounds,
            fin_sent: false,
            fin_first: [None, None],
        }
    }

    fn rounds_step(&mut self, rx: Received<OrientMsg>) -> Step<OrientMsg, bool> {
        let n = self.n as u64;
        let mut step: Step<OrientMsg, bool> = Step::idle();
        if !rx.is_empty() {
            self.heard_this_round = true;
            if !self.active {
                // Any traffic clears a stale mark (Figure 4's passive
                // branches).
                self.marked = false;
            }
        }

        // --- Arrivals ---
        if self.active {
            for (port, msg) in rx.iter() {
                match *msg {
                    OrientMsg::Marker(origin_port) => {
                        if port == Port::Left && origin_port == Port::Left {
                            self.endpoint_mark = true;
                        }
                    }
                    OrientMsg::Seg(bit) => {
                        if bit == 1 {
                            self.got_one = true;
                        }
                    }
                    OrientMsg::Fin(..) => unreachable!("Fin only in final mode"),
                }
            }
        } else {
            // Passive relaying.
            let left = rx.from_left;
            let right = rx.from_right;
            match (left, right) {
                (Some(OrientMsg::Seg(0)), Some(OrientMsg::Seg(0))) => {
                    // Middle of an odd segment: reply to one endpoint.
                    step.to_right = Some(OrientMsg::Seg(1));
                    self.seg_seen = true;
                }
                (l, r) => {
                    for (port, msg) in [(Port::Left, l), (Port::Right, r)] {
                        let Some(msg) = msg else { continue };
                        let out = match port {
                            Port::Left => &mut step.to_right,
                            Port::Right => &mut step.to_left,
                        };
                        match msg {
                            OrientMsg::Marker(_) => *out = Some(msg),
                            OrientMsg::Seg(1) => {
                                *out = Some(msg);
                                self.seg_seen = true;
                            }
                            OrientMsg::Seg(_) => {
                                // Forward only the first phase-2 token;
                                // a crossing second token dies here.
                                if !self.seg_seen {
                                    *out = Some(msg);
                                }
                                self.seg_seen = true;
                            }
                            OrientMsg::Fin(..) => unreachable!("Fin only in final mode"),
                        }
                    }
                }
            }
        }

        // --- Scheduled transitions ---
        if self.rc == 0 && self.active {
            step.to_left = Some(OrientMsg::Marker(Port::Left));
            step.to_right = Some(OrientMsg::Marker(Port::Right));
        }
        if self.rc == n && self.active && !self.endpoint_mark {
            // End of phase 1: non-endpoints drop out.
            self.active = false;
            self.marked = true;
        }
        if self.rc == n + 1 && self.active {
            step.to_right = Some(OrientMsg::Seg(0));
        }
        if self.rc == 2 * n + 1 {
            // End of the round.
            if self.active && !self.got_one {
                self.active = false;
                self.marked = true;
            }
            if self.heard_this_round {
                self.rc = 0;
                self.round += 1;
                self.endpoint_mark = false;
                self.got_one = false;
                self.heard_this_round = false;
                self.seg_seen = false;
            } else {
                self.mode = Mode::Final;
            }
        } else {
            self.rc += 1;
        }
        // Markers move in cycles 0..=n of a round and segment tokens in
        // n+1..=2n+1, so a cycle's emissions share one phase.
        let phase = match (&step.to_left, &step.to_right) {
            (Some(OrientMsg::Marker(_)), _) | (_, Some(OrientMsg::Marker(_))) => Some("markers"),
            (Some(OrientMsg::Seg(_)), _) | (_, Some(OrientMsg::Seg(_))) => Some("segment"),
            _ => None,
        };
        match phase {
            Some(phase) => step.in_span(phase, self.round),
            None => step,
        }
    }

    fn final_step(&mut self, rx: Received<OrientMsg>) -> Step<OrientMsg, bool> {
        let mut step: Step<OrientMsg, bool> = Step::idle();
        if !self.fin_sent {
            self.fin_sent = true;
            if self.marked {
                step.to_left = Some(OrientMsg::Fin(0, Port::Left));
                step.to_right = Some(OrientMsg::Fin(0, Port::Right));
            }
        }
        for (port, msg) in rx.iter() {
            let OrientMsg::Fin(bit, tag) = *msg else {
                unreachable!("only Fin tokens in final mode")
            };
            let slot = &mut self.fin_first[usize::from(port == Port::Right)];
            if slot.is_none() {
                *slot = Some((bit, tag));
            }
            // Forward the complement onwards (later tokens die at halted
            // processors; forwarding them here is harmless and keeps the
            // relaying rule uniform).
            let out = match port {
                Port::Left => &mut step.to_right,
                Port::Right => &mut step.to_left,
            };
            *out = Some(OrientMsg::Fin(1 - bit, tag));
        }
        if let [Some(a), Some(b)] = self.fin_first {
            let verdict = |(bit, tag): (u8, Port), port: Port| {
                // Same orientation as the anchor iff the token's launch
                // port differs from its arrival port; distance even iff
                // an odd number of complements happened (bit == 1).
                let same = tag != port;
                let k_even = bit == 1;
                (same, k_even)
            };
            let (same_l, k_even_l) = verdict(a, Port::Left);
            let (same_r, k_even_r) = verdict(b, Port::Right);
            // Anchor spacings are always odd (the even-passives-between-
            // actives invariant), so a processor strictly inside one gap
            // sees distances of opposite parity, while an anchor — whose
            // two distances span two whole gaps — sees equal parities.
            let switch = if k_even_l == k_even_r {
                // This processor is an anchor: anchors are the reference
                // frame and never turn.
                false
            } else if same_l != same_r {
                // Case 2: neighbouring anchors alternate; orient by
                // distance parity (both tokens give the same verdict).
                let v = same_l != k_even_l;
                debug_assert_eq!(v, same_r != k_even_r, "verdicts must agree");
                v
            } else {
                // Case 1: all anchors face the same way; align with them.
                !same_l
            };
            self.switched = switch;
            return step.and_halt(self.switched).in_span("final", self.round);
        }
        step.in_span("final", self.round)
    }
}

impl SyncProcess for OrientationProc {
    type Msg = OrientMsg;
    type Output = bool;

    fn step(&mut self, _cycle: u64, rx: Received<OrientMsg>) -> Step<OrientMsg, bool> {
        match self.mode {
            Mode::Rounds => self.rounds_step(rx),
            Mode::Final => self.final_step(rx),
        }
    }
}

/// Runs Figure 4 on a topology, returning the per-processor switch
/// decisions (and the usual accounting).
///
/// On success, applying the switches ([`RingTopology::with_switched`])
/// yields a quasi-oriented ring — fully oriented when `n` is odd.
///
/// ```
/// use anonring_core::algorithms::orientation;
/// use anonring_sim::RingTopology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scrambled = RingTopology::from_bits(&[1, 0, 0, 1, 1, 0, 1])?;
/// let report = orientation::run(&scrambled)?;
/// let fixed = scrambled.with_switched(report.outputs());
/// assert!(fixed.is_oriented()); // odd rings always fully orient
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run(topology: &RingTopology) -> Result<SyncReport<bool>, SimError> {
    let n = topology.n();
    let procs = (0..n).map(|_| OrientationProc::new(n)).collect();
    let mut engine = SyncEngine::new(topology.clone(), procs)?;
    // The paper's cycle bound is O(n log n); (2n + 2)² is a comfortable
    // deadlock backstop.
    engine.set_max_cycles((2 * n as u64 + 2) * (2 * n as u64 + 2));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use anonring_sim::RingTopology;

    fn check(topology: &RingTopology) -> SyncReport<bool> {
        let report = run(topology).unwrap();
        let switched = topology.with_switched(report.outputs());
        assert!(
            switched.is_quasi_oriented(),
            "orientations {:?} + switches {:?} -> {:?} not quasi-oriented",
            topology.orientations(),
            report.outputs(),
            switched.orientations(),
        );
        if topology.n() % 2 == 1 {
            assert!(
                switched.is_oriented(),
                "odd ring must become fully oriented: {:?} + {:?}",
                topology.orientations(),
                report.outputs(),
            );
        }
        report
    }

    #[test]
    fn exhaustive_all_orientations_small_rings() {
        for n in 2..=10usize {
            for mask in 0..(1u32 << n) {
                let bits: Vec<u8> = (0..n).map(|i| (mask >> i & 1) as u8).collect();
                let topology = RingTopology::from_bits(&bits).unwrap();
                check(&topology);
            }
        }
    }

    #[test]
    fn message_bound_holds() {
        for n in [9usize, 27, 45, 81, 100, 121] {
            // Adversarial orientation patterns: random-ish, alternating
            // blocks, single dissident.
            let patterns: Vec<Vec<u8>> = vec![
                (0..n).map(|i| ((i * 2654435761) >> 9 & 1) as u8).collect(),
                (0..n).map(|i| u8::from(i % 4 < 2)).collect(),
                (0..n).map(|i| u8::from(i != 0)).collect(),
                vec![1; n],
            ];
            for bits in patterns {
                let topology = RingTopology::from_bits(&bits).unwrap();
                let report = check(&topology);
                let bound = bounds::orientation_messages(n as u64) + 2.0 * n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n} bits={bits:?}: {} messages > {bound}",
                    report.messages
                );
                let cbound = bounds::orientation_cycles(n as u64);
                assert!(
                    (report.cycles as f64) <= cbound,
                    "n={n}: {} cycles > {cbound}",
                    report.cycles
                );
            }
        }
    }

    #[test]
    fn already_oriented_ring_stays_oriented_cheaply() {
        let topology = RingTopology::oriented(15).unwrap();
        let report = check(&topology);
        // One round of markers (2n), a silent round, and a final pass of
        // at most 2n launches + 2n forwards.
        assert!(report.messages <= 7 * 15, "{} messages", report.messages);
        assert!(report.outputs().iter().all(|&s| !s), "nobody switches");
    }

    #[test]
    fn messages_cost_at_most_two_bits() {
        // Markers and segment tokens are 1 bit; final tokens 2 bits.
        let topology = RingTopology::from_bits(&[1, 0, 0, 1, 1, 0, 1]).unwrap();
        let report = check(&topology);
        assert!(report.bits >= report.messages);
        assert!(report.bits <= 2 * report.messages);
    }
}
