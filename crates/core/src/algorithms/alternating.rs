//! §4.2.2's closing remark, implemented: input distribution on an
//! **alternating** ring by "two computations simultaneously, one for each
//! direction".
//!
//! A quasi-oriented even ring that is not oriented alternates: clockwise
//! and counterclockwise processors interleave perfectly. Each orientation
//! class then forms a consistently-oriented *virtual ring* of size
//! `m = n/2` — a clockwise processor's rightward message, forwarded once
//! by the intervening counterclockwise processor, lands on the next
//! clockwise processor, and vice versa. So each class runs Figure 2 on
//! its own virtual ring (processors of the other class relay), a virtual
//! cycle taking two real cycles. When a processor's virtual computation
//! finishes it exchanges views with the partner facing it across its
//! right port (on an alternating ring, right ports pair up), then
//! interleaves the two class views into the full ring view.
//!
//! Cost: `2 × O(m log m)` virtual messages, each travelling 2 real hops,
//! plus `n` exchange messages — still `O(n log n)`, completing the
//! paper's claim that *every* ring of known size admits an `O(n log n)`
//! synchronous input distribution.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::algorithms::sync_input_dist::{IdMsg, SyncInputDist};
use crate::view::RingView;

/// Wrapper messages: the inner Figure 2 traffic (with a freshness bit
/// controlling the one-hop relay) plus the final neighbour exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AltMsg {
    /// An inner-computation message; `fresh` means it still needs its
    /// relay hop through the other class.
    Virtual {
        /// The Figure 2 payload.
        payload: IdMsg,
        /// Whether the relay hop is still pending.
        fresh: bool,
    },
    /// The sender's completed virtual-ring view (its class's inputs, in
    /// its own rightward order).
    Exchange(Vec<u8>),
}

impl Message for AltMsg {
    fn bit_len(&self) -> usize {
        match self {
            AltMsg::Virtual { payload, .. } => 2 + payload.bit_len(),
            AltMsg::Exchange(v) => 1 + v.len(),
        }
    }
}

/// The alternating-ring input distribution process.
#[derive(Debug, Clone)]
pub struct AlternatingInputDist {
    inner: SyncInputDist,
    inner_cycle: u64,
    inner_done: Option<Vec<u8>>,
    exchange_sent: bool,
    partner_view: Option<Vec<u8>>,
    pending_inner_rx: Received<IdMsg>,
    m: usize,
}

impl AlternatingInputDist {
    /// Creates the process for an alternating ring of size `n = 2m ≥ 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or `n < 4`.
    #[must_use]
    pub fn new(n: usize, input: u8) -> AlternatingInputDist {
        assert!(
            n.is_multiple_of(2) && n >= 4,
            "alternating rings have even n >= 4"
        );
        let m = n / 2;
        AlternatingInputDist {
            inner: SyncInputDist::new(m, input),
            inner_cycle: 0,
            inner_done: None,
            exchange_sent: false,
            partner_view: None,
            pending_inner_rx: Received::empty(),
            m,
        }
    }

    fn finish(&self) -> RingView<u8> {
        let own = self.inner_done.as_ref().expect("inner finished");
        let partner = self.partner_view.as_ref().expect("partner view received");
        let m = self.m;
        let mut entries = Vec::with_capacity(2 * m);
        for k in 0..m {
            entries.push((true, own[k]));
            // The partner reads its virtual ring in the opposite
            // rotational direction: its entry for my rightward offset
            // 2k+1 is its index (m - k) mod m.
            entries.push((false, partner[(m - k) % m]));
        }
        RingView::new(entries)
    }
}

impl SyncProcess for AlternatingInputDist {
    type Msg = AltMsg;
    type Output = RingView<u8>;

    fn step(&mut self, cycle: u64, rx: Received<AltMsg>) -> Step<AltMsg, RingView<u8>> {
        let mut step: Step<AltMsg, RingView<u8>> = Step::idle();

        // Sort arrivals: fresh virtual messages are relay jobs, stale
        // ones belong to my inner processor, exchanges are mine.
        for (port, msg) in [
            (Port::Left, rx.from_left.clone()),
            (Port::Right, rx.from_right.clone()),
        ] {
            let Some(msg) = msg else { continue };
            match msg {
                AltMsg::Virtual {
                    payload,
                    fresh: true,
                } => {
                    let out = match port {
                        Port::Left => &mut step.to_right,
                        Port::Right => &mut step.to_left,
                    };
                    debug_assert!(out.is_none(), "one relay per port per cycle");
                    *out = Some(AltMsg::Virtual {
                        payload,
                        fresh: false,
                    });
                }
                AltMsg::Virtual {
                    payload,
                    fresh: false,
                } => {
                    let slot = match port {
                        Port::Left => &mut self.pending_inner_rx.from_left,
                        Port::Right => &mut self.pending_inner_rx.from_right,
                    };
                    debug_assert!(slot.is_none(), "one inner message per port per hop");
                    *slot = Some(payload);
                }
                AltMsg::Exchange(view) => {
                    debug_assert_eq!(port, Port::Right, "partners face right-to-right");
                    self.partner_view = Some(view);
                }
            }
        }

        // Even real cycles are the inner computation's step slots (and,
        // once it finished, the exchange slot).
        if cycle.is_multiple_of(2) {
            if self.inner_done.is_none() {
                let inner_rx = std::mem::take(&mut self.pending_inner_rx);
                let inner_step = self.inner.step(self.inner_cycle, inner_rx);
                self.inner_cycle += 1;
                if let Some(payload) = inner_step.to_left {
                    debug_assert!(step.to_left.is_none());
                    step.to_left = Some(AltMsg::Virtual {
                        payload,
                        fresh: true,
                    });
                }
                if let Some(payload) = inner_step.to_right {
                    debug_assert!(step.to_right.is_none());
                    step.to_right = Some(AltMsg::Virtual {
                        payload,
                        fresh: true,
                    });
                }
                if let Some(view) = inner_step.halt {
                    self.inner_done = Some(view.inputs().copied().collect());
                }
            } else if !self.exchange_sent && step.to_right.is_none() {
                self.exchange_sent = true;
                step.to_right = Some(AltMsg::Exchange(
                    self.inner_done.clone().expect("inner finished"),
                ));
            }
        }

        if self.exchange_sent && self.partner_view.is_some() {
            return step.in_span("exchange", cycle).and_halt(self.finish());
        }
        step.in_span(
            if cycle.is_multiple_of(2) {
                "compute"
            } else {
                "relay"
            },
            cycle,
        )
    }
}

/// The degenerate two-processor alternating ring: the partners face each
/// other right-to-right and exchange inputs directly.
#[derive(Debug, Clone)]
struct ExchangeTwo {
    input: u8,
}

impl SyncProcess for ExchangeTwo {
    type Msg = AltMsg;
    type Output = RingView<u8>;

    fn step(&mut self, cycle: u64, rx: Received<AltMsg>) -> Step<AltMsg, RingView<u8>> {
        if cycle == 0 {
            return Step::send(Port::Right, AltMsg::Exchange(vec![self.input]))
                .in_span("exchange", 0);
        }
        let Some(AltMsg::Exchange(theirs)) = rx.from_right else {
            unreachable!("partners face right-to-right on an alternating 2-ring")
        };
        Step::halt(RingView::new(vec![(true, self.input), (false, theirs[0])]))
    }
}

/// Runs input distribution on an **alternating** ring in `O(n log n)`
/// messages.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics unless the ring is alternating (quasi-oriented but not
/// oriented).
pub fn run(config: &RingConfig<u8>) -> Result<SyncReport<RingView<u8>>, SimError> {
    let topo = config.topology();
    assert!(
        topo.is_quasi_oriented() && !topo.is_oriented(),
        "this algorithm is for alternating rings; use Figure 2 on oriented ones"
    );
    let n = config.n();
    if n == 2 {
        let mut engine = SyncEngine::from_config(config, |_, &input| ExchangeTwo { input });
        return engine.run();
    }
    let mut engine =
        SyncEngine::from_config(config, |_, &input| AlternatingInputDist::new(n, input));
    engine.set_max_cycles((2 * n as u64 + 2) * (2 * n as u64 + 2));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::view::ground_truth_view;
    use anonring_sim::Orientation;

    fn alternating_config(inputs: Vec<u8>, first_cw: bool) -> RingConfig<u8> {
        let n = inputs.len();
        let orientations = (0..n)
            .map(|i| Orientation::from_bit(u8::from((i % 2 == 0) == first_cw)))
            .collect();
        RingConfig::new(inputs, orientations).unwrap()
    }

    #[test]
    fn exhaustive_small_alternating_rings() {
        for m in 2..=5usize {
            let n = 2 * m;
            for mask in 0..(1u32 << n) {
                let inputs: Vec<u8> = (0..n).map(|i| (mask >> i & 1) as u8).collect();
                for first_cw in [true, false] {
                    let config = alternating_config(inputs.clone(), first_cw);
                    let report = run(&config).unwrap();
                    for (i, view) in report.outputs().iter().enumerate() {
                        assert_eq!(
                            view,
                            &ground_truth_view(&config, i),
                            "n={n} mask={mask:b} first_cw={first_cw} processor {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_is_n_log_n_not_quadratic() {
        for m in [16usize, 32, 64, 128] {
            let n = 2 * m;
            let inputs: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 6 & 1) as u8).collect();
            let config = alternating_config(inputs, true);
            let report = run(&config).unwrap();
            // Two virtual Figure 2 runs at size m, each message relayed
            // once (x2), plus n exchanges.
            let bound = 4.0 * (bounds::sync_input_dist_messages(m as u64) + m as f64) + n as f64;
            assert!(
                (report.messages as f64) <= bound,
                "n={n}: {} messages > {bound}",
                report.messages
            );
            // And strictly below the quadratic fallback for large n.
            assert!(
                report.messages < (n * (n - 1)) as u64,
                "n={n}: {} not better than n(n-1)",
                report.messages
            );
        }
    }

    #[test]
    #[should_panic(expected = "alternating")]
    fn rejects_oriented_rings() {
        let config = RingConfig::oriented(vec![1u8, 0, 1, 0]);
        let _ = run(&config);
    }
}
