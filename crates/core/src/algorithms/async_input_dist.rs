//! §4.1: asynchronous input distribution in `n(n − 1)` messages.
//!
//! Every processor sends its input in both directions, tagged with the
//! originating port; every processor forwards a fixed number of the
//! messages arriving on each port. FIFO links guarantee that the `j`-th
//! message received on a port originated `j` hops away in that direction,
//! so each processor reconstructs its whole-ring view — the hardest
//! problem solvable on an anonymous ring — without any message carrying a
//! hop count.
//!
//! The forwarding budgets follow the paper: for odd `n` every message is
//! forwarded `⌊n/2⌋ − 1` times; for even `n` messages initially sent
//! *left* are forwarded `n/2 − 1` times and messages initially sent
//! *right* only `n/2 − 2` times, so the antipodal processor is heard
//! exactly once and the total stays `n(n − 1)`.

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::view::RingView;

/// The single message type: the originator's input plus one bit naming the
/// port it was originally sent on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistMsg<V> {
    /// Port on which the *originator* sent this message.
    pub origin_port: Port,
    /// The originator's input value.
    pub input: V,
}

impl<V: Message> Message for DistMsg<V> {
    fn bit_len(&self) -> usize {
        1 + self.input.bit_len()
    }
}

/// The §4.1 input distribution process.
///
/// Halts with the processor's [`RingView`] after receiving messages from
/// every other processor.
#[derive(Debug, Clone)]
pub struct AsyncInputDist<V> {
    n: usize,
    input: V,
    received_left: usize,
    received_right: usize,
    entries: Vec<Option<(bool, V)>>,
}

impl<V: Message + PartialEq> AsyncInputDist<V> {
    /// Creates the process for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, input: V) -> AsyncInputDist<V> {
        assert!(n >= 2, "ring size must be at least 2");
        AsyncInputDist {
            n,
            input,
            received_left: 0,
            received_right: 0,
            entries: vec![None; n],
        }
    }

    /// Total messages this processor expects to receive before halting.
    fn expected(&self) -> usize {
        if self.n == 2 {
            2
        } else {
            self.n - 1
        }
    }

    /// Whether a message received as the `j`-th on some port should be
    /// forwarded (it would then reach distance `j + 1`).
    fn should_forward(&self, j: usize, origin_port: Port) -> bool {
        let n = self.n;
        if n % 2 == 1 {
            j < n / 2
        } else {
            match origin_port {
                Port::Left => j < n / 2,
                Port::Right => j + 2 <= n / 2,
            }
        }
    }

    fn record(&mut self, from: Port, j: usize, msg: &DistMsg<V>) {
        // Same orientation iff the message's travel direction reads
        // opposite port names at originator and receiver.
        let same_orientation = msg.origin_port != from;
        // Arrival on my left port: originator is j hops in my left
        // direction = n - j hops rightward.
        let offset = match from {
            Port::Left => self.n - j,
            Port::Right => j,
        };
        let entry = (same_orientation, msg.input.clone());
        match &self.entries[offset] {
            None => self.entries[offset] = Some(entry),
            // Only the n = 2 antipode is heard twice; reports must agree.
            Some(prev) => debug_assert_eq!(prev, &entry, "conflicting reports"),
        }
    }

    fn finish(&mut self) -> RingView<V> {
        self.entries[0] = Some((true, self.input.clone()));
        RingView::new(
            self.entries
                .iter()
                .map(|e| e.clone().expect("all positions heard from"))
                .collect(),
        )
    }
}

impl<V: Message + PartialEq> AsyncProcess for AsyncInputDist<V> {
    type Msg = DistMsg<V>;
    type Output = RingView<V>;

    fn on_start(&mut self) -> Actions<Self::Msg, Self::Output> {
        Actions::send(
            Port::Left,
            DistMsg {
                origin_port: Port::Left,
                input: self.input.clone(),
            },
        )
        .and_send(
            Port::Right,
            DistMsg {
                origin_port: Port::Right,
                input: self.input.clone(),
            },
        )
        .in_span("scatter", 0)
    }

    fn on_message(&mut self, from: Port, msg: DistMsg<V>) -> Actions<Self::Msg, Self::Output> {
        let j = match from {
            Port::Left => {
                self.received_left += 1;
                self.received_left
            }
            Port::Right => {
                self.received_right += 1;
                self.received_right
            }
        };
        self.record(from, j, &msg);
        let mut actions = if self.should_forward(j, msg.origin_port) {
            // Span round = hops already travelled; the forward reaches
            // distance j + 1, giving a per-distance traffic profile.
            Actions::send(from.opposite(), msg).in_span("forward", j as u64)
        } else {
            Actions::idle()
        };
        if self.received_left + self.received_right == self.expected() {
            actions = actions.and_halt(self.finish());
        }
        actions
    }
}

/// Runs §4.1 input distribution on a configuration under a scheduler,
/// returning the per-processor views and the run report.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run<V: Message + PartialEq>(
    config: &RingConfig<V>,
    scheduler: &mut dyn Scheduler,
) -> Result<anonring_sim::r#async::AsyncReport<RingView<V>>, SimError> {
    let n = config.n();
    let mut engine =
        AsyncEngine::from_config(config, |_, input| AsyncInputDist::new(n, input.clone()));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ground_truth_view;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler, SynchronizingScheduler};
    use anonring_sim::Orientation;

    fn all_orientation_vectors(n: usize) -> Vec<Vec<Orientation>> {
        (0..(1u32 << n))
            .map(|mask| {
                (0..n)
                    .map(|i| Orientation::from_bit((mask >> i & 1) as u8))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn reconstructs_ground_truth_exhaustively() {
        // All orientations, a fixed distinguishable input, n = 2..=6.
        for n in 2..=6usize {
            let inputs: Vec<u8> = (0..n as u8).collect();
            for orient in all_orientation_vectors(n) {
                let config = RingConfig::new(inputs.clone(), orient).unwrap();
                let report = run(&config, &mut SynchronizingScheduler).unwrap();
                for (i, view) in report.outputs().iter().enumerate() {
                    assert_eq!(view, &ground_truth_view(&config, i), "n={n} processor {i}");
                }
            }
        }
    }

    #[test]
    fn message_count_is_exactly_n_times_n_minus_1() {
        for n in 3..=12usize {
            let config = RingConfig::oriented(vec![1u8; n]);
            let report = run(&config, &mut SynchronizingScheduler).unwrap();
            assert_eq!(report.messages, (n * (n - 1)) as u64, "n={n}");
        }
    }

    #[test]
    fn schedule_independent() {
        let inputs: Vec<u8> = vec![3, 1, 4, 1, 5, 9, 2];
        let config = RingConfig::new(
            inputs,
            vec![
                Orientation::Clockwise,
                Orientation::Counterclockwise,
                Orientation::Clockwise,
                Orientation::Counterclockwise,
                Orientation::Counterclockwise,
                Orientation::Clockwise,
                Orientation::Clockwise,
            ],
        )
        .unwrap();
        let want = run(&config, &mut SynchronizingScheduler)
            .unwrap()
            .into_outputs();
        assert_eq!(
            run(&config, &mut FifoScheduler).unwrap().into_outputs(),
            want
        );
        for seed in 0..10 {
            assert_eq!(
                run(&config, &mut RandomScheduler::new(seed))
                    .unwrap()
                    .into_outputs(),
                want,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bit_cost_is_constant_per_message_for_bool_inputs() {
        let config = RingConfig::oriented(vec![true, false, true, true, false]);
        let report = run(&config, &mut FifoScheduler).unwrap();
        // 2 bits per message (port tag + input bit).
        assert_eq!(report.bits, report.messages * 2);
    }

    #[test]
    fn two_ring_works() {
        let config = RingConfig::oriented(vec![7u8, 9u8]);
        let report = run(&config, &mut FifoScheduler).unwrap();
        assert_eq!(report.outputs()[0], ground_truth_view(&config, 0));
        assert_eq!(report.outputs()[1], ground_truth_view(&config, 1));
        assert_eq!(report.messages, 4);
    }
}
