//! One-bit broadcast in anonymous dynamic networks.
//!
//! The first non-ring audited family: `n` anonymous processors joined by
//! a port-labelled footprint whose *active* edge set is swapped by an
//! adversary between rounds (1-interval connectivity — every round's
//! graph is connected, but no round's graph need resemble the last). Each
//! processor starts holding one bit; the goal is for every processor to
//! output the OR of all inputs — equivalently, to broadcast the token
//! held by the (possibly several) source processors.
//!
//! The algorithm is flooding, compiled onto the asynchronous substrate:
//!
//! * In round `r` a processor sends its current bit on every port its
//!   local activity schedule lists for `r`, then waits for exactly one
//!   message on each of those same ports (activity is symmetric across a
//!   wire, so the neighbour sends on its matching port in the same
//!   round).
//! * Per-link FIFO makes the round structure recoverable without tagging
//!   messages: the `k`-th message to arrive on a port belongs to the
//!   `k`-th round in which that port is active, so a 1-bit message
//!   suffices — arrivals for a future round queue up behind the current
//!   one and are buffered until their round begins.
//! * With every round's active graph connected, the set of processors
//!   holding the token grows by at least one per round, so after `n − 1`
//!   rounds everyone holds the OR and halts.
//!
//! Every active wire carries one bit in each direction per round:
//! `2·Σ_r |E_r|` messages in total, and with the connectivity adversary
//! activating Θ(n) edges per round for `n − 1` rounds the cost is Θ(n²)
//! messages of 1 bit each — the audited quadratic cost curve.
//!
//! Anonymity: a process is built from its input bit and its *local*
//! schedule (which of its own ports are active each round — knowledge the
//! dynamic-network model grants every node). It never sees identities,
//! indices, or the global edge set.

use anonring_sim::r#async::{AsyncEngine, AsyncPortProcess, Scheduler};
use anonring_sim::runtime::PortActions;
use anonring_sim::{DynamicTopology, Message, PortId, SimError};

/// Seed of the audited connectivity adversary; combined with `n` so every
/// grid size gets its own deterministic round schedule.
pub const ADVERSARY_SEED: u64 = 0x0A11_D15C;

/// The audited adversarial topology for `n` processors: the complete
/// footprint with `n − 1` scheduled rounds, deterministically derived
/// from [`ADVERSARY_SEED`] and `n`. Every substrate (audit sweep, job
/// driver, net conformance) builds the same wiring from the same `n`.
///
/// # Errors
///
/// Returns [`SimError::RingTooSmall`] when `n < 2`.
pub fn audited_topology(n: usize) -> Result<DynamicTopology, SimError> {
    DynamicTopology::adversarial(n, n.saturating_sub(1).max(1), ADVERSARY_SEED ^ n as u64)
}

/// The flooding token: one bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastMsg(pub u8);

impl Message for BcastMsg {
    fn bit_len(&self) -> usize {
        1
    }
}

/// The one-bit dynamic-broadcast process.
///
/// Built from the processor's input bit and its local activity schedule;
/// halts with the OR of all inputs once the final scheduled round
/// completes.
#[derive(Debug, Clone)]
pub struct DynBroadcast {
    /// `schedule[r]`: the local ports active in round `r`.
    schedule: Vec<Vec<PortId>>,
    /// Completed-rounds cursor.
    round: usize,
    /// OR of the input and every bit heard so far.
    informed: u8,
    /// Per-port buffers of received-but-unconsumed bits, in FIFO order.
    pending: Vec<Vec<u8>>,
    /// Per-port count of bits already consumed — position in the port's
    /// activity sequence.
    consumed: Vec<usize>,
}

impl DynBroadcast {
    /// Creates the process from an input bit and the processor's local
    /// activity schedule (see
    /// [`DynamicTopology::local_schedule`]).
    ///
    /// # Panics
    ///
    /// Panics when the schedule is empty (a zero-round network computes
    /// nothing).
    #[must_use]
    pub fn new(input: u8, schedule: Vec<Vec<PortId>>) -> DynBroadcast {
        assert!(
            !schedule.is_empty(),
            "schedule must cover at least one round"
        );
        let ports = schedule
            .iter()
            .flat_map(|round| round.iter().map(|p| p.index() + 1))
            .max()
            .unwrap_or(0);
        DynBroadcast {
            schedule,
            round: 0,
            informed: u8::from(input != 0),
            pending: vec![Vec::new(); ports],
            consumed: vec![0; ports],
        }
    }

    /// Sends the current bit on every port active in `round`.
    fn flood(&self, round: usize) -> PortActions<BcastMsg, u8> {
        PortActions::send_each(&self.schedule[round], BcastMsg(self.informed))
            .in_span("flood", round as u64)
    }

    /// Whether every port active in the current round has an unconsumed
    /// arrival buffered.
    fn round_complete(&self) -> bool {
        self.schedule[self.round]
            .iter()
            .all(|p| self.pending[p.index()].len() > self.consumed[p.index()])
    }

    /// Consumes the current round's arrivals and advances, emitting the
    /// next round's sends (or the halt after the last round).
    fn advance(&mut self) -> PortActions<BcastMsg, u8> {
        let mut actions = PortActions::idle();
        while self.round < self.schedule.len() && self.round_complete() {
            for k in 0..self.schedule[self.round].len() {
                let p = self.schedule[self.round][k];
                let bit = self.pending[p.index()][self.consumed[p.index()]];
                self.consumed[p.index()] += 1;
                self.informed |= bit;
            }
            self.round += 1;
            if self.round == self.schedule.len() {
                return actions.and_halt(self.informed);
            }
            let next = self.flood(self.round);
            for (port, msg) in next.sends {
                actions = actions.and_send(port, msg);
            }
            actions.span = next.span;
        }
        actions
    }
}

impl AsyncPortProcess for DynBroadcast {
    type Msg = BcastMsg;
    type Output = u8;

    fn on_start_ports(&mut self) -> PortActions<BcastMsg, u8> {
        // Round 0's sends; a round with no active local ports (possible
        // under a hand-written schedule) completes immediately.
        let mut actions = self.flood(0);
        let follow = self.advance();
        for (port, msg) in follow.sends {
            actions = actions.and_send(port, msg);
        }
        if let Some(out) = follow.halt {
            actions = actions.and_halt(out);
        }
        actions
    }

    fn on_message_port(&mut self, from: PortId, msg: BcastMsg) -> PortActions<BcastMsg, u8> {
        self.pending[from.index()].push(msg.0);
        self.advance()
    }
}

/// Builds the processor ensemble for `inputs` over `topology`: one
/// [`DynBroadcast`] per processor, each handed only its own input bit and
/// local schedule.
///
/// # Errors
///
/// [`SimError::LengthMismatch`] when `inputs.len() != topology.n()`.
pub fn processes(topology: &DynamicTopology, inputs: &[u8]) -> Result<Vec<DynBroadcast>, SimError> {
    use anonring_sim::Topology;
    if inputs.len() != topology.n() {
        return Err(SimError::LengthMismatch {
            expected: topology.n(),
            actual: inputs.len(),
        });
    }
    Ok(inputs
        .iter()
        .enumerate()
        // anonlint: allow(anonymity-breach) -- ensemble construction: each process receives only its own input bit and local schedule
        .map(|(i, &bit)| DynBroadcast::new(bit, topology.local_schedule(i)))
        .collect())
}

/// Runs one-bit broadcast for `inputs` over `topology` under a scheduler,
/// returning the per-processor outputs (all equal to the OR of the
/// inputs) and the run report.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run(
    topology: &DynamicTopology,
    inputs: &[u8],
    scheduler: &mut dyn Scheduler,
) -> Result<anonring_sim::r#async::AsyncReport<u8>, SimError> {
    let procs = processes(topology, inputs)?;
    let mut engine = AsyncEngine::new(topology.clone(), procs)?;
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler, SynchronizingScheduler};

    fn adversary(n: usize, seed: u64) -> DynamicTopology {
        DynamicTopology::adversarial(n, n - 1, seed).unwrap()
    }

    #[test]
    fn every_processor_learns_the_or_of_all_inputs() {
        for n in [2usize, 3, 5, 8, 13] {
            for seed in [0u64, 7, 42] {
                let topology = adversary(n, seed);
                let mut inputs = vec![0u8; n];
                inputs[seed as usize % n] = 1;
                let report = run(&topology, &inputs, &mut SynchronizingScheduler).unwrap();
                assert_eq!(report.outputs(), vec![1u8; n], "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn all_zero_inputs_broadcast_zero() {
        let topology = adversary(6, 3);
        let report = run(&topology, &[0; 6], &mut FifoScheduler).unwrap();
        assert_eq!(report.outputs(), vec![0u8; 6]);
    }

    #[test]
    fn message_count_is_twice_the_active_edge_total_and_all_bits_are_single() {
        for (n, seed) in [(4usize, 1u64), (9, 2), (12, 3)] {
            let topology = adversary(n, seed);
            let expected: u64 = (0..(n as u64 - 1))
                .map(|r| 2 * topology.active_edges(r) as u64)
                .sum();
            let report = run(&topology, &vec![1u8; n], &mut SynchronizingScheduler).unwrap();
            assert_eq!(report.messages, expected, "n={n}");
            assert_eq!(report.bits, report.messages, "1-bit tokens, n={n}");
        }
    }

    #[test]
    fn outputs_and_totals_are_schedule_independent() {
        let topology = adversary(7, 11);
        let mut inputs = vec![0u8; 7];
        inputs[2] = 1;
        let want = run(&topology, &inputs, &mut SynchronizingScheduler).unwrap();
        for seed in 0..8u64 {
            let got = run(&topology, &inputs, &mut RandomScheduler::new(seed)).unwrap();
            assert_eq!(got.outputs(), want.outputs(), "seed {seed}");
            assert_eq!(got.messages, want.messages, "seed {seed}");
            assert_eq!(got.bits, want.bits, "seed {seed}");
        }
    }

    #[test]
    fn a_disconnected_round_can_strand_the_token() {
        // Hand-built counterexample: without per-round connectivity the
        // token never crosses to the far side, yet everyone still
        // completes their (valid) schedule — outputs then differ.
        use anonring_sim::GraphTopology;
        let base = GraphTopology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let topology = DynamicTopology::new(
            base,
            vec![vec![true, true], vec![true, true], vec![true, true]],
        )
        .unwrap();
        assert!(!topology.always_connected());
        let report = run(&topology, &[1, 0, 0, 0], &mut FifoScheduler).unwrap();
        assert_eq!(report.outputs(), &[1, 1, 0, 0]);
    }

    #[test]
    fn processes_validates_input_length() {
        let topology = adversary(4, 0);
        assert!(matches!(
            processes(&topology, &[1, 0]),
            Err(SimError::LengthMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn quadratic_growth_under_the_connectivity_adversary() {
        // Θ(n²): at least the 2(n−1)² path-edge floor, at most twice the
        // scheduled edge bound.
        for n in [8usize, 16, 24] {
            let topology = adversary(n, 5);
            let report = run(&topology, &vec![0u8; n], &mut SynchronizingScheduler).unwrap();
            let floor = (2 * (n - 1) * (n - 1)) as u64;
            let ceiling = (2 * (n - 1) * (n - 1 + n / 4)) as u64;
            assert!(
                report.messages >= floor && report.messages <= ceiling,
                "n={n}: {} outside [{floor}, {ceiling}]",
                report.messages
            );
        }
    }
}
