//! Figure 5 / §4.2.3: start synchronization in `O(n log n)` messages.
//!
//! Processors wake at adversary-chosen times (adjacent wake-ups at most
//! one cycle apart) but share a clock *rate*. The algorithm elects the
//! earliest-woken processors by a local-maximum tournament on wake-clock
//! counts: every `2n` own-cycles each remaining candidate sends its count
//! both ways; forwarders increment the count per hop, so a received value
//! always equals the sender's *current* count and the comparison measures
//! pure wake-time offset. Candidates that are not strict local maxima
//! drop out; everyone adopts the largest count heard. When all surviving
//! candidates tie, a whole round passes in silence and every processor —
//! whose counts are by then identical — halts at the same multiple of
//! `2n`, i.e. at the same global cycle: the ring is start-synchronized.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Port, RingTopology, SimError, WakeSchedule};

/// The Figure 5 process. Messages carry a wake-clock count; the output is
/// the synchronized clock value at the halting cycle.
#[derive(Debug, Clone)]
pub struct StartSync {
    n: u64,
    count: u64,
    active: bool,
    /// Wake-time deficits of the neighbours heard this round
    /// (`> 0` means the neighbour woke earlier).
    deficits: Vec<i64>,
    last_heard: u64,
    started: bool,
}

impl StartSync {
    /// Creates the process for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> StartSync {
        assert!(n >= 2, "ring size must be at least 2");
        StartSync {
            n: n as u64,
            count: 0,
            active: false,
            deficits: Vec::new(),
            last_heard: 0,
            started: false,
        }
    }

    fn round(&self) -> u64 {
        2 * self.n
    }
}

impl SyncProcess for StartSync {
    type Msg = u64;
    type Output = u64;

    fn step(&mut self, _local_cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
        let mut step: Step<u64, u64> = Step::idle();
        if !self.started {
            self.started = true;
            self.count = 0;
            self.last_heard = 0;
            // Spontaneous wake-up iff no message triggered it.
            self.active = rx.is_empty();
            if self.active {
                return Step::send_both(0, 0).in_span("wakeup", 0);
            }
        } else {
            self.count += 1;
        }

        // Message handling (any cycle — see DESIGN.md on relaxing
        // Figure 5's `count mod 2n ≠ 0` guard to every cycle).
        for (port, &m) in rx.iter() {
            self.last_heard = self.count;
            let incoming = m + 1; // the sender's current count
            if self.active {
                // Deficit before any adoption: sender minus me.
                self.deficits.push(incoming as i64 - self.count as i64);
            } else {
                // Passives relay the incremented count onwards.
                match port {
                    Port::Left => step.to_right = Some(incoming),
                    Port::Right => step.to_left = Some(incoming),
                }
            }
            self.count = self.count.max(incoming);
        }
        if self.active && self.deficits.len() >= 2 {
            let ahead_of_all = self.deficits.iter().all(|&d| d <= 0);
            let strictly_ahead = self.deficits.iter().any(|&d| d < 0);
            if !(ahead_of_all && strictly_ahead) {
                self.active = false;
            }
            self.deficits.clear();
        }

        // Round boundary.
        if self.count > 0 && self.count.is_multiple_of(self.round()) {
            if self.count - self.last_heard >= self.round() {
                return Step::halt(self.count);
            }
            if self.active {
                step.to_left = Some(self.count);
                step.to_right = Some(self.count);
            }
        }
        if step.to_left.is_some() || step.to_right.is_some() {
            // Span round = tournament round (counts advance 2n per round).
            step = step.in_span("tournament", self.count / self.round());
        }
        step
    }
}

/// Runs Figure 5 under a wake-up schedule, returning the report.
///
/// Success criterion: [`SyncReport::halted_simultaneously`] and all
/// outputs (synchronized counts) equal.
///
/// ```
/// use anonring_core::algorithms::start_sync;
/// use anonring_sim::{RingTopology, WakeSchedule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = RingTopology::oriented(8)?;
/// let wake = WakeSchedule::from_word(&[1, 1, 0, 1, 0, 0, 1, 0])?;
/// let report = start_sync::run(&ring, &wake)?;
/// assert!(report.halted_simultaneously());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run(topology: &RingTopology, wake: &WakeSchedule) -> Result<SyncReport<u64>, SimError> {
    let n = topology.n();
    let procs = (0..n).map(|_| StartSync::new(n)).collect();
    let mut engine = SyncEngine::new(topology.clone(), procs)?;
    engine.set_wakeups(wake.as_slice().to_vec())?;
    engine.set_max_cycles(((2 * n as u64 + 2) * (2 * n as u64 + 2)).max(10_000));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use anonring_sim::RingTopology;

    fn check(n: usize, wake: &WakeSchedule) -> SyncReport<u64> {
        let topology = RingTopology::oriented(n).unwrap();
        let report = run(&topology, wake).unwrap();
        assert!(
            report.halted_simultaneously(),
            "n={n} wake={:?}: halts at {:?}",
            wake.as_slice(),
            report.halt_cycles
        );
        let first = report.outputs()[0];
        assert!(
            report.outputs().iter().all(|&c| c == first),
            "n={n}: clocks disagree: {:?}",
            report.outputs()
        );
        report
    }

    #[test]
    fn simultaneous_start_synchronizes_trivially() {
        for n in [2usize, 3, 5, 12] {
            let report = check(n, &WakeSchedule::simultaneous(n));
            // Everyone sends at count 0, everyone ties, then silence.
            assert!(report.messages <= 2 * n as u64 + 2);
        }
    }

    #[test]
    fn adversarial_word_schedules_synchronize() {
        for word in [
            vec![1u8, 1, 0, 0],
            vec![1, 0, 1, 0, 1, 0],
            vec![1, 1, 1, 0, 0, 0, 1, 0],
            vec![0u8, 1, 0, 1, 1, 0, 1, 0, 0, 1],
        ] {
            let n = word.len();
            let wake = WakeSchedule::from_word(&word).unwrap();
            check(n, &wake);
        }
    }

    #[test]
    fn random_schedules_synchronize_and_respect_bound() {
        for n in [4usize, 9, 16, 33, 64] {
            for seed in 0..5 {
                let wake = WakeSchedule::random(n, seed);
                let report = check(n, &wake);
                let bound = bounds::start_sync_messages(n as u64) + 2.0 * n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n} seed={seed}: {} messages > {bound}",
                    report.messages
                );
            }
        }
    }

    #[test]
    fn paper_fooling_schedule_synchronizes() {
        // The §6.3.3 adversary word sigma0 sigma0 sigma1 sigma1 at k = 2.
        let witness = anonring_words::constructions::start_sync_exact(2);
        let n = witness.n();
        let wake = WakeSchedule::from_word(witness.word.as_slice()).unwrap();
        let report = check(n, &wake);
        // The lower bound must hold on its own witness.
        let lb = bounds::start_sync_sync_lower(n as u64);
        assert!(
            (report.messages as f64) >= lb,
            "{} messages < lower bound {lb}",
            report.messages
        );
    }
}
