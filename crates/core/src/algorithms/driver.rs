//! Engine-agnostic job driver over the audited §4 algorithms.
//!
//! Every execution substrate in the workspace — the synchronous and
//! asynchronous simulators, and the real-transport `anonring_net` runtime —
//! drives processes through the same [`AsyncPortProcess`] interface. This
//! module packages the six complexity-audited algorithms behind one
//! uniform process type, [`JobProc`], so a job description of the form
//! *(algorithm, n, inputs)* can be instantiated once and then run by **any**
//! engine: the `ringd` job server executes it on real threads while the
//! conformance oracle re-executes the identical construction under the
//! async simulator.
//!
//! Synchronous algorithms are lifted through the §3 α-synchronizer
//! ([`Synchronized`]), exactly as the audit harness runs them in the
//! asynchronous model; the §4.1 input distribution and the dynamic-network
//! broadcast are natively asynchronous. Because each processor is
//! constructed from `(algorithm, n, input)` plus at most its *local*
//! schedule (dynamic broadcast — per-round active ports of its own links,
//! knowledge the dynamic-network model grants every node), the anonymity
//! model is preserved: two engines given the same job build
//! indistinguishable ensembles.

use core::fmt;

use anonring_sim::message::Message;
use anonring_sim::r#async::{Actions, AsyncPortProcess, AsyncProcess};
use anonring_sim::runtime::PortActions;
use anonring_sim::synchronizer::{Envelope, Synchronized};
use anonring_sim::{DynamicTopology, Port, PortId, RingTopology, Topology};

use crate::algorithms::async_input_dist::{AsyncInputDist, DistMsg};
use crate::algorithms::dyn_broadcast::{audited_topology, BcastMsg, DynBroadcast};
use crate::algorithms::orientation::{OrientMsg, OrientationProc};
use crate::algorithms::start_sync::StartSync;
use crate::algorithms::sync_and::SyncAnd;
use crate::algorithms::sync_input_dist::{IdMsg, SyncInputDist};
use crate::view::RingView;

/// The six algorithms under the complexity audit, by their audit-table
/// names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Audited {
    /// §4.1 asynchronous input distribution (`n(n−1)` messages).
    AsyncInputDist,
    /// Figure 2 synchronous input distribution (`O(n log n)` bits).
    SyncInputDist,
    /// Figure 4 ring orientation.
    Orientation,
    /// Figure 5 start synchronization.
    StartSync,
    /// §4.2 AND of the input bits.
    SyncAnd,
    /// One-bit broadcast in anonymous dynamic networks (`Θ(n²)`
    /// messages under the connectivity adversary) — the first non-ring
    /// family.
    DynBroadcast,
}

impl Audited {
    /// All audited algorithms, in audit-table order.
    pub const ALL: [Audited; 6] = [
        Audited::AsyncInputDist,
        Audited::SyncInputDist,
        Audited::Orientation,
        Audited::StartSync,
        Audited::SyncAnd,
        Audited::DynBroadcast,
    ];

    /// The audit-table name (`"async_input_dist"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Audited::AsyncInputDist => "async_input_dist",
            Audited::SyncInputDist => "sync_input_dist",
            Audited::Orientation => "orientation",
            Audited::StartSync => "start_sync",
            Audited::SyncAnd => "sync_and",
            Audited::DynBroadcast => "dyn_broadcast",
        }
    }

    /// Parses an audit-table name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Audited> {
        Audited::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Whether per-processor inputs must be `{0,1}` bits for this
    /// algorithm (`async_input_dist` takes arbitrary bytes; `start_sync`
    /// ignores inputs entirely).
    #[must_use]
    pub fn wants_bit_inputs(self) -> bool {
        matches!(
            self,
            Audited::SyncInputDist
                | Audited::Orientation
                | Audited::SyncAnd
                | Audited::DynBroadcast
        )
    }

    /// The wiring a job of this algorithm runs on. The ring families run
    /// on the oriented ring except `orientation`, whose whole point is a
    /// scrambled ring (its inputs double as the per-processor orientation
    /// bits, mirroring the audit harness); `dyn_broadcast` runs on the
    /// seeded dynamic-network connectivity adversary over the complete
    /// footprint.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] on an invalid job shape.
    pub fn topology(self, n: usize, inputs: &[u8]) -> Result<JobTopology, DriverError> {
        validate(self, n, inputs)?;
        let topology = match self {
            Audited::Orientation => RingTopology::from_bits(inputs).map(JobTopology::Ring),
            Audited::DynBroadcast => audited_topology(n).map(JobTopology::Dynamic),
            _ => RingTopology::oriented(n).map(JobTopology::Ring),
        };
        topology.map_err(|e| DriverError::BadJob {
            message: format!("topology construction failed: {e}"),
        })
    }

    /// Builds the `n` identical processes of a job. Deterministic in
    /// `(self, n, inputs)`: every engine handed this vector runs the same
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] on an invalid job shape.
    pub fn procs(self, n: usize, inputs: &[u8]) -> Result<Vec<JobProc>, DriverError> {
        validate(self, n, inputs)?;
        // The dynamic adversary is substrate state; each process receives
        // only its own local activity schedule from it.
        let adversary = match self {
            Audited::DynBroadcast => {
                Some(audited_topology(n).map_err(|e| DriverError::BadJob {
                    message: format!("topology construction failed: {e}"),
                })?)
            }
            _ => None,
        };
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| match self {
                Audited::AsyncInputDist => JobProc::Dist(AsyncInputDist::new(n, input)),
                Audited::SyncInputDist => {
                    JobProc::SyncDist(Box::new(Synchronized::new(SyncInputDist::new(n, input))))
                }
                // The orientation bits live in the topology; the process
                // itself is input-free.
                Audited::Orientation => JobProc::Orient(Synchronized::new(OrientationProc::new(n))),
                Audited::StartSync => JobProc::Start(Synchronized::new(StartSync::new(n))),
                Audited::SyncAnd => JobProc::And(Synchronized::new(SyncAnd::new(n, input))),
                Audited::DynBroadcast => JobProc::Bcast(DynBroadcast::new(
                    input,
                    adversary
                        .as_ref()
                        .expect("adversary built for dyn_broadcast")
                        // anonlint: allow(anonymity-breach) -- ensemble construction: the engine hands each node its own schedule; the process never pulls one
                        .local_schedule(i),
                )),
            })
            .collect())
    }
}

impl fmt::Display for Audited {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn validate(algorithm: Audited, n: usize, inputs: &[u8]) -> Result<(), DriverError> {
    if n < 2 {
        return Err(DriverError::BadJob {
            message: format!("ring size {n} below the model minimum of 2"),
        });
    }
    if inputs.len() != n {
        return Err(DriverError::BadJob {
            message: format!("{} inputs for a ring of {n}", inputs.len()),
        });
    }
    let needs_bits = algorithm.wants_bit_inputs() || algorithm == Audited::Orientation;
    if needs_bits {
        if let Some(bad) = inputs.iter().find(|&&b| b > 1) {
            return Err(DriverError::BadJob {
                message: format!("{algorithm} takes {{0,1}} inputs, got {bad}"),
            });
        }
    }
    Ok(())
}

/// An invalid job description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The (algorithm, n, inputs) triple does not describe a runnable job.
    BadJob {
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::BadJob { message } => write!(f, "bad job: {message}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// The wiring a packaged job runs on: one of the audited ring wirings, or
/// the dynamic-network adversary. Implements [`Topology`], so any engine
/// or transport generic over the trait accepts it directly.
#[derive(Debug, Clone)]
pub enum JobTopology {
    /// A ring (the five §4 families).
    Ring(RingTopology),
    /// The seeded connectivity adversary (`dyn_broadcast`).
    Dynamic(DynamicTopology),
}

impl Topology for JobTopology {
    fn n(&self) -> usize {
        match self {
            JobTopology::Ring(t) => t.n(),
            JobTopology::Dynamic(t) => Topology::n(t),
        }
    }

    fn ports(&self, i: usize) -> usize {
        match self {
            JobTopology::Ring(t) => Topology::ports(t, i),
            JobTopology::Dynamic(t) => Topology::ports(t, i),
        }
    }

    fn neighbor_port(&self, i: usize, port: PortId) -> (usize, PortId) {
        match self {
            JobTopology::Ring(t) => Topology::neighbor_port(t, i, port),
            JobTopology::Dynamic(t) => Topology::neighbor_port(t, i, port),
        }
    }

    fn is_active(&self, round: u64, i: usize, port: PortId) -> bool {
        match self {
            JobTopology::Ring(t) => Topology::is_active(t, round, i, port),
            JobTopology::Dynamic(t) => Topology::is_active(t, round, i, port),
        }
    }

    fn is_dynamic(&self) -> bool {
        match self {
            JobTopology::Ring(t) => Topology::is_dynamic(t),
            JobTopology::Dynamic(t) => Topology::is_dynamic(t),
        }
    }
}

/// One processor of a job: the audited algorithm behind a uniform
/// message/output alphabet, runnable by any [`AsyncPortProcess`] engine.
#[derive(Debug)]
pub enum JobProc {
    /// §4.1 asynchronous input distribution.
    Dist(AsyncInputDist<u8>),
    /// Figure 2 input distribution, synchronized (boxed: its state machine
    /// dwarfs the other variants).
    SyncDist(Box<Synchronized<SyncInputDist>>),
    /// Figure 4 orientation, synchronized.
    Orient(Synchronized<OrientationProc>),
    /// Figure 5 start synchronization, synchronized.
    Start(Synchronized<StartSync>),
    /// §4.2 AND, synchronized.
    And(Synchronized<SyncAnd>),
    /// Dynamic-network one-bit broadcast (general ports).
    Bcast(DynBroadcast),
}

/// The uniform message alphabet of [`JobProc`]: each variant wraps one
/// algorithm's wire type and delegates its accounted [`Message::bit_len`]
/// unchanged, so metered costs are identical to running the algorithm
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub enum JobMsg {
    /// §4.1 distribution message.
    Dist(DistMsg<u8>),
    /// Synchronizer envelope around a Figure 2 message.
    SyncDist(Envelope<IdMsg>),
    /// Synchronizer envelope around a Figure 4 message.
    Orient(Envelope<OrientMsg>),
    /// Synchronizer envelope around a Figure 5 wake count.
    Start(Envelope<u64>),
    /// Synchronizer envelope around the AND token.
    And(Envelope<()>),
    /// Dynamic-broadcast flooding token.
    Bcast(BcastMsg),
}

impl Message for JobMsg {
    fn bit_len(&self) -> usize {
        match self {
            JobMsg::Dist(m) => m.bit_len(),
            JobMsg::SyncDist(m) => m.bit_len(),
            JobMsg::Orient(m) => m.bit_len(),
            JobMsg::Start(m) => m.bit_len(),
            JobMsg::And(m) => m.bit_len(),
            JobMsg::Bcast(m) => m.bit_len(),
        }
    }
}

/// The uniform output alphabet of [`JobProc`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// A reconstructed ring view (both input-distribution algorithms).
    View(RingView<u8>),
    /// The orientation verdict.
    Oriented(bool),
    /// The synchronized clock value.
    Clock(u64),
    /// The AND of the input bits (`sync_and`), or the OR of the input
    /// bits (`dyn_broadcast`).
    Bit(u8),
}

/// Lifts a port-addressed emission into the job alphabet, preserving
/// sends (order and ports), halt, and the telemetry span untouched.
fn lift_ports<M, O>(
    actions: PortActions<M, O>,
    msg: impl Fn(M) -> JobMsg,
    out: impl Fn(O) -> JobOutput,
) -> PortActions<JobMsg, JobOutput> {
    PortActions {
        sends: actions
            .sends
            .into_iter()
            .map(|(port, m)| (port, msg(m)))
            .collect(),
        halt: actions.halt.map(out),
        span: actions.span,
    }
}

/// Lifts a ring emission into the job alphabet (left ↦ port 0, right ↦
/// port 1, the lossless [`PortActions`] conversion).
fn lift<M, O>(
    actions: Actions<M, O>,
    msg: impl Fn(M) -> JobMsg,
    out: impl Fn(O) -> JobOutput,
) -> PortActions<JobMsg, JobOutput> {
    lift_ports(PortActions::from(actions), msg, out)
}

/// Arrival port of a two-port (ring) job variant.
fn ring_port(port: PortId) -> Port {
    port.as_ring()
        .expect("ring job variants run on two-port topologies")
}

impl AsyncPortProcess for JobProc {
    type Msg = JobMsg;
    type Output = JobOutput;

    fn on_start_ports(&mut self) -> PortActions<JobMsg, JobOutput> {
        match self {
            JobProc::Dist(p) => lift(p.on_start(), JobMsg::Dist, JobOutput::View),
            JobProc::SyncDist(p) => lift(p.on_start(), JobMsg::SyncDist, JobOutput::View),
            JobProc::Orient(p) => lift(p.on_start(), JobMsg::Orient, JobOutput::Oriented),
            JobProc::Start(p) => lift(p.on_start(), JobMsg::Start, JobOutput::Clock),
            JobProc::And(p) => lift(p.on_start(), JobMsg::And, JobOutput::Bit),
            JobProc::Bcast(p) => lift_ports(p.on_start_ports(), JobMsg::Bcast, JobOutput::Bit),
        }
    }

    fn on_message_port(&mut self, from: PortId, msg: JobMsg) -> PortActions<JobMsg, JobOutput> {
        // An ensemble is built from one `Audited` variant, so every message
        // a processor receives is of its own algorithm's alphabet.
        match (self, msg) {
            (JobProc::Dist(p), JobMsg::Dist(m)) => lift(
                p.on_message(ring_port(from), m),
                JobMsg::Dist,
                JobOutput::View,
            ),
            (JobProc::SyncDist(p), JobMsg::SyncDist(m)) => lift(
                p.on_message(ring_port(from), m),
                JobMsg::SyncDist,
                JobOutput::View,
            ),
            (JobProc::Orient(p), JobMsg::Orient(m)) => lift(
                p.on_message(ring_port(from), m),
                JobMsg::Orient,
                JobOutput::Oriented,
            ),
            (JobProc::Start(p), JobMsg::Start(m)) => lift(
                p.on_message(ring_port(from), m),
                JobMsg::Start,
                JobOutput::Clock,
            ),
            (JobProc::And(p), JobMsg::And(m)) => lift(
                p.on_message(ring_port(from), m),
                JobMsg::And,
                JobOutput::Bit,
            ),
            (JobProc::Bcast(p), JobMsg::Bcast(m)) => {
                lift_ports(p.on_message_port(from, m), JobMsg::Bcast, JobOutput::Bit)
            }
            (proc, msg) => {
                unreachable!("homogeneous ensemble: {proc:?} cannot receive a {msg:?} message")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Audited, DriverError, JobOutput, JobProc};
    use anonring_sim::r#async::{AsyncEngine, RandomScheduler, SynchronizingScheduler};

    fn bits(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect()
    }

    #[test]
    fn names_round_trip() {
        for algorithm in Audited::ALL {
            assert_eq!(Audited::from_name(algorithm.name()), Some(algorithm));
        }
        assert_eq!(Audited::from_name("nonsense"), None);
    }

    #[test]
    fn job_shapes_are_validated() {
        let bad = Audited::SyncAnd.procs(4, &[0, 1, 2, 1]).unwrap_err();
        assert!(matches!(bad, DriverError::BadJob { .. }), "{bad}");
        assert!(Audited::SyncAnd.procs(1, &[1]).is_err());
        assert!(Audited::AsyncInputDist.procs(3, &[9, 9]).is_err(), "len");
        // Arbitrary bytes are fine for the §4.1 distribution.
        assert!(Audited::AsyncInputDist.procs(2, &[200, 9]).is_ok());
    }

    /// Each packaged algorithm halts under the async engine with outputs of
    /// the expected variant, and its message count matches running the raw
    /// algorithm — the wrapper adds no traffic.
    #[test]
    fn packaged_algorithms_run_and_agree_across_schedules() {
        for algorithm in Audited::ALL {
            for n in [2usize, 5] {
                let inputs = bits(n);
                let topology = algorithm.topology(n, &inputs).unwrap();
                let run = |procs: Vec<JobProc>, seed: Option<u64>| {
                    let mut engine = AsyncEngine::new(topology.clone(), procs).unwrap();
                    match seed {
                        None => engine.run(&mut SynchronizingScheduler),
                        Some(s) => engine.run(&mut RandomScheduler::new(s)),
                    }
                    .unwrap_or_else(|e| panic!("{algorithm} n={n}: {e}"))
                };
                let base = run(algorithm.procs(n, &inputs).unwrap(), None);
                for output in base.outputs() {
                    let ok = match algorithm {
                        Audited::AsyncInputDist | Audited::SyncInputDist => {
                            matches!(output, JobOutput::View(_))
                        }
                        Audited::Orientation => matches!(output, JobOutput::Oriented(_)),
                        Audited::StartSync => matches!(output, JobOutput::Clock(_)),
                        Audited::SyncAnd | Audited::DynBroadcast => {
                            matches!(output, JobOutput::Bit(_))
                        }
                    };
                    assert!(ok, "{algorithm} n={n}: {output:?}");
                }
                // Schedule independence carries over to the packaged form.
                for seed in [1u64, 7] {
                    let other = run(algorithm.procs(n, &inputs).unwrap(), Some(seed));
                    assert_eq!(other.outputs(), base.outputs(), "{algorithm} n={n}");
                    assert_eq!(other.messages, base.messages, "{algorithm} n={n}");
                    assert_eq!(other.bits, base.bits, "{algorithm} n={n}");
                }
            }
        }
    }

    /// The wrapper must not distort the §4.1 cost: exactly n(n−1) messages.
    #[test]
    fn packaged_async_input_dist_keeps_the_quadratic_count() {
        let n = 6;
        let inputs = bits(n);
        let topology = Audited::AsyncInputDist.topology(n, &inputs).unwrap();
        let procs = Audited::AsyncInputDist.procs(n, &inputs).unwrap();
        let mut engine = AsyncEngine::new(topology, procs).unwrap();
        let report = engine.run(&mut SynchronizingScheduler).unwrap();
        assert_eq!(report.messages, (n * (n - 1)) as u64);
    }
}
