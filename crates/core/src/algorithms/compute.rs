//! Computing arbitrary functions: input distribution + local evaluation.
//!
//! Input distribution is the *hardest* computable problem on an anonymous
//! ring (§4.1): once every processor holds its [`RingView`], any
//! computable function is a local evaluation away. These wrappers bundle
//! the two steps and account the total cost:
//!
//! * [`compute_async`] — §4.1 distribution under any scheduler,
//!   `n(n − 1)` messages;
//! * [`compute_sync`] — Figure 2 on an oriented ring, `O(n log n)`
//!   messages;
//! * [`compute_sync_general`] — arbitrary rings: quasi-orient first
//!   (Figure 4), then run Figure 2 on the oriented result, or the
//!   §4.2.2 two-computation algorithm if the ring came out alternating —
//!   `O(n log n)` on *every* ring of known size.

use anonring_sim::r#async::Scheduler;
use anonring_sim::{RingConfig, SimError};

use crate::algorithms::{alternating, async_input_dist, orientation, sync_input_dist};
use crate::functions::RingFunction;
use crate::view::RingView;

/// Cost and result of a full compute run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeOutcome {
    /// Per-processor function values (all equal for a correct run).
    pub values: Vec<u64>,
    /// Total messages across all composed phases.
    pub messages: u64,
    /// Total bits across all composed phases.
    pub bits: u64,
}

impl ComputeOutcome {
    /// The common output value.
    ///
    /// # Panics
    ///
    /// Panics if the processors disagree — which would be an algorithm
    /// bug.
    #[must_use]
    pub fn value(&self) -> u64 {
        let v = self.values[0];
        assert!(
            self.values.iter().all(|&x| x == v),
            "processors disagree: {:?}",
            self.values
        );
        v
    }
}

fn evaluate_views(views: &[RingView<u8>], f: &dyn RingFunction) -> Vec<u64> {
    views
        .iter()
        .map(|v| {
            let inputs: Vec<u64> = v.inputs().map(|&b| u64::from(b)).collect();
            f.evaluate(&inputs)
        })
        .collect()
}

/// Computes `f` asynchronously via §4.1 input distribution.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn compute_async(
    config: &RingConfig<u8>,
    f: &dyn RingFunction,
    scheduler: &mut dyn Scheduler,
) -> Result<ComputeOutcome, SimError> {
    let report = async_input_dist::run(config, scheduler)?;
    Ok(ComputeOutcome {
        values: evaluate_views(report.outputs(), f),
        messages: report.messages,
        bits: report.bits,
    })
}

/// Computes `f` synchronously via Figure 2 (oriented rings only).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented; use [`compute_sync_general`].
pub fn compute_sync(
    config: &RingConfig<u8>,
    f: &dyn RingFunction,
) -> Result<ComputeOutcome, SimError> {
    let report = sync_input_dist::run(config)?;
    Ok(ComputeOutcome {
        values: evaluate_views(report.outputs(), f),
        messages: report.messages,
        bits: report.bits,
    })
}

/// Computes `f` synchronously on an **arbitrary** ring.
///
/// The function must be invariant under cyclic shifts *and reversals*
/// (Theorem 3.4(ii)) for the answer to be well defined on non-oriented
/// rings.
///
/// # Errors
///
/// Propagates engine errors.
pub fn compute_sync_general(
    config: &RingConfig<u8>,
    f: &dyn RingFunction,
) -> Result<ComputeOutcome, SimError> {
    if config.topology().is_oriented() {
        return compute_sync(config, f);
    }
    // Figure 4 quasi-orients any ring (fully orients odd ones). Rewiring
    // the topology from the orientation outputs is driver-side surgery on
    // the experiment configuration, not a processor reading its identity.
    let orient_report = orientation::run(config.topology())?;
    // anonlint: allow(anonymity-breach) -- topology rewiring happens outside the ring, from per-processor orientation outputs
    let switched = config.topology().with_switched(orient_report.outputs());
    let switched_config = RingConfig::with_topology(config.inputs().to_vec(), switched)?;
    // anonlint: allow(identity-taint) -- the driver dispatches on the rewired topology's orientation; no processor sees this branch
    let mut outcome = if switched_config.topology().is_oriented() {
        compute_sync(&switched_config, f)?
    } else {
        // Alternating outcome (even rings only): the §4.2.2
        // two-computation algorithm keeps the cost at O(n log n).
        // anonlint: allow(identity-taint) -- driver-side sanity check of the rewiring invariant, outside any processor
        debug_assert!(switched_config.topology().is_quasi_oriented());
        let report = alternating::run(&switched_config)?;
        ComputeOutcome {
            values: evaluate_views(report.outputs(), f),
            messages: report.messages,
            bits: report.bits,
        }
    };
    outcome.messages += orient_report.messages;
    outcome.bits += orient_report.bits;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{And, Max, Or, Sum, Xor};
    use anonring_sim::r#async::{RandomScheduler, SynchronizingScheduler};
    use anonring_sim::Orientation;

    fn truth(inputs: &[u8], f: &dyn RingFunction) -> u64 {
        let xs: Vec<u64> = inputs.iter().map(|&b| u64::from(b)).collect();
        f.evaluate(&xs)
    }

    #[test]
    fn async_and_sync_agree_with_truth() {
        for n in 2..=7usize {
            for mask in 0..(1u32 << n) {
                let inputs: Vec<u8> = (0..n).map(|i| (mask >> i & 1) as u8).collect();
                let config = RingConfig::oriented(inputs.clone());
                for f in [&And as &dyn RingFunction, &Or, &Xor, &Sum, &Max] {
                    let want = truth(&inputs, f);
                    let a = compute_async(&config, f, &mut RandomScheduler::new(7)).unwrap();
                    assert_eq!(a.value(), want, "{} async {inputs:?}", f.name());
                    let s = compute_sync(&config, f).unwrap();
                    assert_eq!(s.value(), want, "{} sync {inputs:?}", f.name());
                }
            }
        }
    }

    #[test]
    fn general_compute_handles_unoriented_odd_rings() {
        let orient: Vec<Orientation> = [1u8, 0, 0, 1, 1, 0, 1]
            .iter()
            .map(|&b| Orientation::from_bit(b))
            .collect();
        for mask in [0u32, 1, 0b1010101, 0b1111111, 0b0011100] {
            let inputs: Vec<u8> = (0..7).map(|i| (mask >> i & 1) as u8).collect();
            let config = RingConfig::new(inputs.clone(), orient.clone()).unwrap();
            for f in [&And as &dyn RingFunction, &Xor, &Sum] {
                let got = compute_sync_general(&config, f).unwrap();
                assert_eq!(got.value(), truth(&inputs, f), "{} {inputs:?}", f.name());
            }
        }
    }

    #[test]
    fn general_compute_handles_even_unoriented_rings() {
        // Even rings may quasi-orient to an alternation; the §4.2.2
        // two-computation route still computes correctly.
        for bits in [[1u8, 0, 1, 0, 1, 1], [1, 1, 1, 1, 0, 0], [1, 0, 0, 1, 0, 1]] {
            let orient: Vec<Orientation> = bits.iter().map(|&b| Orientation::from_bit(b)).collect();
            for mask in [0b111011u32, 0b000000, 0b111111, 0b010101] {
                let inputs: Vec<u8> = (0..6).map(|i| (mask >> i & 1) as u8).collect();
                let config = RingConfig::new(inputs.clone(), orient.clone()).unwrap();
                for f in [&And as &dyn RingFunction, &Xor, &Sum] {
                    let got = compute_sync_general(&config, f).unwrap();
                    assert_eq!(
                        got.value(),
                        truth(&inputs, f),
                        "{} bits={bits:?} mask={mask:b}",
                        f.name()
                    );
                }
            }
        }
    }

    #[test]
    fn general_compute_on_even_rings_is_subquadratic_at_scale() {
        let n = 128usize;
        // A ring Figure 4 settles into an alternation on.
        let orient: Vec<Orientation> = (0..n)
            .map(|i| Orientation::from_bit((i % 2) as u8))
            .collect();
        let inputs: Vec<u8> = (0..n).map(|i| ((i * 31) % 7 == 0) as u8).collect();
        let config = RingConfig::new(inputs.clone(), orient).unwrap();
        let got = compute_sync_general(&config, &Xor).unwrap();
        assert_eq!(got.value(), truth(&inputs, &Xor));
        assert!(
            got.messages < (n * (n - 1)) as u64 / 2,
            "{} messages should beat the quadratic route",
            got.messages
        );
    }

    #[test]
    fn sync_costs_less_than_async_at_scale() {
        let n = 81;
        let inputs: Vec<u8> = (0..n).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let config = RingConfig::oriented(inputs);
        let s = compute_sync(&config, &Xor).unwrap();
        let a = compute_async(&config, &Xor, &mut SynchronizingScheduler).unwrap();
        assert!(
            s.messages < a.messages / 2,
            "sync {} vs async {}",
            s.messages,
            a.messages
        );
    }
}
