//! Figure 2: synchronous input distribution in `O(n log n)` messages.
//!
//! Anonymous processors *manufacture* labels: an active processor's label
//! is the input string of the ring segment between it and the previous
//! active processor. Rounds alternate an **elimination** phase (actives
//! exchange labels with their nearest active neighbours; a processor stays
//! active iff its label is maximal and beats at least one side) and a
//! **label-collection** phase (each surviving active gathers the inputs of
//! its new, longer segment). Because the ring may be perfectly symmetric,
//! the algorithm can deadlock with all labels equal — which every
//! processor detects by *hearing nothing for a whole phase*, at which
//! point the ring input is periodic and each active knows one period.
//!
//! Deviations from the paper's pseudocode (documented in DESIGN.md): our
//! phases last `n + 1` cycles instead of `n`, so that a lone candidate's
//! label can travel all the way around and eliminate it ("the processor
//! competes against itself"); the asymptotic bounds are unchanged and the
//! paper's message bound `n(3·log₁.₅ n + 1) + n` is still verified by the
//! tests.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Message, Port, RingConfig, SimError};
use anonring_words::Word;

use crate::view::RingView;

/// Messages of the Figure 2 algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdMsg {
    /// Phase 1: an active processor's current label.
    Label(Word),
    /// Phase 2: a partially collected segment (inputs appended rightward).
    Collect(Word),
    /// Final broadcast of the detected period.
    Broadcast(Word),
}

impl Message for IdMsg {
    fn bit_len(&self) -> usize {
        let (IdMsg::Label(w) | IdMsg::Collect(w) | IdMsg::Broadcast(w)) = self;
        2 + w.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Rounds,
    Broadcast,
}

/// The Figure 2 process (for **oriented** rings; see
/// [`crate::algorithms::orientation`] for making a ring oriented first).
#[derive(Debug, Clone)]
pub struct SyncInputDist {
    n: usize,
    input: u8,
    label: Word,
    active: bool,
    winner: bool,
    got_left: Option<Word>,
    got_right: Option<Word>,
    heard_phase_b: bool,
    rc: u64,
    round: u64,
    mode: Mode,
}

impl SyncInputDist {
    /// Creates the process for a ring of size `n ≥ 2` with a `{0,1}`
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the input is not a bit.
    #[must_use]
    pub fn new(n: usize, input: u8) -> SyncInputDist {
        assert!(n >= 2, "ring size must be at least 2");
        assert!(input <= 1, "inputs are bits");
        SyncInputDist {
            n,
            input,
            label: Word::from_symbols(vec![input]),
            active: true,
            winner: false,
            got_left: None,
            got_right: None,
            heard_phase_b: false,
            rc: 0,
            round: 0,
            mode: Mode::Rounds,
        }
    }

    /// Builds the final view from a period word starting at this
    /// processor.
    fn view_from_period(&self, period: &Word) -> RingView<u8> {
        assert_eq!(self.n % period.len(), 0, "period must divide the ring size");
        let entries = period
            .repeat(self.n / period.len())
            .into_symbols()
            .into_iter()
            .map(|b| (true, b))
            .collect();
        RingView::new(entries)
    }

    fn round_step(&mut self, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        let n = self.n as u64;
        let mut step: Step<IdMsg, RingView<u8>> = Step::idle();

        // Process arrivals.
        let ports = [
            (Port::Left, rx.from_left.clone()),
            (Port::Right, rx.from_right.clone()),
        ];
        for (port, msg) in ports {
            let Some(msg) = msg else { continue };
            match msg {
                IdMsg::Label(w) => {
                    if self.active {
                        match port {
                            Port::Left => self.got_left = Some(w),
                            Port::Right => self.got_right = Some(w),
                        }
                    } else {
                        // Passive processors relay labels onwards.
                        match port {
                            Port::Left => step.to_right = Some(IdMsg::Label(w)),
                            Port::Right => step.to_left = Some(IdMsg::Label(w)),
                        }
                    }
                }
                IdMsg::Collect(w) => {
                    debug_assert_eq!(port, Port::Left, "collections travel rightward");
                    self.heard_phase_b = true;
                    let extended = {
                        let mut e = w;
                        e.extend([self.input]);
                        e
                    };
                    if self.active && self.winner {
                        // Terminal: this is my new label.
                        self.label = extended;
                    } else {
                        // Losers become passive as the collection passes.
                        self.active = false;
                        step.to_right = Some(IdMsg::Collect(extended));
                    }
                }
                IdMsg::Broadcast(_) => unreachable!("broadcasts only in Broadcast mode"),
            }
        }

        // Scheduled emissions.
        if self.rc == 0 && self.active {
            step.to_left = Some(IdMsg::Label(self.label.clone()));
            step.to_right = Some(IdMsg::Label(self.label.clone()));
        }
        if self.rc == n && self.active {
            // End of phase 1: decide the round.
            let left = self.got_left.take().expect("label from the left");
            let right = self.got_right.take().expect("label from the right");
            let ge = self.label >= left && self.label >= right;
            let gt = self.label > left || self.label > right;
            self.winner = ge && gt;
        }
        if self.rc == n + 1 && self.active && self.winner {
            step.to_right = Some(IdMsg::Collect(Word::new()));
        }

        // End of round.
        if self.rc == 2 * n + 1 {
            if self.heard_phase_b {
                self.rc = 0;
                self.round += 1;
                self.winner = false;
                self.heard_phase_b = false;
                self.got_left = None;
                self.got_right = None;
            } else {
                // Silence through the whole collection phase: the ring is
                // periodic and every surviving active holds one period.
                self.mode = Mode::Broadcast;
            }
        } else {
            self.rc += 1;
        }
        // Within a cycle, every emission belongs to the same phase (labels
        // move in cycles 0..n of a round, collections in n+1..2n+1), so
        // one span per step is faithful.
        let phase = match (&step.to_left, &step.to_right) {
            (Some(IdMsg::Label(_)), _) | (_, Some(IdMsg::Label(_))) => Some("labels"),
            (Some(IdMsg::Collect(_)), _) | (_, Some(IdMsg::Collect(_))) => Some("collect"),
            _ => None,
        };
        match phase {
            Some(phase) => step.in_span(phase, self.round),
            None => step,
        }
    }

    fn broadcast_step(&mut self, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        if self.active {
            // The label ends with my own input: rotating right makes it
            // the period starting at me.
            let period = self.label.rotated(self.label.len() - 1);
            return Step::send_right(IdMsg::Broadcast(self.label.clone()))
                .and_halt(self.view_from_period(&period))
                .in_span("broadcast", self.round);
        }
        if let Some(IdMsg::Broadcast(w)) = rx.from_left {
            let view = self.view_from_period(&w);
            return Step::send_right(IdMsg::Broadcast(w.rotated(1)))
                .and_halt(view)
                .in_span("broadcast", self.round);
        }
        debug_assert!(rx.is_empty(), "unexpected message in broadcast mode");
        Step::idle()
    }
}

impl SyncProcess for SyncInputDist {
    type Msg = IdMsg;
    type Output = RingView<u8>;

    fn step(&mut self, _cycle: u64, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        match self.mode {
            Mode::Rounds => self.round_step(rx),
            Mode::Broadcast => self.broadcast_step(rx),
        }
    }
}

/// Runs Figure 2 on an **oriented** configuration of `{0,1}` inputs.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
///
/// # Panics
///
/// Panics if the configuration is not oriented — the algorithm presumes a
/// consistent sense of "right" (compose with the orientation algorithm
/// otherwise).
pub fn run(config: &RingConfig<u8>) -> Result<SyncReport<RingView<u8>>, SimError> {
    assert!(
        config.topology().is_oriented(),
        "Figure 2 requires an oriented ring"
    );
    let n = config.n();
    let mut engine = SyncEngine::from_config(config, |_, &input| SyncInputDist::new(n, input));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::view::ground_truth_view;

    fn check_outputs(config: &RingConfig<u8>) -> SyncReport<RingView<u8>> {
        let report = run(config).unwrap();
        for (i, view) in report.outputs().iter().enumerate() {
            assert_eq!(
                view,
                &ground_truth_view(config, i),
                "processor {i} of {:?}",
                config.inputs()
            );
        }
        report
    }

    #[test]
    fn exhaustive_small_rings() {
        for n in 2..=9usize {
            for mask in 0..(1u32 << n) {
                let inputs: Vec<u8> = (0..n).map(|i| (mask >> i & 1) as u8).collect();
                let config = RingConfig::oriented(inputs);
                check_outputs(&config);
            }
        }
    }

    #[test]
    fn symmetric_rings_deadlock_gracefully() {
        // Fully periodic inputs exercise the deadlock-detection path hard.
        for (pattern, reps) in [("01", 8), ("0110", 4), ("1", 16), ("011", 5)] {
            let inputs = Word::parse(pattern).repeat(reps).into_symbols();
            let config = RingConfig::oriented(inputs);
            check_outputs(&config);
        }
    }

    #[test]
    fn message_bound_holds() {
        // Paper: n(3 log_1.5 n + 1) messages for the rounds plus n for the
        // final broadcast.
        for n in [4usize, 9, 16, 27, 55, 81, 128] {
            for inputs in [
                vec![1u8; n],
                (0..n).map(|i| (i % 2) as u8).collect::<Vec<_>>(),
                (0..n).map(|i| u8::from(i == 0)).collect::<Vec<_>>(),
                {
                    // pseudo-random but deterministic
                    (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect()
                },
            ] {
                let config = RingConfig::oriented(inputs);
                let report = check_outputs(&config);
                let bound = bounds::sync_input_dist_messages(n as u64) + n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n}: {} messages > {bound}",
                    report.messages
                );
                let cbound = bounds::sync_input_dist_cycles(n as u64);
                assert!(
                    (report.cycles as f64) <= cbound,
                    "n={n}: {} cycles > {cbound}",
                    report.cycles
                );
            }
        }
    }

    #[test]
    fn all_equal_inputs_detect_period_one() {
        let config = RingConfig::oriented(vec![1u8; 12]);
        let report = check_outputs(&config);
        // One round of labels (2n messages as every label travels one hop,
        // being absorbed by the adjacent active), no collections, then a
        // broadcast of n messages.
        assert!(report.messages <= 3 * 12);
    }

    #[test]
    #[should_panic(expected = "oriented")]
    fn rejects_non_oriented_rings() {
        use anonring_sim::Orientation::{Clockwise, Counterclockwise};
        let config = RingConfig::new(
            vec![0u8, 1, 0],
            vec![Clockwise, Counterclockwise, Clockwise],
        )
        .unwrap();
        let _ = run(&config);
    }
}
