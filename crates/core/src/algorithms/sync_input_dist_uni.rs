//! §4.2.1's final remark: input distribution with **one-sided**
//! communication.
//!
//! > "It is easy to modify the last algorithm so as to use only one-sided
//! > communication. Thus, any problem that can be solved on a
//! > unidirectional ring can be solved synchronously in O(n log n)
//! > messages."
//!
//! The bidirectional elimination phase of Figure 2 compares each
//! candidate against *both* active neighbours. Unidirectionally we use
//! the Peterson-style two-hop relay instead: each candidate sends its
//! label rightward, then relays the label it received, so every candidate
//! learns the labels of its two nearest left candidates (`t1`, `t2`). A
//! candidate survives iff `t1` is a weak local maximum with a strict
//! side — `t1 ≥ own`, `t1 ≥ t2`, one strictly (anonymous labels tie, so
//! Peterson's strict rule could starve) — which eliminates a constant
//! fraction of the candidates per round and eliminates **all** of them
//! exactly when every label is equal (the ring is periodic): the usual
//! silent round then triggers the periodicity broadcast, which is already
//! rightward-only, as is the label-collection phase.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{RingConfig, SimError};
use anonring_words::Word;

use crate::algorithms::sync_input_dist::IdMsg;
use crate::view::RingView;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Rounds,
    Broadcast,
}

/// The unidirectional input distribution process (oriented rings).
#[derive(Debug, Clone)]
pub struct UniInputDist {
    n: usize,
    input: u8,
    label: Word,
    active: bool,
    winner: bool,
    t1: Option<Word>,
    t2: Option<Word>,
    heard_phase_b: bool,
    rc: u64,
    mode: Mode,
}

impl UniInputDist {
    /// Creates the process for a ring of size `n ≥ 2` with a `{0,1}`
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the input is not a bit.
    #[must_use]
    pub fn new(n: usize, input: u8) -> UniInputDist {
        assert!(n >= 2, "ring size must be at least 2");
        assert!(input <= 1, "inputs are bits");
        UniInputDist {
            n,
            input,
            label: Word::from_symbols(vec![input]),
            active: true,
            winner: false,
            t1: None,
            t2: None,
            heard_phase_b: false,
            rc: 0,
            mode: Mode::Rounds,
        }
    }

    fn view_from_period(&self, period: &Word) -> RingView<u8> {
        assert_eq!(self.n % period.len(), 0, "period divides the ring size");
        RingView::new(
            period
                .repeat(self.n / period.len())
                .into_symbols()
                .into_iter()
                .map(|b| (true, b))
                .collect(),
        )
    }

    fn rounds_step(&mut self, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        let n = self.n as u64;
        let span = n + 1;
        let mut step: Step<IdMsg, RingView<u8>> = Step::idle();

        if let Some(msg) = rx.from_left {
            match msg {
                IdMsg::Label(w) => {
                    if self.active {
                        if self.t1.is_none() {
                            self.t1 = Some(w);
                        } else {
                            debug_assert!(self.t2.is_none());
                            self.t2 = Some(w);
                        }
                    } else {
                        step.to_right = Some(IdMsg::Label(w));
                    }
                }
                IdMsg::Collect(w) => {
                    self.heard_phase_b = true;
                    let extended = {
                        let mut e = w;
                        e.extend([self.input]);
                        e
                    };
                    if self.active && self.winner {
                        self.label = extended;
                    } else {
                        self.active = false;
                        step.to_right = Some(IdMsg::Collect(extended));
                    }
                }
                IdMsg::Broadcast(_) => unreachable!("broadcasts only in Broadcast mode"),
            }
        }
        debug_assert!(rx.from_right.is_none(), "one-sided communication");

        // Sub-phase A1: candidates launch their labels rightward.
        if self.rc == 0 && self.active {
            step.to_right = Some(IdMsg::Label(self.label.clone()));
        }
        // Sub-phase A2: candidates relay their predecessor's label so the
        // next candidate learns its pre-predecessor's.
        if self.rc == span && self.active {
            let t1 = self.t1.clone().expect("phase A1 delivered t1");
            debug_assert!(step.to_right.is_none());
            step.to_right = Some(IdMsg::Label(t1));
        }
        if self.rc == 2 * span - 1 && self.active {
            let t1 = self.t1.take().expect("t1 delivered");
            let t2 = self.t2.take().expect("t2 delivered");
            // Anonymous labels tie, so Peterson's strict rule can starve
            // (e.g. labels 1,1,0): use Figure 2's weak-maximum-with-one-
            // strict-side rule, which eliminates everyone exactly when
            // all labels are equal.
            self.winner = t1 >= self.label && t1 >= t2 && (t1 > self.label || t1 > t2);
        }
        // Phase B: winners collect their new segment labels.
        if self.rc == 2 * span && self.active && self.winner {
            debug_assert!(step.to_right.is_none());
            step.to_right = Some(IdMsg::Collect(Word::new()));
        }

        if self.rc == 3 * span - 1 {
            if self.heard_phase_b {
                self.rc = 0;
                self.winner = false;
                self.heard_phase_b = false;
                self.t1 = None;
                self.t2 = None;
            } else {
                self.mode = Mode::Broadcast;
            }
        } else {
            self.rc += 1;
        }
        step.in_span("rounds", self.rc)
    }

    fn broadcast_step(&mut self, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        if self.active {
            let period = self.label.rotated(self.label.len() - 1);
            return Step::send_right(IdMsg::Broadcast(self.label.clone()))
                .in_span("broadcast", self.rc)
                .and_halt(self.view_from_period(&period));
        }
        if let Some(IdMsg::Broadcast(w)) = rx.from_left {
            let view = self.view_from_period(&w);
            return Step::send_right(IdMsg::Broadcast(w.rotated(1)))
                .in_span("broadcast", self.rc)
                .and_halt(view);
        }
        Step::idle()
    }
}

impl SyncProcess for UniInputDist {
    type Msg = IdMsg;
    type Output = RingView<u8>;

    fn step(&mut self, _cycle: u64, rx: Received<IdMsg>) -> Step<IdMsg, RingView<u8>> {
        match self.mode {
            Mode::Rounds => self.rounds_step(rx),
            Mode::Broadcast => self.broadcast_step(rx),
        }
    }
}

/// Runs the unidirectional variant on an oriented ring. All messages
/// travel rightward — check [`SyncReport`] against a unidirectional
/// engine run if in doubt.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented.
pub fn run(config: &RingConfig<u8>) -> Result<SyncReport<RingView<u8>>, SimError> {
    assert!(
        config.topology().is_oriented(),
        "the unidirectional variant needs an oriented ring"
    );
    let n = config.n();
    let mut engine = SyncEngine::from_config(config, |_, &input| UniInputDist::new(n, input));
    engine.set_max_cycles((3 * n as u64 + 3) * (3 * n as u64 + 3));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::view::ground_truth_view;

    #[test]
    fn exhaustive_small_rings() {
        for n in 2..=9usize {
            for mask in 0..(1u32 << n) {
                let inputs: Vec<u8> = (0..n).map(|i| (mask >> i & 1) as u8).collect();
                let config = RingConfig::oriented(inputs.clone());
                let report = run(&config).unwrap();
                for (i, view) in report.outputs().iter().enumerate() {
                    assert_eq!(
                        view,
                        &ground_truth_view(&config, i),
                        "n={n} inputs={inputs:?} processor {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn cost_is_n_log_n_and_messages_only_travel_right() {
        for n in [27usize, 81, 243] {
            let inputs: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect();
            let config = RingConfig::oriented(inputs);
            let report = run(&config).unwrap();
            // Three n+1 sub-phases per round, ≤ 2 label hops + 1 collect
            // hop per processor per round: comparable to Figure 2's bound.
            let bound = 1.5 * (bounds::sync_input_dist_messages(n as u64) + n as f64);
            assert!(
                (report.messages as f64) <= bound,
                "n={n}: {} messages > {bound}",
                report.messages
            );
        }
    }

    #[test]
    fn agrees_with_bidirectional_figure_2() {
        for bits in ["101100", "0110110", "11111", "010101010"] {
            let config = RingConfig::oriented_bits(bits).unwrap();
            let uni = run(&config).unwrap().into_outputs();
            let bi = crate::algorithms::sync_input_dist::run(&config)
                .unwrap()
                .into_outputs();
            assert_eq!(uni, bi, "{bits}");
        }
    }
}
