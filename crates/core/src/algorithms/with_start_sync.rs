//! §4.2.3's composition: "By prefixing the synchronization algorithm to
//! an algorithm that assumes simultaneous start, we obtain an algorithm
//! that solves the same problem but does not require simultaneous start."
//!
//! [`WithStartSync`] runs Figure 5 first; since all processors leave it
//! at the *same global cycle*, the wrapped algorithm then executes
//! exactly as if the ring had started simultaneously — at an additive
//! `O(n log n)` message cost.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Message, RingConfig, SimError, WakeSchedule};

use crate::algorithms::start_sync::StartSync;

/// Either a synchronization count or an inner-algorithm message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixedMsg<M> {
    /// Figure 5 traffic.
    Sync(u64),
    /// Wrapped-algorithm traffic.
    Inner(M),
}

impl<M: Message> Message for PrefixedMsg<M> {
    fn bit_len(&self) -> usize {
        match self {
            PrefixedMsg::Sync(c) => 1 + c.bit_len(),
            PrefixedMsg::Inner(m) => 1 + m.bit_len(),
        }
    }
}

/// Runs Figure 5, then the wrapped process from the synchronized instant.
#[derive(Debug, Clone)]
pub struct WithStartSync<P: SyncProcess> {
    sync: StartSync,
    synced: bool,
    inner: P,
    inner_cycle: u64,
}

impl<P: SyncProcess> WithStartSync<P> {
    /// Wraps `inner` for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(inner: P, n: usize) -> WithStartSync<P> {
        WithStartSync {
            sync: StartSync::new(n),
            synced: false,
            inner,
            inner_cycle: 0,
        }
    }
}

impl<P: SyncProcess> SyncProcess for WithStartSync<P> {
    type Msg = PrefixedMsg<P::Msg>;
    type Output = P::Output;

    fn step(
        &mut self,
        cycle: u64,
        rx: Received<PrefixedMsg<P::Msg>>,
    ) -> Step<PrefixedMsg<P::Msg>, P::Output> {
        if !self.synced {
            let sync_rx = Received {
                from_left: rx.from_left.map(|m| match m {
                    PrefixedMsg::Sync(c) => c,
                    PrefixedMsg::Inner(_) => unreachable!("inner before sync"),
                }),
                from_right: rx.from_right.map(|m| match m {
                    PrefixedMsg::Sync(c) => c,
                    PrefixedMsg::Inner(_) => unreachable!("inner before sync"),
                }),
            };
            let s = self.sync.step(cycle, sync_rx);
            let mut out: Step<PrefixedMsg<P::Msg>, P::Output> = Step::idle();
            out.to_left = s.to_left.map(PrefixedMsg::Sync);
            out.to_right = s.to_right.map(PrefixedMsg::Sync);
            if s.halt.is_some() {
                // Synchronized: the inner algorithm starts *next* cycle,
                // simultaneously everywhere.
                self.synced = true;
            }
            return out.in_span("start-sync", cycle);
        }
        let inner_rx = Received {
            from_left: rx.from_left.map(|m| match m {
                PrefixedMsg::Inner(m) => m,
                PrefixedMsg::Sync(_) => unreachable!("sync after sync phase"),
            }),
            from_right: rx.from_right.map(|m| match m {
                PrefixedMsg::Inner(m) => m,
                PrefixedMsg::Sync(_) => unreachable!("sync after sync phase"),
            }),
        };
        let s = self.inner.step(self.inner_cycle, inner_rx);
        let mut out: Step<PrefixedMsg<P::Msg>, P::Output> =
            Step::idle().in_span("inner", self.inner_cycle);
        self.inner_cycle += 1;
        out.to_left = s.to_left.map(PrefixedMsg::Inner);
        out.to_right = s.to_right.map(PrefixedMsg::Inner);
        if let Some(output) = s.halt {
            out = out.and_halt(output);
        }
        out
    }
}

/// Runs a simultaneous-start algorithm under an arbitrary legal wake-up
/// schedule by prefixing Figure 5.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_with_wakeups<P: SyncProcess, V>(
    config: &RingConfig<V>,
    wake: &WakeSchedule,
    mut make: impl FnMut(&V) -> P,
) -> Result<SyncReport<P::Output>, SimError> {
    let n = config.n();
    let mut engine = SyncEngine::from_config(config, |_, v| WithStartSync::new(make(v), n));
    engine.set_wakeups(wake.as_slice().to_vec())?;
    engine.set_max_cycles(((2 * n as u64 + 2) * (2 * n as u64 + 2)).max(100_000));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::sync_and::SyncAnd;
    use crate::algorithms::sync_input_dist::SyncInputDist;
    use crate::view::ground_truth_view;

    #[test]
    fn and_is_correct_under_skewed_wakeups() {
        for n in [4usize, 9, 16] {
            for seed in 0..5u64 {
                let wake = WakeSchedule::random(n, seed);
                for inputs in [
                    vec![1u8; n],
                    (0..n).map(|i| u8::from(i != 2)).collect::<Vec<_>>(),
                    (0..n).map(|i| (i % 2) as u8).collect(),
                ] {
                    let want = u8::from(inputs.iter().all(|&b| b == 1));
                    let config = RingConfig::oriented(inputs.clone());
                    let report = run_with_wakeups(&config, &wake, |&b| SyncAnd::new(n, b)).unwrap();
                    assert!(
                        report.outputs().iter().all(|&o| o == want),
                        "n={n} seed={seed} inputs={inputs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure_2_is_correct_under_skewed_wakeups() {
        let n = 9usize;
        let wake = WakeSchedule::from_word(&[0, 1, 1, 0, 1, 0, 0, 1, 0]).unwrap();
        let config = RingConfig::oriented_bits("011010110").unwrap();
        let report = run_with_wakeups(&config, &wake, |&b| SyncInputDist::new(n, b)).unwrap();
        for (i, view) in report.outputs().iter().enumerate() {
            assert_eq!(view, &ground_truth_view(&config, i), "processor {i}");
        }
    }

    #[test]
    fn cost_is_inner_plus_n_log_n() {
        let n = 64usize;
        let wake = WakeSchedule::random(n, 3);
        let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let config = RingConfig::oriented(inputs);
        let plain = crate::algorithms::sync_input_dist::run(&config).unwrap();
        let wrapped = run_with_wakeups(&config, &wake, |&b| SyncInputDist::new(n, b)).unwrap();
        let sync_budget = crate::bounds::start_sync_messages(n as u64) + 2.0 * n as f64;
        assert!(
            (wrapped.messages as f64) <= plain.messages as f64 + sync_budget,
            "wrapped {} vs plain {} + sync {sync_budget}",
            wrapped.messages,
            plain.messages
        );
    }
}
