//! The paper's algorithms (§4), implemented as [`anonring_sim`]
//! processes, plus the first beyond-the-ring family (dynamic-network
//! one-bit broadcast).

pub mod alternating;
pub mod async_input_dist;
pub mod compute;
pub mod driver;
pub mod dyn_broadcast;
pub mod orientation;
pub mod start_sync;
pub mod start_sync_bits;
pub mod sync_and;
pub mod sync_input_dist;
pub mod sync_input_dist_uni;
pub mod time_encoding;
pub mod with_start_sync;
