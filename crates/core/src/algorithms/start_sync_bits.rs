//! §4.2.4: start synchronization with single-bit messages.
//!
//! Figure 5's messages carry full counts (`O(log n)` bits). This variant
//! encodes the same information in *time*: each candidate sends a **fast**
//! token (forwarded every cycle) followed by a **slow** token (held one
//! extra cycle per hop). The gap between their arrivals equals the
//! distance to the sender, and since candidates transmit only when their
//! count is a multiple of `3n`, the receiver reconstructs the sender's
//! entire clock from a one-bit message pair — recovering Figure 5's
//! tournament at `4n·log₁.₅ n` one-bit messages and `3n·log₁.₅ n` cycles.
//!
//! One deviation (DESIGN.md): the paper distinguishes fast from slow
//! tokens purely by their order on the FIFO link; we spend the one bit we
//! are charged for on an explicit fast/slow flag, which keeps forwarding
//! stateless and robust.

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Message, Port, RingTopology, SimError, WakeSchedule};

/// A one-bit token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// Forwarded one hop per cycle.
    Fast,
    /// Held one extra cycle at every forwarding processor.
    Slow,
}

impl Message for Token {
    fn bit_len(&self) -> usize {
        1
    }
}

/// The §4.2.4 process. Output: the synchronized clock value at halt.
#[derive(Debug, Clone)]
pub struct StartSyncBits {
    n: u64,
    count: u64,
    steps: u64,
    active: bool,
    started: bool,
    last_heard: u64,
    deficits: Vec<i64>,
    /// Per arrival port: (local step, own count) at the fast token.
    fast_seen: [Option<(u64, u64)>; 2],
    /// Slow tokens held for one cycle: the port to emit on next step.
    pending_slow: Vec<Port>,
}

impl StartSyncBits {
    /// Creates the process for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> StartSyncBits {
        assert!(n >= 2, "ring size must be at least 2");
        StartSyncBits {
            n: n as u64,
            count: 0,
            steps: 0,
            active: false,
            started: false,
            last_heard: 0,
            deficits: Vec::new(),
            fast_seen: [None, None],
            pending_slow: Vec::new(),
        }
    }

    fn round(&self) -> u64 {
        3 * self.n
    }

    /// Nearest multiple of `3n` to `x` (the sender's round base).
    fn round_base(&self, x: i64) -> i64 {
        let r = self.round() as i64;
        let k = (x as f64 / r as f64).round() as i64;
        k * r
    }
}

impl SyncProcess for StartSyncBits {
    type Msg = Token;
    type Output = u64;

    fn step(&mut self, _local_cycle: u64, rx: Received<Token>) -> Step<Token, u64> {
        let mut step: Step<Token, u64> = Step::idle();
        if !self.started {
            self.started = true;
            self.active = rx.is_empty();
            if self.active {
                self.steps += 1;
                return Step::send_both(Token::Fast, Token::Fast).in_span("wakeup", 0);
            }
        } else {
            self.count += 1;
        }
        self.steps += 1;

        // Emit slow tokens held from the previous cycle.
        for port in std::mem::take(&mut self.pending_slow) {
            match port {
                Port::Left => step.to_left = Some(Token::Slow),
                Port::Right => step.to_right = Some(Token::Slow),
            }
        }

        for (port, &token) in rx.iter() {
            self.last_heard = self.count;
            let slot = usize::from(port == Port::Right);
            match token {
                Token::Fast => {
                    debug_assert!(self.fast_seen[slot].is_none(), "fast without slow");
                    self.fast_seen[slot] = Some((self.steps, self.count));
                    if !self.active {
                        match port {
                            Port::Left => step.to_right = Some(Token::Fast),
                            Port::Right => step.to_left = Some(Token::Fast),
                        }
                    }
                }
                Token::Slow => {
                    let (fast_step, fast_count) =
                        self.fast_seen[slot].take().expect("slow after fast");
                    // The pair was launched one cycle apart and the slow
                    // token loses one cycle per forwarding hop:
                    // gap = 1 + (d - 1) = d.
                    let d = (self.steps - fast_step) as i64;
                    let base = self.round_base(fast_count as i64 - d);
                    let sender_now = base + 2 * d;
                    if self.active {
                        self.deficits.push(sender_now - self.count as i64);
                    } else {
                        self.pending_slow.push(port.opposite());
                    }
                    self.count = self.count.max(sender_now.max(0) as u64);
                }
            }
        }
        if self.active && self.deficits.len() >= 2 {
            let ahead_of_all = self.deficits.iter().all(|&d| d <= 0);
            let strictly_ahead = self.deficits.iter().any(|&d| d < 0);
            if !(ahead_of_all && strictly_ahead) {
                self.active = false;
            }
            self.deficits.clear();
        }

        // Round boundary and the slow launch one cycle after it.
        if self.count > 0 && self.count.is_multiple_of(self.round()) {
            if self.count - self.last_heard >= self.round() {
                return Step::halt(self.count);
            }
            if self.active {
                step.to_left = Some(Token::Fast);
                step.to_right = Some(Token::Fast);
            }
        }
        if self.active && self.count % self.round() == 1 {
            debug_assert!(step.to_left.is_none() && step.to_right.is_none());
            step.to_left = Some(Token::Slow);
            step.to_right = Some(Token::Slow);
        }
        step.in_span("round", self.count)
    }
}

/// Runs the bit-message synchronizer under a wake-up schedule.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run(topology: &RingTopology, wake: &WakeSchedule) -> Result<SyncReport<u64>, SimError> {
    let n = topology.n();
    let procs = (0..n).map(|_| StartSyncBits::new(n)).collect();
    let mut engine = SyncEngine::new(topology.clone(), procs)?;
    engine.set_wakeups(wake.as_slice().to_vec())?;
    engine.set_max_cycles(((3 * n as u64 + 3) * (3 * n as u64 + 3)).max(10_000));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use anonring_sim::RingTopology;

    fn check(n: usize, wake: &WakeSchedule) -> SyncReport<u64> {
        let topology = RingTopology::oriented(n).unwrap();
        let report = run(&topology, wake).unwrap();
        assert!(
            report.halted_simultaneously(),
            "n={n} wake={:?}: halts at {:?}",
            wake.as_slice(),
            report.halt_cycles
        );
        let first = report.outputs()[0];
        assert!(
            report.outputs().iter().all(|&c| c == first),
            "n={n}: clocks disagree: {:?}",
            report.outputs()
        );
        // Every message costs exactly one bit.
        assert_eq!(report.bits, report.messages);
        report
    }

    #[test]
    fn simultaneous_start_synchronizes() {
        for n in [2usize, 3, 5, 12] {
            check(n, &WakeSchedule::simultaneous(n));
        }
    }

    #[test]
    fn word_schedules_synchronize() {
        for word in [
            vec![1u8, 1, 0, 0],
            vec![1, 0, 1, 0, 1, 0],
            vec![1, 1, 1, 0, 0, 0, 1, 0],
        ] {
            let n = word.len();
            check(n, &WakeSchedule::from_word(&word).unwrap());
        }
    }

    #[test]
    fn random_schedules_synchronize_with_message_bound() {
        for n in [4usize, 9, 16, 33, 64] {
            for seed in 0..5 {
                let wake = WakeSchedule::random(n, seed);
                let report = check(n, &wake);
                let bound = bounds::start_sync_bits_messages(n as u64) + 4.0 * n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n} seed={seed}: {} messages > {bound}",
                    report.messages
                );
            }
        }
    }

    #[test]
    fn agrees_with_figure_5_clock() {
        // Both synchronizers adopt the earliest waker's clock; their
        // output counts can differ (round lengths differ) but both must
        // halt simultaneously per their own run. Spot-compare skews.
        let wake = WakeSchedule::from_word(&[1, 1, 0, 1, 0, 0]).unwrap();
        let n = 6;
        let bits = check(n, &wake);
        let topology = RingTopology::oriented(n).unwrap();
        let plain = crate::algorithms::start_sync::run(&topology, &wake).unwrap();
        assert!(plain.halted_simultaneously());
        assert!(bits.halted_simultaneously());
    }
}
