//! §4.2: computing AND synchronously with `O(n)` messages.
//!
//! A processor with input 0 floods a token in both directions and halts
//! with output 0. A processor with input 1 waits `⌊n/2⌋` cycles: if a
//! token arrives it forwards it once and halts with 0; if the deadline
//! passes silently it halts with 1. Silence is information — the trick
//! that separates the synchronous `O(n)` from the asynchronous `Ω(n²)`
//! world (§5.2.1).

use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::{Port, RingConfig, SimError};

/// The §4.2 AND process. Message type is the zero-bit token `()`.
#[derive(Debug, Clone)]
pub struct SyncAnd {
    n: usize,
    input: u8,
}

impl SyncAnd {
    /// Creates the process for a ring of size `n ≥ 2` with a `{0,1}`
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the input is not a bit.
    #[must_use]
    pub fn new(n: usize, input: u8) -> SyncAnd {
        assert!(n >= 2, "ring size must be at least 2");
        assert!(input <= 1, "AND takes {{0,1}} inputs");
        SyncAnd { n, input }
    }
}

impl SyncProcess for SyncAnd {
    type Msg = ();
    type Output = u8;

    fn step(&mut self, cycle: u64, rx: Received<()>) -> Step<(), u8> {
        if self.input == 0 {
            debug_assert_eq!(cycle, 0);
            return Step::send_both((), ()).in_span("flood", 0).and_halt(0);
        }
        // Input 1: forward-and-halt on any token.
        if !rx.is_empty() {
            let mut step: Step<(), u8> = Step::idle();
            if rx.on(Port::Left).is_some() {
                step.to_right = Some(());
            }
            if rx.on(Port::Right).is_some() {
                step.to_left = Some(());
            }
            return step.in_span("forward", cycle).and_halt(0);
        }
        if cycle == (self.n / 2) as u64 {
            return Step::halt(1);
        }
        Step::idle()
    }
}

/// Runs the AND algorithm on a configuration of `{0,1}` inputs.
///
/// # Errors
///
/// Propagates engine errors (which indicate a bug, not a legal outcome).
pub fn run(config: &RingConfig<u8>) -> Result<SyncReport<u8>, SimError> {
    let n = config.n();
    let mut engine = SyncEngine::from_config(config, |_, &input| SyncAnd::new(n, input));
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonring_sim::Orientation;

    fn bits_of(mask: u32, n: usize) -> Vec<u8> {
        (0..n).map(|i| (mask >> i & 1) as u8).collect()
    }

    #[test]
    fn exhaustive_correctness_all_inputs_and_orientations() {
        for n in 2..=7usize {
            for imask in 0..(1u32 << n) {
                let inputs = bits_of(imask, n);
                let want = u8::from(inputs.iter().all(|&b| b == 1));
                for omask in [0u32, (1 << n) - 1, 0b0101_0101 & ((1 << n) - 1), 1] {
                    let orient = (0..n)
                        .map(|i| Orientation::from_bit((omask >> i & 1) as u8))
                        .collect();
                    let config = RingConfig::new(inputs.clone(), orient).unwrap();
                    let report = run(&config).unwrap();
                    assert!(
                        report.outputs().iter().all(|&o| o == want),
                        "n={n} inputs={inputs:?} omask={omask:b}: {:?}",
                        report.outputs()
                    );
                }
            }
        }
    }

    #[test]
    fn message_and_cycle_bounds() {
        for n in 2..=40usize {
            for inputs in [
                vec![1u8; n],
                vec![0u8; n],
                {
                    let mut v = vec![1u8; n];
                    v[0] = 0;
                    v
                },
                (0..n).map(|i| (i % 2) as u8).collect(),
            ] {
                let config = RingConfig::oriented(inputs.clone());
                let report = run(&config).unwrap();
                assert!(
                    report.messages <= 2 * n as u64,
                    "n={n} inputs={inputs:?}: {} messages",
                    report.messages
                );
                assert!(
                    report.cycles <= (n / 2 + 1) as u64,
                    "n={n}: {} cycles",
                    report.cycles
                );
                // Zero-bit tokens: the whole run costs no bits.
                assert_eq!(report.bits, 0);
            }
        }
    }

    #[test]
    fn all_ones_costs_zero_messages() {
        let config = RingConfig::oriented(vec![1u8; 9]);
        let report = run(&config).unwrap();
        assert_eq!(report.messages, 0);
        assert!(report.outputs().iter().all(|&o| o == 1));
        // Everyone halts together at cycle floor(n/2).
        assert!(report.halted_simultaneously());
    }
}
