//! A processor's reconstructed view of the whole ring.

use anonring_sim::{Orientation, RingConfig};

/// What a processor knows after solving the input distribution problem:
/// for every position `j` (hops in the processor's own *right* direction,
/// with `j = 0` the processor itself), the input of that processor and
/// whether it is oriented the same way.
///
/// This is the paper's "complete information on the initial ring
/// configuration", relative to the observer's location and orientation —
/// precisely what makes every computable function locally evaluable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingView<V> {
    entries: Vec<(bool, V)>,
}

impl<V> RingView<V> {
    /// Builds a view from entries. `entries[0]` must be the observer
    /// itself, which by convention has `same_orientation = true`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or `entries[0].0` is false.
    #[must_use]
    pub fn new(entries: Vec<(bool, V)>) -> RingView<V> {
        assert!(!entries.is_empty(), "a view contains at least the observer");
        assert!(entries[0].0, "the observer has its own orientation");
        RingView { entries }
    }

    /// Ring size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// The (same-orientation, input) pairs, rightward from the observer.
    #[must_use]
    pub fn entries(&self) -> &[(bool, V)] {
        &self.entries
    }

    /// The inputs in rightward order starting with the observer's own.
    pub fn inputs(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Evaluates a function of the multiset/sequence of inputs locally.
    pub fn evaluate<T>(&self, f: impl FnOnce(&[V]) -> T) -> T
    where
        V: Clone,
    {
        let inputs: Vec<V> = self.inputs().cloned().collect();
        f(&inputs)
    }
}

/// The correct [`RingView`] of processor `i` in `config`, computed from
/// global knowledge — the reference against which the distributed
/// input-distribution algorithms are tested.
#[must_use]
pub fn ground_truth_view<V: Clone>(config: &RingConfig<V>, i: usize) -> RingView<V> {
    let topo = config.topology();
    let n = config.n();
    let dir: isize = match topo.orientation(i) {
        Orientation::Clockwise => 1,
        Orientation::Counterclockwise => -1,
    };
    let entries = (0..n)
        .map(|j| {
            let idx = topo.wrap(i, dir * j as isize);
            (
                topo.orientation(idx) == topo.orientation(i),
                config.input(idx).clone(),
            )
        })
        .collect();
    RingView::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonring_sim::Orientation::{Clockwise as CW, Counterclockwise as CCW};

    #[test]
    fn ground_truth_on_oriented_ring() {
        let config = RingConfig::oriented_bits("0110").unwrap();
        let v = ground_truth_view(&config, 1);
        assert_eq!(v.n(), 4);
        let inputs: Vec<u8> = v.inputs().copied().collect();
        assert_eq!(inputs, vec![1, 1, 0, 0]); // I1, I2, I3, I0
        assert!(v.entries().iter().all(|&(same, _)| same));
    }

    #[test]
    fn ground_truth_flips_direction_for_ccw_observer() {
        let config = RingConfig::new(vec![0u8, 1, 2, 3], vec![CW, CCW, CW, CW]).unwrap();
        let v = ground_truth_view(&config, 1);
        // Processor 1 is CCW: its rightward direction is decreasing
        // indices: 1, 0, 3, 2.
        let inputs: Vec<u8> = v.inputs().copied().collect();
        assert_eq!(inputs, vec![1, 0, 3, 2]);
        // Only processor 1 itself matches its orientation.
        let sames: Vec<bool> = v.entries().iter().map(|&(s, _)| s).collect();
        assert_eq!(sames, vec![true, false, false, false]);
    }

    #[test]
    fn evaluate_applies_local_function() {
        let config = RingConfig::oriented_bits("0110").unwrap();
        let v = ground_truth_view(&config, 0);
        assert_eq!(
            v.evaluate(|xs| xs.iter().map(|&x| x as u64).sum::<u64>()),
            2
        );
    }

    #[test]
    #[should_panic(expected = "own orientation")]
    fn observer_must_be_self_oriented() {
        let _ = RingView::new(vec![(false, 0u8)]);
    }
}
