//! Computable ring functions and the Theorem 3.4 characterization.
//!
//! A function `f : Sⁿ → T` is computable on a clockwise-oriented anonymous
//! ring of size `n` iff it is invariant under cyclic shifts of the input;
//! on arbitrary rings it must additionally be invariant under reversal
//! (Theorem 3.4). The classic examples — AND, OR, XOR, SUM, MIN, MAX — are
//! all fully symmetric, hence computable everywhere.

use std::fmt;

/// A function of the ring input evaluated identically by every processor
/// (given its [`crate::view::RingView`]).
///
/// Implementations receive the inputs in ring order, starting anywhere —
/// which is exactly why only cyclic-shift-invariant functions make sense.
pub trait RingFunction {
    /// Evaluates the function on the ring input.
    fn evaluate(&self, inputs: &[u64]) -> u64;

    /// A short human-readable name.
    fn name(&self) -> &str;
}

macro_rules! simple_fn {
    ($(#[$doc:meta])* $name:ident, $label:expr, |$inputs:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl RingFunction for $name {
            fn evaluate(&self, $inputs: &[u64]) -> u64 {
                $body
            }
            fn name(&self) -> &str {
                $label
            }
        }
    };
}

simple_fn!(
    /// Logical AND of `{0,1}` inputs.
    And,
    "AND",
    |inputs| u64::from(inputs.iter().all(|&x| x != 0))
);

simple_fn!(
    /// Logical OR of `{0,1}` inputs.
    Or,
    "OR",
    |inputs| u64::from(inputs.iter().any(|&x| x != 0))
);

simple_fn!(
    /// XOR (sum mod 2) of `{0,1}` inputs — the canonical `Θ(n log n)`
    /// synchronous function (§6.3.1).
    Xor,
    "XOR",
    |inputs| inputs.iter().fold(0, |acc, &x| acc ^ (x & 1))
);

simple_fn!(
    /// Sum of the inputs — requires exact knowledge of `n` (Theorem 3.3).
    Sum,
    "SUM",
    |inputs| inputs.iter().copied().fold(0u64, u64::wrapping_add)
);

simple_fn!(
    /// Minimum input — `Θ(n²)` asynchronously when inputs may repeat
    /// (Corollary 5.2), `O(n log n)` when distinct.
    Min,
    "MIN",
    |inputs| inputs.iter().copied().min().unwrap_or(0)
);

simple_fn!(
    /// Maximum input.
    Max,
    "MAX",
    |inputs| inputs.iter().copied().max().unwrap_or(0)
);

/// A ring function defined by a closure (for tests and random-function
/// experiments).
#[derive(Clone)]
pub struct FnRing<F> {
    f: F,
    name: String,
}

impl<F: Fn(&[u64]) -> u64> FnRing<F> {
    /// Wraps a closure as a ring function.
    #[must_use]
    pub fn new(name: impl Into<String>, f: F) -> FnRing<F> {
        FnRing {
            f,
            name: name.into(),
        }
    }
}

impl<F: Fn(&[u64]) -> u64> RingFunction for FnRing<F> {
    fn evaluate(&self, inputs: &[u64]) -> u64 {
        (self.f)(inputs)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

impl<F> fmt::Debug for FnRing<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnRing").field("name", &self.name).finish()
    }
}

/// Enumerates all `{0,1}ⁿ` inputs (LSB-first) — usable up to `n ≈ 20`.
fn all_binary_inputs(n: usize) -> impl Iterator<Item = Vec<u64>> {
    assert!(n <= 24, "exhaustive enumeration limited to n <= 24");
    (0u32..(1 << n)).map(move |mask| (0..n).map(|i| u64::from(mask >> i & 1)).collect())
}

/// Whether `f` is invariant under cyclic shifts of `{0,1}ⁿ` inputs —
/// Theorem 3.4(i)'s computability criterion for clockwise-oriented rings
/// (checked exhaustively).
#[must_use]
pub fn is_cyclic_invariant(f: &dyn RingFunction, n: usize) -> bool {
    all_binary_inputs(n).all(|input| {
        let v = f.evaluate(&input);
        let mut rotated = input;
        rotated.rotate_left(1);
        f.evaluate(&rotated) == v
    })
}

/// Whether `f` is additionally invariant under reversal — together with
/// cyclic invariance, Theorem 3.4(ii)'s criterion for arbitrary rings.
#[must_use]
pub fn is_reversal_invariant(f: &dyn RingFunction, n: usize) -> bool {
    all_binary_inputs(n).all(|input| {
        let v = f.evaluate(&input);
        let mut rev = input;
        rev.reverse();
        f.evaluate(&rev) == v
    })
}

/// Theorem 3.4(i): computability of `f` on a clockwise-oriented anonymous
/// ring of size `n` (for `{0,1}` inputs, checked exhaustively).
#[must_use]
pub fn computable_on_oriented_ring(f: &dyn RingFunction, n: usize) -> bool {
    is_cyclic_invariant(f, n)
}

/// Theorem 3.4(ii): computability of `f` on an *arbitrary* ring of size
/// `n`.
#[must_use]
pub fn computable_on_any_ring(f: &dyn RingFunction, n: usize) -> bool {
    is_cyclic_invariant(f, n) && is_reversal_invariant(f, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_functions_evaluate_correctly() {
        let i = [1u64, 1, 0, 1];
        assert_eq!(And.evaluate(&i), 0);
        assert_eq!(Or.evaluate(&i), 1);
        assert_eq!(Xor.evaluate(&i), 1);
        assert_eq!(Sum.evaluate(&i), 3);
        assert_eq!(Min.evaluate(&i), 0);
        assert_eq!(Max.evaluate(&i), 1);
        assert_eq!(And.evaluate(&[1, 1]), 1);
        assert_eq!(Xor.evaluate(&[1, 1]), 0);
    }

    #[test]
    fn classic_functions_are_computable_everywhere() {
        for f in [&And as &dyn RingFunction, &Or, &Xor, &Sum, &Min, &Max] {
            for n in [2usize, 3, 5, 8] {
                assert!(computable_on_any_ring(f, n), "{} n={n}", f.name());
            }
        }
    }

    #[test]
    fn position_dependent_function_is_not_computable() {
        // "the input of processor 0" is not cyclic invariant.
        let f = FnRing::new("first", |xs: &[u64]| xs[0]);
        assert!(!computable_on_oriented_ring(&f, 3));
    }

    #[test]
    fn direction_dependent_function_needs_orientation() {
        // The lexicographically least rotation (as a number) is cyclic
        // invariant by construction but chiral: 110100's least rotation is
        // 001101 while its mirror 001011's is 001011.
        let f = FnRing::new("least-rotation", |xs: &[u64]| {
            let n = xs.len();
            (0..n)
                .map(|r| (0..n).fold(0u64, |acc, i| (acc << 1) | (xs[(r + i) % n] & 1)))
                .min()
                .unwrap_or(0)
        });
        assert!(is_cyclic_invariant(&f, 6));
        assert!(!is_reversal_invariant(&f, 6));
        assert!(computable_on_oriented_ring(&f, 6));
        assert!(!computable_on_any_ring(&f, 6));
    }

    #[test]
    fn fn_ring_debug_and_name() {
        let f = FnRing::new("id", |xs: &[u64]| xs.iter().sum());
        assert_eq!(f.name(), "id");
        assert!(format!("{f:?}").contains("id"));
    }
}
