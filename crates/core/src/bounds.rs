//! Closed-form complexity bounds stated in the paper, used by the
//! experiment harness to print paper-vs-measured tables.

/// `log₁.₅ n` (the round count of the elimination algorithms).
#[must_use]
pub fn log_base(n: f64, base: f64) -> f64 {
    n.ln() / base.ln()
}

// ---------------------------------------------------------------------
// Upper bounds (§4).
// ---------------------------------------------------------------------

/// §4.1: messages of the asynchronous input distribution algorithm,
/// exactly `n(n − 1)` (for `n ≥ 3`).
#[must_use]
pub fn async_input_dist_messages(n: u64) -> u64 {
    n * (n - 1)
}

/// §4.2: messages of the synchronous AND algorithm, at most `2n`.
#[must_use]
pub fn sync_and_messages(n: u64) -> u64 {
    2 * n
}

/// §4.2: cycles of the synchronous AND algorithm, at most `⌊n/2⌋ + 1`.
#[must_use]
pub fn sync_and_cycles(n: u64) -> u64 {
    n / 2 + 1
}

/// Fig. 2: messages of the synchronous input distribution algorithm, at
/// most `n(3·log₁.₅ n + 1)`.
#[must_use]
pub fn sync_input_dist_messages(n: u64) -> f64 {
    n as f64 * (3.0 * log_base(n as f64, 1.5) + 1.0)
}

/// Fig. 2: cycles of the synchronous input distribution algorithm, at most
/// `n(2·log₁.₅ n + 1)` with the paper's `n`-cycle phases. Our
/// implementation uses `(n + 1)`-cycle phases (so that a lone candidate's
/// label completes a round trip), giving `(n + 1)(2·log₁.₅ n + 3)`.
#[must_use]
pub fn sync_input_dist_cycles(n: u64) -> f64 {
    (n as f64 + 1.0) * (2.0 * log_base(n as f64, 1.5) + 3.0)
}

/// Fig. 4: messages of the orientation algorithm, at most
/// `3.5n(log₃ n + 1)`.
#[must_use]
pub fn orientation_messages(n: u64) -> f64 {
    3.5 * n as f64 * (log_base(n as f64, 3.0) + 1.0)
}

/// Fig. 4: cycles of the orientation algorithm, at most `n(2·log₃ n + 4)`
/// with the paper's phases; `(n + 1)(2·log₃ n + 6)` with ours.
#[must_use]
pub fn orientation_cycles(n: u64) -> f64 {
    (n as f64 + 1.0) * (2.0 * log_base(n as f64, 3.0) + 6.0)
}

/// Fig. 5 / §4.2.3: messages of the start synchronization algorithm, at
/// most `2n(1 + log₁.₅ n)`.
#[must_use]
pub fn start_sync_messages(n: u64) -> f64 {
    2.0 * n as f64 * (1.0 + log_base(n as f64, 1.5))
}

/// §4.2.4: messages of the bit-message start synchronization variant, at
/// most `4n·log₁.₅ n` (all messages a single bit).
#[must_use]
pub fn start_sync_bits_messages(n: u64) -> f64 {
    4.0 * n as f64 * log_base(n as f64, 1.5)
}

/// §4.2.4: cycles of the bit-message variant, at most `3n·log₁.₅ n`.
#[must_use]
pub fn start_sync_bits_cycles(n: u64) -> f64 {
    3.0 * n as f64 * log_base(n as f64, 1.5)
}

// ---------------------------------------------------------------------
// Lower bounds (§5, §6).
// ---------------------------------------------------------------------

/// §5.2.1: asynchronous AND fooling-pair bound `n·⌊n/2⌋` on input `1ⁿ`.
#[must_use]
pub fn and_async_lower(n: u64) -> u64 {
    n * (n / 2)
}

/// §5.2.1 refined: the tight `n(n − 1)` bound for AND / non-distinct
/// minimum finding (Corollary 5.2).
#[must_use]
pub fn and_async_lower_refined(n: u64) -> u64 {
    n * (n - 1)
}

/// Theorem 5.3: asynchronous orientation bound `n·⌊(n + 2)/4⌋` (odd `n`).
#[must_use]
pub fn orientation_async_lower(n: u64) -> u64 {
    n * ((n + 2) / 4)
}

/// §6.3.1: synchronous XOR bound `(n/54)·ln(n/9)` at `n = 3ᵏ`.
#[must_use]
pub fn xor_sync_lower(n: u64) -> f64 {
    (n as f64 / 54.0) * (n as f64 / 9.0).ln()
}

/// §6.3.2: synchronous orientation bound `(n/27)·ln(n/9)` at `n = 3ᵏ`.
#[must_use]
pub fn orientation_sync_lower(n: u64) -> f64 {
    (n as f64 / 27.0) * (n as f64 / 9.0).ln()
}

/// §6.3.3: synchronous start synchronization bound `(n/54)·ln(n/36)` at
/// `n = 4·3ᵏ`.
#[must_use]
pub fn start_sync_sync_lower(n: u64) -> f64 {
    (n as f64 / 54.0) * (n as f64 / 36.0).ln()
}

/// Theorem 6.7: the bound `(n/64)·ln(n/64)` forced on almost all Boolean
/// functions at `n = 2²ᵏ`.
#[must_use]
pub fn random_function_sync_lower(n: u64) -> f64 {
    (n as f64 / 64.0) * (n as f64 / 64.0).ln()
}

/// Theorem 5.1 / 6.2 generic bound: `Σ_{k=0}^{α} β(k)` (halve it for the
/// synchronous variant).
#[must_use]
pub fn fooling_pair_bound(alpha: usize, beta: impl Fn(usize) -> f64) -> f64 {
    (0..=alpha).map(beta).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bounds_are_monotone() {
        for f in [
            sync_input_dist_messages,
            orientation_messages,
            start_sync_messages,
            start_sync_bits_messages,
        ] {
            let mut prev = 0.0;
            for n in [4u64, 16, 64, 256, 1024] {
                let v = f(n);
                assert!(v > prev);
                prev = v;
            }
        }
    }

    #[test]
    fn exact_values() {
        assert_eq!(async_input_dist_messages(5), 20);
        assert_eq!(sync_and_messages(7), 14);
        assert_eq!(and_async_lower(9), 36);
        assert_eq!(and_async_lower_refined(9), 72);
        assert_eq!(orientation_async_lower(9), 18);
    }

    #[test]
    fn fooling_pair_bound_sums_beta() {
        // beta(k) = n/(2k+1) over k=0..=2 for n=30: 30 + 10 + 6 = 46.
        let b = fooling_pair_bound(2, |k| 30.0 / (2 * k + 1) as f64);
        assert!((b - 46.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_scale_like_n_log_n() {
        let a = xor_sync_lower(81);
        let b = xor_sync_lower(243);
        // superlinear growth (tripling n more than triples the bound):
        assert!(b / a > 3.0);
        assert!(b / a < 5.0);
    }
}
