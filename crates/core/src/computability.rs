//! Machine-checked demonstrations of the §3 impossibility results.
//!
//! Impossibility theorems cannot be "run", but their proofs rest on one
//! mechanism — indistinguishability (Lemma 3.1): processors with equal
//! `k`-neighborhoods are in identical states after `k` cycles, hence
//! produce equal outputs if they halt by then. This module builds the
//! witness configurations used by each proof and provides an engine-level
//! checker that verifies the indistinguishability claim against *actual
//! runs* of any algorithm.

use std::fmt::Debug;

use anonring_sim::sync::{SyncEngine, SyncProcess};
use anonring_sim::{neighborhood, Orientation, RingConfig};

/// Runs an algorithm on two configurations for `k` cycles and checks that
/// processors `p1` (in `c1`) and `p2` (in `c2`) pass through identical
/// state sequences — the executable content of Lemma 3.1 (and, counting
/// only active cycles, Lemma 6.1).
///
/// States are compared via their `Debug` rendering, so the process type
/// must expose its full state there (all the algorithms in this crate
/// derive `Debug`).
pub fn states_agree<V: Clone, P: SyncProcess + Debug>(
    c1: &RingConfig<V>,
    p1: usize,
    c2: &RingConfig<V>,
    p2: usize,
    k: u64,
    mut make: impl FnMut(usize, &V) -> P,
) -> bool {
    let trace = |config: &RingConfig<V>, p: usize, make: &mut dyn FnMut(usize, &V) -> P| {
        let mut engine = SyncEngine::from_config(config, |i, v| make(i, v));
        engine.set_max_cycles(k);
        let mut states = Vec::new();
        // A MaxCyclesExceeded error is expected: we only want k cycles.
        let _ = engine.run_observed(|_, procs| states.push(format!("{:?}", procs[p])));
        states
    };
    let t1 = trace(c1, p1, &mut make);
    let t2 = trace(c2, p2, &mut make);
    let len = t1.len().min(t2.len()).min(k as usize);
    t1[..len] == t2[..len]
}

/// Lemma 6.1's sharper form: compare two processors' state sequences
/// indexed by **active cycles** — cycles in which at least one of the two
/// runs sent a message. Processors with equal `k`-neighborhoods must
/// agree through the first `k` active cycles even if many more silent
/// cycles have elapsed; this is the mechanism behind all synchronous
/// lower bounds (silence only advances the computation jointly).
pub fn states_agree_active_cycles<V: Clone, P: SyncProcess + Debug>(
    c1: &RingConfig<V>,
    p1: usize,
    c2: &RingConfig<V>,
    p2: usize,
    k: usize,
    mut make: impl FnMut(usize, &V) -> P,
) -> bool {
    let trace = |config: &RingConfig<V>, p: usize, make: &mut dyn FnMut(usize, &V) -> P| {
        let mut engine = SyncEngine::from_config(config, |i, v| make(i, v));
        let mut states = Vec::new();
        let result = engine.run_observed(|_, procs| states.push(format!("{:?}", procs[p])));
        let per_cycle = match &result {
            Ok(report) => report.per_cycle_messages.clone(),
            Err(_) => Vec::new(),
        };
        (states, per_cycle)
    };
    let (s1, m1) = trace(c1, p1, &mut make);
    let (s2, m2) = trace(c2, p2, &mut make);
    // A cycle is active if either run sent a message during it.
    let cycles = s1.len().min(s2.len());
    let mut active_seen = 0usize;
    for t in 0..cycles {
        if s1[t] != s2[t] {
            return false;
        }
        let sent1 = m1.get(t).copied().unwrap_or(0) > 0;
        let sent2 = m2.get(t).copied().unwrap_or(0) > 0;
        if sent1 || sent2 {
            active_seen += 1;
            if active_seen >= k {
                return true;
            }
        }
    }
    true
}

/// Theorem 3.2's witness: given inputs `i0`, `i1` (on which a putative
/// size-oblivious algorithm answers differently within `t` cycles), the
/// configuration `i0^(2t+1) · i1^(2t+1)` contains a processor with the
/// same `t`-neighborhood as one in the pure-`i0` ring and another matching
/// the pure-`i1` ring — so the algorithm must answer both ways on one
/// ring.
///
/// Returns the combined configuration and the two witness processors
/// (indices into it), with the guarantee — asserted here — that their
/// `t`-neighborhoods match processors of the two pure rings.
///
/// # Panics
///
/// Panics if the inputs are empty (no ring to build).
#[must_use]
pub fn theorem_3_2_witness(i0: &[u8], i1: &[u8], t: usize) -> (RingConfig<u8>, usize, usize) {
    assert!(!i0.is_empty() && !i1.is_empty());
    let reps = 2 * t + 1;
    let mut inputs = Vec::new();
    for _ in 0..reps {
        inputs.extend_from_slice(i0);
    }
    let second_start = inputs.len();
    for _ in 0..reps {
        inputs.extend_from_slice(i1);
    }
    let combined = RingConfig::oriented(inputs);
    // Witnesses in the middle of each block are t-isolated from the seam.
    let w0 = i0.len() * t + i0.len() / 2;
    let w1 = second_start + i1.len() * t + i1.len() / 2;

    let pure0 = RingConfig::oriented(i0.repeat(reps.max(2)));
    let pure1 = RingConfig::oriented(i1.repeat(reps.max(2)));
    let m0 = i0.len() * t + i0.len() / 2;
    let m1 = i1.len() * t + i1.len() / 2;
    assert_eq!(
        neighborhood(&combined, w0, t),
        neighborhood(&pure0, m0, t),
        "w0 must be indistinguishable from the pure i0 ring"
    );
    assert_eq!(
        neighborhood(&combined, w1, t),
        neighborhood(&pure1, m1, t),
        "w1 must be indistinguishable from the pure i1 ring"
    );
    (combined, w0, w1)
}

/// Theorem 3.3's witnesses: all-ones rings of two different sizes, on
/// which SUM must answer differently, yet every `k`-neighborhood is
/// identical across the two rings for every `k` — so no single algorithm
/// handles both sizes.
#[must_use]
pub fn theorem_3_3_witness(n1: usize, n2: usize) -> (RingConfig<u8>, RingConfig<u8>) {
    (
        RingConfig::oriented(vec![1u8; n1]),
        RingConfig::oriented(vec![1u8; n2]),
    )
}

/// Theorem 3.5's witness (Figure 1): a `2n`-ring made of two oriented
/// half-rings. Processors `i` and `2n − 1 − i` have equal
/// `k`-neighborhoods for every `k`, but opposite orientations — so they
/// cannot consistently decide who switches.
#[must_use]
pub fn theorem_3_5_witness(half: usize) -> RingConfig<()> {
    let n = 2 * half;
    let orientations = (0..n)
        .map(|i| {
            if i < half {
                Orientation::Clockwise
            } else {
                Orientation::Counterclockwise
            }
        })
        .collect();
    RingConfig::new(vec![(); n], orientations).expect("valid ring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::sync_input_dist::SyncInputDist;
    use anonring_sim::neighborhood;

    #[test]
    fn lemma_3_1_holds_for_a_real_algorithm() {
        // Processors with equal k-neighborhoods in two same-size rings run
        // through identical states for k cycles of Figure 2.
        let c1 = RingConfig::oriented_bits("011011011").unwrap();
        let c2 = RingConfig::oriented_bits("011011000").unwrap();
        // Processor 2 sees the same 2-neighborhood (01101) in both rings.
        assert_eq!(neighborhood(&c1, 2, 2), neighborhood(&c2, 2, 2));
        assert!(states_agree(&c1, 2, &c2, 2, 2, |_, &b| SyncInputDist::new(
            9, b
        )));
        // ...and the information eventually matters: the complete runs end
        // with different views at processor 2 (Lemma 3.1 only bounds how
        // *soon* divergence can happen, so we check outputs, not states).
        assert_ne!(neighborhood(&c1, 2, 4), neighborhood(&c2, 2, 4));
        let out = |c: &RingConfig<u8>| {
            crate::algorithms::sync_input_dist::run(c)
                .unwrap()
                .into_outputs()
        };
        assert_ne!(out(&c1)[2], out(&c2)[2]);
    }

    #[test]
    fn lemma_6_1_active_cycle_indistinguishability() {
        // Figure 2 runs very differently on the all-ones ring (one round,
        // deadlock, broadcast) and on 1^8·0; processor 3 has the same
        // 3-neighborhood in both, so it must agree through the first 3
        // jointly-active cycles...
        let c1 = RingConfig::oriented_bits("111111111").unwrap();
        let c2 = RingConfig::oriented_bits("111111110").unwrap();
        assert_eq!(neighborhood(&c1, 3, 3), neighborhood(&c2, 3, 3));
        assert!(states_agree_active_cycles(&c1, 3, &c2, 3, 3, |_, &b| {
            SyncInputDist::new(9, b)
        }));
        // ...while processor 7 (adjacent to the differing input) diverges
        // within 2 active cycles: its 1-neighborhoods differ.
        assert_ne!(neighborhood(&c1, 7, 1), neighborhood(&c2, 7, 1));
        assert!(!states_agree_active_cycles(&c1, 7, &c2, 7, 2, |_, &b| {
            SyncInputDist::new(9, b)
        }));
    }

    #[test]
    fn theorem_3_2_witness_has_indistinguishable_processors() {
        // The constructor asserts the neighborhood equalities internally.
        let (combined, w0, w1) = theorem_3_2_witness(&[0], &[1], 3);
        assert_eq!(combined.n(), 14);
        assert_ne!(combined.input(w0), combined.input(w1));
    }

    #[test]
    fn theorem_3_3_rings_are_indistinguishable_at_every_radius() {
        let (a, b) = theorem_3_3_witness(5, 8);
        for k in 0..10 {
            assert_eq!(neighborhood(&a, 0, k), neighborhood(&b, 0, k), "k={k}");
        }
    }

    #[test]
    fn theorem_3_5_mirror_pairs_are_indistinguishable() {
        for half in [2usize, 3, 5] {
            let config = theorem_3_5_witness(half);
            let n = 2 * half;
            for i in 0..n {
                let j = n - 1 - i;
                for k in 0..n {
                    assert_eq!(
                        neighborhood(&config, i, k),
                        neighborhood(&config, j, k),
                        "half={half} i={i} k={k}"
                    );
                }
                // ...yet their orientations differ (for i != j):
                if i != j {
                    assert_ne!(
                        config.topology().orientation(i),
                        config.topology().orientation(j)
                    );
                }
            }
        }
    }
}
