//! Observational identity of the ring through the `Topology` trait.
//!
//! After the port-topology refactor the ring is *one instance* of
//! [`Topology`], and nothing in either engine may special-case it. This
//! suite proves it behaviorally: the same ring wiring re-expressed as a
//! [`GraphTopology`] (via explicit port assignments, so the orientation-
//! induced port labelling is reproduced exactly) must be
//! **indistinguishable** from [`RingTopology`] — identical outputs,
//! message totals, bit totals, and the full causal event stream (send
//! sequence numbers, Lamport stamps, causal parents, spans) — for every
//! audited ring algorithm, under both the synchronous and the
//! asynchronous engine, across ring sizes and schedulers.

use anonring_core::algorithms::async_input_dist::AsyncInputDist;
use anonring_core::algorithms::orientation::OrientationProc;
use anonring_core::algorithms::start_sync::StartSync;
use anonring_core::algorithms::sync_and::SyncAnd;
use anonring_core::algorithms::sync_input_dist::SyncInputDist;
use anonring_sim::r#async::{
    AsyncEngine, AsyncPortProcess, RandomScheduler, SynchronizingScheduler,
};
use anonring_sim::runtime::TraceEvent;
use anonring_sim::sync::{SyncEngine, SyncProcess};
use anonring_sim::synchronizer::Synchronized;
use anonring_sim::{GraphTopology, Port, PortId, RingTopology, Topology, WakeSchedule};
use proptest::prelude::*;

const SIZES: [usize; 4] = [3, 4, 8, 16];

/// Re-expresses `ring` as a port-identical [`GraphTopology`]: channel `k`
/// joins processors `k` and `k + 1 (mod n)`, and each endpoint keeps the
/// exact port its orientation gives it on the ring.
fn ring_as_graph(ring: &RingTopology) -> GraphTopology {
    let n = ring.n();
    let port_facing = |i: usize, channel: usize| -> u16 {
        for port in [Port::Left, Port::Right] {
            if ring.port_channel(i, port) == channel {
                return PortId::from(port).index() as u16;
            }
        }
        unreachable!("every channel touches two ports");
    };
    let edges: Vec<((usize, u16), (usize, u16))> = (0..n)
        .map(|k| {
            let (a, b) = (k, (k + 1) % n);
            ((a, port_facing(a, k)), (b, port_facing(b, k)))
        })
        .collect();
    GraphTopology::from_port_edges(n, &edges).expect("rings are loop-free and gap-free")
}

/// One run's complete observable footprint.
#[derive(Debug, PartialEq)]
struct Footprint<O> {
    outcome: Result<(Vec<O>, u64, u64), String>,
    events: Vec<TraceEvent>,
}

fn run_async<P, T>(topology: T, procs: Vec<P>, seed: Option<u64>) -> Footprint<P::Output>
where
    P: AsyncPortProcess,
    P::Output: Clone,
    T: Topology,
{
    let mut events = Vec::new();
    let outcome = AsyncEngine::new(topology, procs)
        .map_err(|e| e.to_string())
        .and_then(|mut engine| {
            let mut obs = |e: &TraceEvent| events.push(*e);
            let result = match seed {
                None => engine.run_with_observer(&mut SynchronizingScheduler, &mut obs),
                Some(s) => engine.run_with_observer(&mut RandomScheduler::new(s), &mut obs),
            };
            result
                .map(|r| (r.outputs().to_vec(), r.messages, r.bits))
                .map_err(|e| e.to_string())
        });
    Footprint { outcome, events }
}

fn run_sync<P, T>(topology: T, procs: Vec<P>, wake: Option<&WakeSchedule>) -> Footprint<P::Output>
where
    P: SyncProcess,
    P::Output: Clone,
    T: Topology,
{
    let mut events = Vec::new();
    let outcome = SyncEngine::new(topology, procs)
        .map_err(|e| e.to_string())
        .and_then(|mut engine| {
            engine.set_max_cycles(20_000);
            if let Some(w) = wake {
                engine
                    .set_wakeups(w.as_slice().to_vec())
                    .map_err(|e| e.to_string())?;
            }
            let mut obs = |e: &TraceEvent| events.push(*e);
            engine
                .run_with_observer(&mut obs)
                .map(|r| (r.outputs().to_vec(), r.messages, r.bits))
                .map_err(|e| e.to_string())
        });
    Footprint { outcome, events }
}

/// The wiring itself must agree port for port before any engine runs.
fn assert_wiring_identical(ring: &RingTopology, graph: &GraphTopology) {
    assert_eq!(Topology::n(ring), graph.n());
    for i in 0..graph.n() {
        assert_eq!(Topology::ports(ring, i), graph.ports(i));
        for p in 0..2u16 {
            let port = PortId::new(p);
            assert_eq!(
                ring.neighbor_port(i, port),
                graph.neighbor_port(i, port),
                "processor {i} port {p}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// §4.1 asynchronous input distribution on arbitrarily scrambled
    /// rings: identical traces on the two wiring descriptions, under the
    /// synchronizing adversary and a random scheduler.
    #[test]
    fn async_input_dist_is_wiring_representation_independent(
        bits in proptest::collection::vec(0u8..=1, 8),
        inputs in proptest::collection::vec(any::<u8>(), 8),
        seed in any::<u64>(),
    ) {
        let ring = RingTopology::from_bits(&bits).expect("n = 8");
        let graph = ring_as_graph(&ring);
        assert_wiring_identical(&ring, &graph);
        let procs = |n: usize| -> Vec<AsyncInputDist<u8>> {
            inputs.iter().map(|&v| AsyncInputDist::new(n, v)).collect()
        };
        for scheduler in [None, Some(seed)] {
            let on_ring = run_async(ring.clone(), procs(8), scheduler);
            let on_graph = run_async(graph.clone(), procs(8), scheduler);
            prop_assert_eq!(&on_ring.outcome, &on_graph.outcome);
            prop_assert_eq!(&on_ring.events, &on_graph.events);
        }
    }

    /// The four synchronous algorithms in their audited configurations
    /// (oriented ring; scrambled for orientation, whose whole point it
    /// is), at every tested size, under **both engines**: the synchronous
    /// engine natively and the asynchronous engine through the
    /// α-synchronizer — exactly the two substrates the audit and the job
    /// driver use.
    #[test]
    fn sync_algorithms_are_wiring_representation_independent(
        seed in any::<u64>(),
    ) {
        for n in SIZES {
            let oriented = RingTopology::oriented(n).expect("n >= 3");
            let mut bits = vec![1u8; n];
            bits[seed as usize % n] = 0;
            let scrambled = RingTopology::from_bits(&bits).expect("n >= 3");
            for ring in [&oriented, &scrambled] {
                assert_wiring_identical(ring, &ring_as_graph(ring));
            }
            let graph = ring_as_graph(&oriented);
            let scrambled_graph = ring_as_graph(&scrambled);
            let input = |i: usize| (i % 2) as u8;
            let wake = WakeSchedule::random(n, seed);

            // orientation (the scrambled ring is its natural habitat).
            let orient = |_: usize| OrientationProc::new(n);
            prop_assert_eq!(
                run_sync(scrambled.clone(), (0..n).map(orient).collect(), None),
                run_sync(scrambled_graph.clone(), (0..n).map(orient).collect(), None),
                "orientation/sync n={}", n
            );
            prop_assert_eq!(
                run_async(scrambled.clone(), (0..n).map(|_| Synchronized::new(OrientationProc::new(n))).collect(), None),
                run_async(scrambled_graph.clone(), (0..n).map(|_| Synchronized::new(OrientationProc::new(n))).collect(), None),
                "orientation/synchronized n={}", n
            );

            // sync_input_dist.
            prop_assert_eq!(
                run_sync(oriented.clone(), (0..n).map(|i| SyncInputDist::new(n, input(i))).collect(), None),
                run_sync(graph.clone(), (0..n).map(|i| SyncInputDist::new(n, input(i))).collect(), None),
                "sync_input_dist/sync n={}", n
            );
            prop_assert_eq!(
                run_async(oriented.clone(), (0..n).map(|i| Synchronized::new(SyncInputDist::new(n, input(i)))).collect(), None),
                run_async(graph.clone(), (0..n).map(|i| Synchronized::new(SyncInputDist::new(n, input(i)))).collect(), None),
                "sync_input_dist/synchronized n={}", n
            );

            // sync_and.
            prop_assert_eq!(
                run_sync(oriented.clone(), (0..n).map(|i| SyncAnd::new(n, input(i))).collect(), None),
                run_sync(graph.clone(), (0..n).map(|i| SyncAnd::new(n, input(i))).collect(), None),
                "sync_and/sync n={}", n
            );

            // start_sync, under a random wake schedule on the sync engine.
            prop_assert_eq!(
                run_sync(oriented.clone(), (0..n).map(|_| StartSync::new(n)).collect(), Some(&wake)),
                run_sync(graph.clone(), (0..n).map(|_| StartSync::new(n)).collect(), Some(&wake)),
                "start_sync/sync n={}", n
            );
            prop_assert_eq!(
                run_async(oriented.clone(), (0..n).map(|_| Synchronized::new(StartSync::new(n))).collect(), None),
                run_async(graph.clone(), (0..n).map(|_| Synchronized::new(StartSync::new(n))).collect(), None),
                "start_sync/synchronized n={}", n
            );
        }
    }
}

/// Deterministic spot check at every size for the natively asynchronous
/// algorithm (kept outside the proptest loop so all four sizes always
/// run, not only the sampled cases) — on the oriented ring, where §4.1's
/// exact `n(n−1)` count also pins the totals to the paper.
#[test]
fn async_input_dist_identity_at_every_size() {
    for n in SIZES {
        let ring = RingTopology::oriented(n).expect("n >= 3");
        let graph = ring_as_graph(&ring);
        assert_wiring_identical(&ring, &graph);
        let inputs: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 7) as u8).collect();
        let procs = || -> Vec<AsyncInputDist<u8>> {
            inputs.iter().map(|&v| AsyncInputDist::new(n, v)).collect()
        };
        let on_ring = run_async(ring.clone(), procs(), None);
        let on_graph = run_async(graph, procs(), None);
        assert_eq!(on_ring, on_graph, "n={n}");
        let (_, messages, _) = on_ring.outcome.expect("distribution completes");
        assert_eq!(messages, (n * (n - 1)) as u64, "§4.1 exact count, n={n}");
    }
}
