//! Per-phase message budgets for Fig. 2 (synchronous input
//! distribution), measured through the telemetry span profile.
//!
//! The paper's `n(3·log₁.₅ n + 1) + n` total decomposes per elimination
//! round: the label exchange costs at most `2n + 2` messages (each label
//! travels to the nearest active neighbour on each side, our rounds
//! lasting `n + 1` cycles — DESIGN.md), the collection sweep at most
//! `n + 1`, and the final broadcast is exactly `n`. Rounds number at most
//! `log₁.₅ n + 2` because each elimination retires at least a third of
//! the candidates. The telemetry spans let us check the *decomposition*,
//! not just the total.

use std::collections::BTreeMap;

use anonring_core::algorithms::sync_input_dist::SyncInputDist;
use anonring_sim::sync::SyncEngine;
use anonring_sim::telemetry::Telemetry;
use anonring_sim::RingConfig;

fn workloads(n: usize) -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("all equal", vec![1u8; n]),
        ("periodic 01", (0..n).map(|i| (i % 2) as u8).collect()),
        ("single one", (0..n).map(|i| u8::from(i == 0)).collect()),
        (
            "mixed",
            (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect(),
        ),
    ]
}

#[test]
fn fig2_phase_budgets_hold() {
    for n in [8usize, 16, 32] {
        for (label, inputs) in workloads(n) {
            let config = RingConfig::oriented(inputs);
            let mut telemetry = Telemetry::new(n);
            let mut engine =
                SyncEngine::from_config(&config, |_, &input| SyncInputDist::new(n, input));
            let report = engine.run_with_observer(&mut telemetry).unwrap();

            // Every send is annotated: the spans partition the meter total.
            let spanned: u64 = telemetry
                .phase_profile()
                .iter()
                .map(|(_, s)| s.messages)
                .sum();
            assert_eq!(telemetry.unspanned().messages, 0, "n={n} {label}");
            assert_eq!(spanned, report.messages, "n={n} {label}");

            // Per-(phase, round) budgets.
            let mut rounds: BTreeMap<u64, ()> = BTreeMap::new();
            let nn = n as u64;
            for (span, stats) in telemetry.phase_profile() {
                match span.phase {
                    "labels" => {
                        rounds.insert(span.round, ());
                        assert!(
                            stats.messages <= 2 * nn + 2,
                            "n={n} {label}: labels round {} cost {} > 2n+2",
                            span.round,
                            stats.messages
                        );
                    }
                    "collect" => {
                        assert!(
                            stats.messages <= nn + 1,
                            "n={n} {label}: collect round {} cost {} > n+1",
                            span.round,
                            stats.messages
                        );
                    }
                    "broadcast" => {
                        assert_eq!(
                            stats.messages, nn,
                            "n={n} {label}: broadcast must be exactly n messages"
                        );
                    }
                    other => panic!("unexpected phase {other:?}"),
                }
            }

            // Round count: each elimination retires ≥ 1/3 of candidates.
            let max_rounds = (nn as f64).log(1.5).ceil() as u64 + 2;
            assert!(
                rounds.len() as u64 <= max_rounds,
                "n={n} {label}: {} rounds > {max_rounds}",
                rounds.len()
            );
        }
    }
}
