//! Exhaustive-interleaving certification of the §4 algorithms at small
//! `n` (ISSUE 3 acceptance): `sim::explore` enumerates delivery schedules
//! and certifies that outputs and metered message counts are schedule
//! independent.
//!
//! The pinned execution counts are regression anchors for the explorer
//! itself: a change in the sleep-set reduction or the engine's candidate
//! enumeration shows up here as a count shift long before it corrupts a
//! certification.

use anonring_core::algorithms::async_input_dist::AsyncInputDist;
use anonring_core::algorithms::sync_and::SyncAnd;
use anonring_core::view::ground_truth_view;
use anonring_sim::explore::Explorer;
use anonring_sim::r#async::AsyncEngine;
use anonring_sim::synchronizer::Synchronized;
use anonring_sim::RingConfig;

fn dist_engine(inputs: &[u8]) -> AsyncEngine<AsyncInputDist<u8>> {
    let config = RingConfig::oriented(inputs.to_vec());
    let n = config.n();
    AsyncEngine::from_config(&config, |_, input| AsyncInputDist::new(n, *input))
}

fn and_engine(inputs: &[u8]) -> AsyncEngine<Synchronized<SyncAnd>> {
    let config = RingConfig::oriented(inputs.to_vec());
    let n = config.n();
    AsyncEngine::from_config(&config, |_, &input| {
        Synchronized::new(SyncAnd::new(n, input))
    })
}

#[test]
fn async_input_dist_certifies_at_n3_and_n4() {
    // With every processor forwarding a two-stream merge, the reduced
    // class count is exactly the per-receiver interleavings of the two
    // inbound FIFO streams: 2^3 at n = 3, 3^4 at n = 4.
    for (inputs, classes) in [(&[3u8, 7, 9][..], 8), (&[1u8, 2, 3, 4][..], 81)] {
        let n = inputs.len();
        let cert = Explorer::new()
            .explore(|| dist_engine(inputs))
            .expect("input distribution is schedule independent");
        let config = RingConfig::oriented(inputs.to_vec());
        let want: Vec<_> = (0..n).map(|i| ground_truth_view(&config, i)).collect();
        assert_eq!(cert.fingerprint.outputs, want, "n={n}");
        assert_eq!(cert.fingerprint.messages, (n * (n - 1)) as u64, "n={n}");
        assert_eq!(cert.executions, classes, "n={n}");
    }
}

#[test]
fn async_input_dist_full_enumeration_count_at_n3() {
    // Unreduced: 6 messages across 6 distinct directed links, so every
    // delivery permutation is legal — 6! = 720 interleavings, all with
    // the same fingerprint.
    let inputs = [3u8, 7, 9];
    let full = Explorer::new()
        .reduction(false)
        .explore(|| dist_engine(&inputs))
        .expect("certifies");
    assert_eq!(full.executions, 720);

    let reduced = Explorer::new()
        .explore(|| dist_engine(&inputs))
        .expect("certifies");
    assert_eq!(reduced.fingerprint, full.fingerprint);
    assert!(reduced.executions <= full.executions);
}

#[test]
fn sync_and_under_the_synchronizer_certifies_at_n3_and_n4() {
    // SyncAnd runs on the async ring through the §3 synchronizer, so the
    // certificate covers the envelope traffic too. The all-ones ring is
    // the slow case (no zero to flood): full ⌊n/2⌋ cycles of envelopes.
    // At n = 4 all-ones explodes to ~83k classes, so the n = 4 row uses
    // an early-halting input containing a zero.
    for (inputs, classes, messages) in [
        (&[1u8, 0, 1][..], 48, 10),
        (&[1u8, 1, 1][..], 196, 12),
        (&[1u8, 0, 1, 1][..], 288, 16),
    ] {
        let n = inputs.len();
        let cert = Explorer::new()
            .explore(|| and_engine(inputs))
            .expect("synchronized AND is schedule independent");
        let want = inputs.iter().fold(1, |a, b| a & b);
        assert!(
            cert.fingerprint.outputs.iter().all(|&o| o == want),
            "n={n}: outputs {:?}",
            cert.fingerprint.outputs
        );
        assert_eq!(cert.fingerprint.messages, messages, "n={n}");
        assert_eq!(cert.executions, classes, "n={n} inputs={inputs:?}");
    }
}
