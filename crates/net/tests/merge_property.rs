//! Property coverage for the cross-shard merge (S27, ISSUE 10
//! satellite 3): splitting a real single-process recording of any
//! audited algorithm at *any* contiguous shard boundaries and merging
//! the shards back must reproduce the canonical recording byte for byte
//! — the merge result depends only on the computation, never on how it
//! was sharded (the per-shard `"shard"` meta field being the only thing
//! the split added). Incomplete shard sets must fail with a verdict
//! naming the absent shard.

use anonring_core::algorithms::driver::Audited;
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use anonring_sim::telemetry::{merge, FlightRecorder, MergeError, Recording};
use proptest::prelude::*;

/// The ring sizes the property sweeps (per the issue: 4, 8, 16).
const SIZES: [usize; 3] = [4, 8, 16];

/// The audit harness's deterministic mixed input pattern.
fn inputs_for(algorithm: Audited, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let mixed = (i * 2654435761) >> 7;
            if algorithm.wants_bit_inputs() {
                (mixed & 1) as u8
            } else {
                (mixed & 0xff) as u8
            }
        })
        .collect()
}

/// One deterministic single-process recording: the algorithm run under
/// the async simulator with a flight recorder attached.
fn record(algorithm: Audited, n: usize) -> Recording {
    let inputs = inputs_for(algorithm, n);
    let topology = algorithm.topology(n, &inputs).expect("valid job");
    let mut engine = AsyncEngine::new(topology, algorithm.procs(n, &inputs).expect("valid job"))
        .expect("sizes match");
    let mut recorder = FlightRecorder::new(n, format!("prop {algorithm} n={n}")).with_engine("sim");
    engine
        .run_with_observer(&mut SynchronizingScheduler, &mut recorder)
        .expect("audited algorithms terminate");
    recorder.into_recording()
}

/// Derives `shards` contiguous shard starts for a ring of `n` from a
/// random seed: distinct cut points drawn without replacement.
fn starts_from_seed(seed: u64, n: usize, shards: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = (1..n).collect();
    let mut state = seed | 1;
    // Partial Fisher–Yates: the first `shards - 1` entries become the cuts.
    for i in 0..shards - 1 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = i + (state >> 33) as usize % (cuts.len() - i);
        cuts.swap(i, j);
    }
    let mut starts: Vec<usize> = std::iter::once(0)
        .chain(cuts[..shards - 1].iter().copied())
        .collect();
    starts.sort_unstable();
    starts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every audited algorithm, every tested ring size and random
    /// 2–4-way contiguous shardings: `merge(split(r))` is byte-identical
    /// to the canonical recording — independent of the sharding — and
    /// each split shard carries the shard meta the merge then strips.
    #[test]
    fn split_then_merge_is_sharding_independent(seed in any::<u64>(), shards in 2usize..=4) {
        for algorithm in Audited::ALL {
            for n in SIZES {
                let shards = shards.min(n);
                let recording = record(algorithm, n);
                let canonical = merge::canonicalize(&recording)
                    .expect("single-process recordings canonicalize");
                prop_assert!(canonical.shard.is_none());

                let starts = starts_from_seed(seed, n, shards);
                let pieces = merge::split(&recording, &starts)
                    .unwrap_or_else(|e| panic!("{algorithm} n={n} split at {starts:?}: {e}"));
                for (k, piece) in pieces.iter().enumerate() {
                    prop_assert_eq!(piece.shard, Some((k as u64, shards as u64)));
                    prop_assert_eq!(piece.n, n);
                }

                let merged = merge::merge(&pieces)
                    .unwrap_or_else(|e| panic!("{algorithm} n={n} merge of {starts:?}: {e}"));
                prop_assert_eq!(
                    merged.to_jsonl(),
                    canonical.to_jsonl(),
                    "sharding {:?} leaked into the merge of {} n={}",
                    starts,
                    algorithm,
                    n
                );
                // The merged bytes re-parse under the strict v2 causal
                // check (S21 invariants).
                Recording::parse_jsonl(&merged.to_jsonl())
                    .unwrap_or_else(|e| panic!("{algorithm} n={n}: merged bytes fail causal check: {e}"));
            }
        }
    }

    /// Withholding any one shard from the merge fails with the verdict
    /// naming exactly the absent shard.
    #[test]
    fn a_withheld_shard_is_named(seed in any::<u64>(), shards in 2usize..=4, victim in 0usize..4) {
        let algorithm = Audited::SyncInputDist;
        let n = 8;
        let recording = record(algorithm, n);
        let starts = starts_from_seed(seed, n, shards);
        let mut pieces = merge::split(&recording, &starts).expect("valid split");
        let victim = victim % pieces.len();
        pieces.remove(victim);
        let err = merge::merge(&pieces).expect_err("a shard is missing");
        prop_assert_eq!(
            err.clone(),
            MergeError::MissingShard {
                shard: victim as u64,
                shards: shards as u64,
            }
        );
        let needle = format!("shard {victim}");
        prop_assert!(err.to_string().contains(&needle));
    }
}
