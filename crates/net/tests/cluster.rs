//! The cluster conformance gate (S27): every audited algorithm, split
//! across a loopback cluster of `ringd`-style shard drivers, must merge
//! into one canonical recording and agree with the asynchronous
//! simulator on outputs, total messages and total bits — and broken
//! clusters (absent shards, mismatched manifests) must fail with
//! structured verdicts instead of hanging.

use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use anonring_core::algorithms::driver::Audited;
use anonring_net::cluster::run_shard;
use anonring_net::{certify_cluster, ClusterError, ClusterManifest, ShardSpec, MANIFEST_VERSION};
use anonring_sim::telemetry::{merge, MergeError};

/// Deterministic mixed inputs, mirroring the single-process conformance
/// suite: a bit pattern for the bit-input algorithms, a byte spread for
/// the §4.1 distribution.
fn inputs_for(algorithm: Audited, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let mixed = (i * 2654435761) >> 7;
            if algorithm.wants_bit_inputs() {
                (mixed & 1) as u8
            } else {
                (mixed & 0xff) as u8
            }
        })
        .collect()
}

/// Reserves `count` distinct loopback ports by binding and dropping
/// listeners. The tiny window between drop and the shard's own bind is
/// the standard test-harness race; SO_REUSEADDR-free rebinding on Linux
/// makes it reliable in practice.
fn free_addrs(count: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Splits `0..n` into `shards` contiguous blocks, as even as possible.
fn manifest_for(algorithm: Audited, n: usize, shards: usize, seed: u64) -> ClusterManifest {
    let addrs = free_addrs(shards);
    let base = n / shards;
    let extra = n % shards;
    let mut start = 0usize;
    let specs = (0..shards)
        .map(|k| {
            let count = base + usize::from(k < extra);
            let spec = ShardSpec {
                id: k as u64,
                addr: addrs[k].clone(),
                start,
                count,
            };
            start += count;
            spec
        })
        .collect();
    ClusterManifest {
        version: MANIFEST_VERSION,
        label: "itest".to_string(),
        algorithm: algorithm.name().to_string(),
        n,
        inputs: inputs_for(algorithm, n),
        seed,
        capacity: 4,
        max_delay_us: 0,
        timeout_ms: 30_000,
        shards: specs,
    }
}

/// Runs every shard of `manifest` in its own thread (one thread per
/// `ringd` process in the real deployment) and returns the reports in
/// shard order.
fn run_cluster(manifest: &ClusterManifest) -> Vec<anonring_net::ShardReport> {
    thread::scope(|scope| {
        let handles: Vec<_> = (0..manifest.shards.len() as u64)
            .map(|k| scope.spawn(move || run_shard(manifest, k)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread").expect("shard run"))
            .collect()
    })
}

/// The tentpole gate: a 3-shard loopback cluster of every audited
/// algorithm merges into one causally-valid recording whose outputs,
/// message total and bit total equal the async simulator's.
#[test]
fn three_shard_cluster_certifies_every_audited_algorithm() {
    for algorithm in Audited::ALL {
        let manifest = manifest_for(algorithm, 6, 3, 11);
        let reports = run_cluster(&manifest);
        let certified = certify_cluster(&manifest, &reports)
            .unwrap_or_else(|e| panic!("{algorithm} n=6 shards=3: {e}"));
        assert_eq!(certified.outputs.len(), 6, "{algorithm}");
        assert!(
            certified.merged.shard.is_none(),
            "merged recording is canonical (no shard meta)"
        );
        // Every shard produced a sharded recording of the full ring.
        for (k, report) in reports.iter().enumerate() {
            assert_eq!(report.shard, k as u64);
            assert_eq!(report.recording.shard, Some((k as u64, 3)));
            assert_eq!(report.recording.n, 6);
        }
    }
}

/// Uneven shard maps (1+2+3 processors) are just another contiguous
/// tiling; the merge and the certification do not care.
#[test]
fn uneven_shards_certify() {
    let algorithm = Audited::AsyncInputDist;
    let addrs = free_addrs(3);
    let manifest = ClusterManifest {
        version: MANIFEST_VERSION,
        label: "uneven".to_string(),
        algorithm: algorithm.name().to_string(),
        n: 6,
        inputs: inputs_for(algorithm, 6),
        seed: 5,
        capacity: 2,
        max_delay_us: 0,
        timeout_ms: 30_000,
        shards: vec![
            ShardSpec {
                id: 0,
                addr: addrs[0].clone(),
                start: 0,
                count: 1,
            },
            ShardSpec {
                id: 1,
                addr: addrs[1].clone(),
                start: 1,
                count: 2,
            },
            ShardSpec {
                id: 2,
                addr: addrs[2].clone(),
                start: 3,
                count: 3,
            },
        ],
    };
    let reports = run_cluster(&manifest);
    certify_cluster(&manifest, &reports).expect("uneven cluster certifies");
}

/// Dropping one shard's recording from the merge yields the
/// missing-shard verdict naming exactly the absent shard.
#[test]
fn merge_without_one_shard_names_it() {
    let manifest = manifest_for(Audited::SyncAnd, 6, 3, 7);
    let reports = run_cluster(&manifest);
    let partial = [reports[0].recording.clone(), reports[2].recording.clone()];
    let err = merge::merge(&partial).expect_err("shard 1 is missing");
    assert_eq!(
        err,
        MergeError::MissingShard {
            shard: 1,
            shards: 3
        },
        "the verdict names the absent shard"
    );
    assert!(err.to_string().contains("shard 1"), "{err}");
}

/// Two processes reading different manifests refuse each other at the
/// handshake — a structured digest-mismatch error naming both digests on
/// the accepting side, a rejection carrying that line on the dialing
/// side — and both return well before any run deadline.
#[test]
fn manifest_digest_mismatch_is_rejected_without_hang() {
    let algorithm = Audited::SyncAnd;
    let mut ours = manifest_for(algorithm, 4, 2, 1);
    ours.timeout_ms = 8_000;
    // The peer read a manifest that differs in one field: different
    // canonical bytes, different digest, same wiring.
    let mut theirs = ours.clone();
    theirs.seed = 2;
    assert_ne!(ours.digest(), theirs.digest());

    let started = Instant::now();
    let (ours_err, theirs_err) = thread::scope(|scope| {
        let a = scope.spawn(|| run_shard(&ours, 0).expect_err("digests differ"));
        let b = scope.spawn(|| run_shard(&theirs, 1).expect_err("digests differ"));
        (a.join().expect("shard 0"), b.join().expect("shard 1"))
    });
    assert!(
        started.elapsed() < Duration::from_secs(6),
        "the mismatch must fail fast, not ride the deadline"
    );
    // Whichever rejection lands first carries the structured mismatch —
    // as the acceptor's own `ManifestDigestMismatch` or as the dialer's
    // `Rejected` wrapping the acceptor's rendered line — and it names
    // both digests. The slower side may only see the fast side's
    // teardown (a reset), which is fine: the requirement is a structured
    // verdict somewhere and no hang anywhere.
    let renders = [ours_err.to_string(), theirs_err.to_string()];
    let mismatch = renders
        .iter()
        .find(|r| r.contains("manifest digest mismatch"))
        .unwrap_or_else(|| panic!("no digest verdict in {renders:?}"));
    assert!(
        mismatch.contains(&format!("{:#018x}", ours.digest()))
            && mismatch.contains(&format!("{:#018x}", theirs.digest())),
        "both digests are named: {mismatch}"
    );
}

/// Asking a shard driver for a shard the manifest does not define is a
/// structured error, not a panic.
#[test]
fn unknown_shard_is_named() {
    let manifest = manifest_for(Audited::StartSync, 4, 2, 3);
    let err = run_shard(&manifest, 9).expect_err("shard 9 does not exist");
    assert_eq!(err, ClusterError::UnknownShard { shard: 9 });
}
