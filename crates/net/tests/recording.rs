//! Net runs feed the unchanged telemetry pipeline: flight recordings of
//! real-transport executions parse (including the causal-order check the
//! parser runs on untruncated v2 streams), rebuild into causal DAGs, and
//! carry the `"net"` engine stamp end to end.

use anonring_core::algorithms::driver::Audited;
use anonring_net::{run_threads, NetOptions};
use anonring_sim::telemetry::{CausalDag, FlightRecorder, PathWeight, Recording, Telemetry};

#[test]
fn net_recordings_parse_and_rebuild_into_causal_dags() {
    for algorithm in Audited::ALL {
        let n = 5;
        let inputs: Vec<u8> = (0..n).map(|i| ((i * 2654435761) >> 7 & 1) as u8).collect();
        let topology = algorithm.topology(n, &inputs).expect("valid");
        let report = run_threads(
            &topology,
            algorithm.procs(n, &inputs).expect("valid"),
            &NetOptions {
                jitter_seed: 11,
                ..NetOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{algorithm}: {e}"));

        let mut recorder =
            FlightRecorder::new(n, format!("net {algorithm} n={n}")).with_engine("net");
        report.replay(&mut recorder);
        let jsonl = recorder.to_jsonl();

        // The parser's causal check runs on untruncated v2 recordings:
        // seqs in file order, parents before children, sends before
        // deliveries. A hub ordering bug would fail right here.
        let recording = Recording::parse_jsonl(&jsonl)
            .unwrap_or_else(|e| panic!("{algorithm}: recording rejected: {e}"));
        assert_eq!(recording.engine, "net");
        assert_eq!(recording.events.len(), report.events().len());

        let dag = CausalDag::from_recording(&recording)
            .unwrap_or_else(|e| panic!("{algorithm}: causal DAG rejected: {e}"));
        let path = dag
            .critical_path(PathWeight::Hops)
            .unwrap_or_else(|| panic!("{algorithm}: a run with sends has a critical path"));
        assert!(path.hops >= 1);
    }
}

#[test]
fn net_runs_feed_the_metrics_registry_like_sim_runs() {
    let algorithm = Audited::AsyncInputDist;
    let n = 4;
    let inputs = vec![7u8, 1, 9, 200];
    let topology = algorithm.topology(n, &inputs).expect("valid");
    let report = run_threads(
        &topology,
        algorithm.procs(n, &inputs).expect("valid"),
        &NetOptions::default(),
    )
    .expect("runs");
    let mut telemetry = Telemetry::new(n);
    report.replay(&mut telemetry);
    assert_eq!(telemetry.messages(), (n * (n - 1)) as u64);
    assert_eq!(telemetry.messages(), report.messages);
    assert_eq!(telemetry.bits(), report.bits);
    assert_eq!(telemetry.deliveries(), report.deliveries);
}
