//! The conformance gate: every audited algorithm, on real threads (and
//! TCP loopback), must agree with the asynchronous simulator on outputs,
//! total messages and total bits — at every tested ring size and under
//! randomized delivery jitter.

use std::time::Duration;

use anonring_core::algorithms::driver::Audited;
use anonring_net::{certify, compare, run_threads, NetError, NetOptions, Transport};
use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
use proptest::prelude::*;

/// The ensemble sizes the conformance suite certifies.
const SIZES: [usize; 4] = [3, 4, 8, 16];

/// Deterministic mixed inputs: the audit harness's bit pattern for the
/// bit-input algorithms, a byte spread for the §4.1 distribution.
fn inputs_for(algorithm: Audited, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let mixed = (i * 2654435761) >> 7;
            if algorithm.wants_bit_inputs() {
                (mixed & 1) as u8
            } else {
                (mixed & 0xff) as u8
            }
        })
        .collect()
}

fn certify_job(algorithm: Audited, n: usize, options: &NetOptions) {
    let inputs = inputs_for(algorithm, n);
    let topology = algorithm
        .topology(n, &inputs)
        .expect("audit-shaped jobs are valid");
    certify(
        &topology,
        || algorithm.procs(n, &inputs).expect("valid job"),
        options,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{algorithm} n={n} seed={} capacity={}: {e}",
            options.jitter_seed, options.capacity
        )
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All six audited algorithms, at every tested size, under a random
    /// jitter seed and a random (small) link capacity: the net run's
    /// outputs, message total and bit total equal the simulator's.
    #[test]
    fn every_audited_algorithm_conforms_under_jitter(
        seed in any::<u64>(),
        capacity in 1usize..5,
    ) {
        for algorithm in Audited::ALL {
            for n in SIZES {
                certify_job(
                    algorithm,
                    n,
                    &NetOptions {
                        jitter_seed: seed,
                        capacity,
                        ..NetOptions::default()
                    },
                );
            }
        }
    }

    /// Micro-delays on deliveries reorder real time without touching the
    /// metered quantities.
    #[test]
    fn delivery_delays_do_not_change_metered_costs(seed in any::<u64>()) {
        for algorithm in Audited::ALL {
            certify_job(
                algorithm,
                4,
                &NetOptions {
                    jitter_seed: seed,
                    max_delay_us: 50,
                    ..NetOptions::default()
                },
            );
        }
    }
}

/// Capacity 1 is the tightest legal backpressure: every send blocks until
/// the previous one on that link is drained. The §4.1 distribution floods
/// `n(n−1)` messages through it; conformance must still hold.
#[test]
fn capacity_one_backpressure_conforms() {
    for algorithm in Audited::ALL {
        certify_job(
            algorithm,
            8,
            &NetOptions {
                capacity: 1,
                jitter_seed: 9,
                ..NetOptions::default()
            },
        );
    }
}

/// The TCP loopback transport certifies on every audited algorithm: the
/// wire codecs and reader threads are cost-invisible.
#[test]
fn tcp_loopback_transport_conforms() {
    for algorithm in Audited::ALL {
        certify_job(
            algorithm,
            4,
            &NetOptions {
                transport: Transport::TcpLoopback,
                jitter_seed: 3,
                ..NetOptions::default()
            },
        );
    }
}

/// Larger rings over real sockets, one algorithm per size to keep the
/// suite quick.
#[test]
fn tcp_loopback_scales_to_the_larger_sizes() {
    certify_job(
        Audited::AsyncInputDist,
        8,
        &NetOptions {
            transport: Transport::TcpLoopback,
            ..NetOptions::default()
        },
    );
    certify_job(
        Audited::SyncAnd,
        16,
        &NetOptions {
            transport: Transport::TcpLoopback,
            ..NetOptions::default()
        },
    );
}

/// `compare` rejects runs whose schedule-independent quantities differ:
/// pit two *different* jobs against each other.
#[test]
fn compare_flags_genuine_disagreement() {
    let algorithm = Audited::SyncAnd;
    let ones = [1u8, 1, 1];
    let mixed = [1u8, 0, 1];
    let topology = algorithm.topology(3, &ones).expect("valid");
    let net = run_threads(
        &topology,
        algorithm.procs(3, &ones).expect("valid"),
        &NetOptions::default(),
    )
    .expect("net run");
    let mut engine = AsyncEngine::new(topology.clone(), algorithm.procs(3, &mixed).expect("valid"))
        .expect("sizes match");
    let sim = engine.run(&mut SynchronizingScheduler).expect("sim run");
    let verdict = compare(&net, &sim);
    assert!(verdict.is_err(), "AND of 1,1,1 differs from AND of 1,0,1");
}

/// A stuck ring (processors that never halt, links drained) reproduces
/// the simulator's quiescent-without-halt verdict instead of hanging.
#[test]
fn quiescence_without_halt_is_detected() {
    use anonring_sim::r#async::{Actions, AsyncProcess, Emit};
    use anonring_sim::{Port, RingTopology};

    /// Sends one token right, consumes everything, never halts.
    #[derive(Debug)]
    struct Mute;
    impl AsyncProcess for Mute {
        type Msg = u8;
        type Output = u8;
        fn on_start(&mut self) -> Actions<u8, u8> {
            Actions::send(Port::Right, 1)
        }
        fn on_message(&mut self, _from: Port, _msg: u8) -> Actions<u8, u8> {
            Actions::idle()
        }
    }

    let topology = RingTopology::oriented(3).expect("n >= 2");
    let err = run_threads(
        &topology,
        vec![Mute, Mute, Mute],
        &NetOptions {
            timeout: Duration::from_secs(5),
            ..NetOptions::default()
        },
    )
    .expect_err("no processor halts");
    assert_eq!(err, NetError::QuiescentWithoutHalt { running: 3 });
}

/// A livelocked ring hits the wall-clock deadline and reports a timeout
/// with the configured budget.
#[test]
fn livelock_hits_the_deadline() {
    use anonring_sim::r#async::{Actions, AsyncProcess, Emit};
    use anonring_sim::{Port, RingTopology};

    /// Forwards the token forever.
    #[derive(Debug)]
    struct Forever;
    impl AsyncProcess for Forever {
        type Msg = u8;
        type Output = u8;
        fn on_start(&mut self) -> Actions<u8, u8> {
            Actions::send(Port::Right, 1)
        }
        fn on_message(&mut self, _from: Port, msg: u8) -> Actions<u8, u8> {
            Actions::send(Port::Right, msg)
        }
    }

    let topology = RingTopology::oriented(2).expect("n >= 2");
    let err = run_threads(
        &topology,
        vec![Forever, Forever],
        &NetOptions {
            timeout: Duration::from_millis(200),
            ..NetOptions::default()
        },
    )
    .expect_err("the token never stops");
    assert!(
        matches!(
            err,
            NetError::Timeout {
                timeout_ms: 200,
                ..
            }
        ),
        "{err:?}"
    );
}

/// A process vector of the wrong length is rejected up front.
#[test]
fn length_mismatch_is_rejected() {
    use anonring_sim::RingTopology;
    let topology = RingTopology::oriented(3).expect("n >= 2");
    let procs = Audited::SyncAnd.procs(2, &[1, 1]).expect("valid");
    let err =
        run_threads(&topology, procs, &NetOptions::default()).expect_err("2 procs, ring of 3");
    assert_eq!(
        err,
        NetError::LengthMismatch {
            expected: 3,
            actual: 2
        }
    );
}
