//! TCP-loopback transport: each directed link is a real socket.
//!
//! The worker loop is identical to the threads transport; only the link
//! realisation changes. For every directed link the runtime opens one
//! loopback TCP connection: the sender's end implements
//! [`SendPort`] by writing length-prefixed frames, and a dedicated reader
//! thread on the receiver's side decodes frames and feeds them into the
//! receiver's ordinary bounded inbox. TCP preserves byte order, so
//! per-link FIFO — the model's one ordering guarantee — carries over, and
//! everything above the inbox (metering, causal stamps, termination) is
//! unchanged.
//!
//! Frame layout: `[u32 LE length][u64 time][u64 seq][u64 lamport]`
//! `[Option<u64> parent][payload]`, all fields in [`Wire`] encoding. The
//! frame length covers everything after the length word. Wire size is
//! framing, not cost: accounted bits come from `Message::bit_len` at the
//! metering hub, exactly as in the simulators.
//!
//! Backpressure crosses the socket: a full receiver inbox parks the
//! reader thread, the kernel's socket buffers fill, and the sender's
//! `write_all` eventually blocks. Unlike the in-process transport the
//! blocked sender only drains its own inbox between *frames*, so a
//! mutually-blocked cycle needs every kernel buffer on the cycle full —
//! dozens of kilobytes per link, far beyond any audited workload. The
//! run's wall-clock deadline remains the backstop.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use anonring_sim::r#async::AsyncPortProcess;
use anonring_sim::runtime::CausalStamp;
use anonring_sim::{PortId, Topology};

use crate::hub::ShardHub;
use crate::inbox::{Inbox, Parcel, PushOutcome};
use crate::jitter::Jitter;
use crate::runtime::{finish, worker, NetError, NetOptions, NetReport, PushError, SendPort};
use crate::wire::Wire;

/// How long a parked reader waits before re-checking for shutdown.
pub(crate) const READ_POLL: Duration = Duration::from_millis(50);

/// The sending end of one TCP link.
pub(crate) struct TcpPort<M> {
    stream: TcpStream,
    frame: Vec<u8>,
    _msg: std::marker::PhantomData<fn(M)>,
}

impl<M> TcpPort<M> {
    /// Wraps an established (nodelay) writer stream; the cluster dialer
    /// builds its cross-shard send ports through this.
    pub(crate) fn over(stream: TcpStream) -> TcpPort<M> {
        TcpPort {
            stream,
            frame: Vec::new(),
            _msg: std::marker::PhantomData,
        }
    }
}

impl<M: Wire> SendPort<M> for TcpPort<M> {
    fn push(
        &mut self,
        parcel: Parcel<M>,
        relieve: &mut dyn FnMut(),
        over: &dyn Fn() -> bool,
    ) -> Result<(), PushError> {
        // Draining our own inbox before a potentially-blocking write keeps
        // the deadlock-breaking discipline of the in-process transport.
        relieve();
        let frame_capacity = self.frame.capacity();
        self.frame.clear();
        parcel.time.encode(&mut self.frame);
        parcel.stamp.seq.encode(&mut self.frame);
        parcel.stamp.lamport.encode(&mut self.frame);
        parcel.stamp.parent.encode(&mut self.frame);
        parcel.msg.encode(&mut self.frame);
        anonring_sim::profile::record_wire_encode(
            self.frame.len() as u64 + 4,
            self.frame.capacity() > frame_capacity,
        );
        let len = u32::try_from(self.frame.len()).map_err(|_| {
            PushError::Io(format!("frame of {} bytes overflows u32", self.frame.len()))
        })?;
        let write = self
            .stream
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.stream.write_all(&self.frame));
        match write {
            Ok(()) => Ok(()),
            // A torn-down peer during shutdown is a quiet stop, not a fault.
            Err(_) if over() => Err(PushError::Stopped),
            Err(e) => Err(PushError::Io(format!("link write failed: {e}"))),
        }
    }
}

/// Reads exactly `buf.len()` bytes, tolerating read timeouts (checking
/// `stop` at each) so shutdown can interrupt a parked reader. Returns
/// `Ok(false)` on a clean EOF at a frame boundary.
pub(crate) fn read_frame_bytes(
    stream: &mut TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
    stop: &dyn Fn() -> bool,
) -> Result<bool, String> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err("link closed mid-frame".to_string());
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop() {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("link read failed: {e}")),
        }
    }
    Ok(true)
}

/// The receiving end of one TCP link: decodes frames and feeds the
/// receiver's inbox until EOF or shutdown.
pub(crate) fn read_link<M: Wire>(
    mut stream: TcpStream,
    inbox: &Inbox<M>,
    arrival: PortId,
    hub: &ShardHub,
    faults: &Mutex<Vec<String>>,
) {
    let fail = |detail: String| {
        faults.lock().expect("fault list poisoned").push(detail);
        // A dead link can strand messages forever; abort the run rather
        // than letting it ride the full timeout.
        hub.cancel();
    };
    loop {
        let mut len_bytes = [0u8; 4];
        match read_frame_bytes(&mut stream, &mut len_bytes, true, &|| hub.is_over()) {
            Ok(true) => {}
            Ok(false) => return,
            Err(detail) => return fail(detail),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        let mut frame = vec![0u8; len];
        match read_frame_bytes(&mut stream, &mut frame, false, &|| hub.is_over()) {
            Ok(true) => {}
            Ok(false) => return,
            Err(detail) => return fail(detail),
        }
        let mut input = frame.as_slice();
        let parcel = (|| -> Result<Parcel<M>, crate::wire::WireError> {
            let time = u64::decode(&mut input)?;
            let seq = u64::decode(&mut input)?;
            let lamport = u64::decode(&mut input)?;
            let parent = Option::<u64>::decode(&mut input)?;
            let msg = M::decode(&mut input)?;
            Ok(Parcel {
                msg,
                time,
                stamp: CausalStamp {
                    seq,
                    lamport,
                    parent,
                },
            })
        })();
        let mut parcel = match parcel {
            Ok(parcel) => parcel,
            Err(e) => return fail(e.to_string()),
        };
        anonring_sim::profile::record_wire_decode(len as u64 + 4);
        loop {
            match inbox.try_push(arrival, parcel) {
                PushOutcome::Pushed => break,
                PushOutcome::Closed => return,
                PushOutcome::Full(returned) => {
                    parcel = returned;
                    hub.note_backpressure();
                    if hub.is_over() {
                        return;
                    }
                    inbox.wait_space(arrival, Duration::from_micros(200));
                }
            }
        }
    }
}

/// One established loopback link: the writer stream for the sender plus
/// the accepted stream the receiver-side reader thread will drain.
struct LinkPair {
    writer: TcpStream,
    reader: TcpStream,
}

fn connect_pair() -> Result<LinkPair, NetError> {
    fn io_err(what: &'static str) -> impl Fn(std::io::Error) -> NetError {
        move |e| NetError::Io {
            detail: format!("{what}: {e}"),
        }
    }
    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(io_err("bind loopback"))?;
    let addr = listener.local_addr().map_err(io_err("local addr"))?;
    let writer = TcpStream::connect(addr).map_err(io_err("connect loopback"))?;
    let (reader, _) = listener.accept().map_err(io_err("accept loopback"))?;
    writer.set_nodelay(true).map_err(io_err("set nodelay"))?;
    reader
        .set_read_timeout(Some(READ_POLL))
        .map_err(io_err("set read timeout"))?;
    Ok(LinkPair { writer, reader })
}

/// Runs `procs` with every directed link realised as a loopback TCP
/// connection.
///
/// # Errors
///
/// See [`NetError`]; transport failures surface as [`NetError::Io`].
pub(crate) fn run_tcp<P, T>(
    topology: &T,
    procs: Vec<P>,
    options: &NetOptions,
) -> Result<NetReport<P::Output>, NetError>
where
    P: AsyncPortProcess + Send,
    P::Msg: Wire + Send,
    P::Output: Send,
    T: Topology,
{
    let n = topology.n();
    if procs.len() != n {
        return Err(NetError::LengthMismatch {
            expected: n,
            actual: procs.len(),
        });
    }
    // A zero budget fails before any socket is dialed, mirroring the
    // thread transport: the verdict must not depend on how fast the
    // run would have finished.
    if options.timeout.is_zero() {
        return Err(NetError::Timeout {
            timeout_ms: 0,
            halted: 0,
        });
    }
    let hub = ShardHub::new(topology);
    let inboxes: Vec<Arc<Inbox<P::Msg>>> = (0..n)
        .map(|i| Arc::new(Inbox::new(topology.ports(i), options.capacity)))
        .collect();
    let faults = Mutex::new(Vec::new());
    let deadline = Instant::now() + options.timeout;

    // Establish every directed link up front; per sender, index k is the
    // link its local port k sends on (left then right on a ring).
    let mut links: Vec<Vec<LinkPair>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut out = Vec::with_capacity(topology.ports(i));
        for _ in 0..topology.ports(i) {
            out.push(connect_pair()?);
        }
        links.push(out);
    }

    let (outcome, results) = std::thread::scope(|scope| {
        let hub = &hub;
        let faults = &faults;
        let mut handles = Vec::with_capacity(n);
        for (i, proc) in procs.into_iter().enumerate() {
            let ends = hub.links_of(i);
            let ports = links[i]
                .iter_mut()
                .map(|pair| {
                    (
                        pair.writer.try_clone().map_err(|e| NetError::Io {
                            detail: format!("clone writer: {e}"),
                        }),
                        pair.reader.try_clone().map_err(|e| NetError::Io {
                            detail: format!("clone reader: {e}"),
                        }),
                    )
                })
                .collect::<Vec<_>>();
            let degree = ends.len();
            let mut writers = Vec::with_capacity(degree);
            for (k, (writer, reader)) in ports.into_iter().enumerate() {
                let (writer, reader) = match (writer, reader) {
                    (Ok(w), Ok(r)) => (w, r),
                    (Err(e), _) | (_, Err(e)) => {
                        faults
                            .lock()
                            .expect("fault list poisoned")
                            .push(e.to_string());
                        hub.cancel();
                        continue;
                    }
                };
                writers.push(TcpPort {
                    stream: writer,
                    frame: Vec::new(),
                    _msg: std::marker::PhantomData,
                });
                let peer = Arc::clone(&inboxes[ends[k].to]);
                let arrival = ends[k].arrival;
                scope.spawn(move || read_link(reader, &peer, arrival, hub, faults));
            }
            if writers.len() == degree {
                let inbox = Arc::clone(&inboxes[i]);
                let jitter = Jitter::new(options.jitter_seed, i as u64, options.max_delay_us);
                handles.push(scope.spawn(move || worker(i, proc, hub, &inbox, writers, jitter)));
            }
        }
        let outcome = hub.await_outcome(deadline);
        for inbox in &inboxes {
            inbox.close();
        }
        let results: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(i, handle)| {
                handle
                    .join()
                    .unwrap_or(Err(NetError::WorkerPanic { processor: i }))
            })
            .collect();
        // Workers have exited, so their writer streams are dropped and
        // every reader sees EOF or the shutdown flag; dropping the
        // original pairs closes the last handles.
        drop(links);
        (outcome, results)
    });

    let faults = faults.into_inner().expect("fault list poisoned");
    if let Some(detail) = faults.into_iter().next() {
        return Err(NetError::Io { detail });
    }
    finish(hub, outcome, results, options)
}
