//! Deterministic delivery jitter for the real-transport runtime.
//!
//! Real threads already interleave nondeterministically; the jitter source
//! adds *reproducible* extra reordering on top, so a conformance failure
//! found under `--jitter-seed 42` can be re-run. Each worker owns one
//! generator, seeded from the run seed and the worker's position in the
//! substrate (adversary-side state, like the simulator's
//! `RandomScheduler` — never visible to the algorithm).

use std::time::Duration;

use anonring_sim::Port;

/// SplitMix64 stream driving one worker's delivery choices.
#[derive(Debug, Clone)]
pub(crate) struct Jitter {
    state: u64,
    max_delay_us: u64,
}

impl Jitter {
    /// A generator for stream `lane` of run seed `seed`.
    pub(crate) fn new(seed: u64, lane: u64, max_delay_us: u64) -> Jitter {
        Jitter {
            state: seed
                .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(0x9e37_79b9_7f4a_7c15),
            max_delay_us,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64, same generator as the simulator's RandomScheduler.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Chooses which local port to consume from next, given which staged
    /// queues are nonempty. At least one of `left`/`right` must be true.
    pub(crate) fn pick(&mut self, left: bool, right: bool) -> Port {
        match (left, right) {
            (true, false) => Port::Left,
            (false, true) => Port::Right,
            _ => {
                if self.next_u64() & 1 == 0 {
                    Port::Left
                } else {
                    Port::Right
                }
            }
        }
    }

    /// Sleeps for a random duration up to the configured maximum, modelling
    /// link delay. A zero maximum (the default) never sleeps.
    pub(crate) fn delay(&mut self) {
        if self.max_delay_us == 0 {
            return;
        }
        let us = self.next_u64() % (self.max_delay_us + 1);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Jitter;
    use anonring_sim::Port;

    #[test]
    fn forced_picks_respect_the_only_nonempty_queue() {
        let mut j = Jitter::new(1, 0, 0);
        assert_eq!(j.pick(true, false), Port::Left);
        assert_eq!(j.pick(false, true), Port::Right);
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_lane() {
        let picks = |seed, lane| {
            let mut j = Jitter::new(seed, lane, 0);
            (0..64).map(|_| j.pick(true, true)).collect::<Vec<_>>()
        };
        assert_eq!(picks(7, 0), picks(7, 0));
        assert_ne!(picks(7, 0), picks(8, 0), "seed changes the stream");
        assert_ne!(picks(7, 0), picks(7, 1), "lane changes the stream");
    }

    #[test]
    fn zero_max_delay_returns_immediately() {
        let mut j = Jitter::new(3, 2, 0);
        j.delay(); // must not sleep; the test would time out otherwise
    }
}
