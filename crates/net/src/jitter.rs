//! Deterministic delivery jitter for the real-transport runtime.
//!
//! Real threads already interleave nondeterministically; the jitter source
//! adds *reproducible* extra reordering on top, so a conformance failure
//! found under `--jitter-seed 42` can be re-run. Each worker owns one
//! generator, seeded from the run seed and the worker's position in the
//! substrate (adversary-side state, like the simulator's
//! `RandomScheduler` — never visible to the algorithm).

use std::time::Duration;

/// SplitMix64 stream driving one worker's delivery choices.
#[derive(Debug, Clone)]
pub(crate) struct Jitter {
    state: u64,
    max_delay_us: u64,
}

impl Jitter {
    /// A generator for stream `lane` of run seed `seed`.
    pub(crate) fn new(seed: u64, lane: u64, max_delay_us: u64) -> Jitter {
        Jitter {
            state: seed
                .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(0x9e37_79b9_7f4a_7c15),
            max_delay_us,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64, same generator as the simulator's RandomScheduler.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Chooses which local port to consume from next among the nonempty
    /// staged queues. `ready` must be non-empty; a single candidate is
    /// returned without consuming the stream, so forced picks don't
    /// perturb later choices (the same property the old two-port picker
    /// had).
    pub(crate) fn pick(&mut self, ready: &[usize]) -> usize {
        match ready {
            [only] => *only,
            _ => {
                let k = usize::try_from(self.next_u64() % ready.len() as u64)
                    .expect("port counts fit in usize");
                ready[k]
            }
        }
    }

    /// Sleeps for a random duration up to the configured maximum, modelling
    /// link delay. A zero maximum (the default) never sleeps.
    pub(crate) fn delay(&mut self) {
        if self.max_delay_us == 0 {
            return;
        }
        let us = self.next_u64() % (self.max_delay_us + 1);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Jitter;

    #[test]
    fn forced_picks_respect_the_only_nonempty_queue() {
        let mut j = Jitter::new(1, 0, 0);
        assert_eq!(j.pick(&[0]), 0);
        assert_eq!(j.pick(&[1]), 1);
        assert_eq!(j.pick(&[5]), 5);
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_lane() {
        let picks = |seed, lane| {
            let mut j = Jitter::new(seed, lane, 0);
            (0..64).map(|_| j.pick(&[0, 1])).collect::<Vec<_>>()
        };
        assert_eq!(picks(7, 0), picks(7, 0));
        assert_ne!(picks(7, 0), picks(8, 0), "seed changes the stream");
        assert_ne!(picks(7, 0), picks(7, 1), "lane changes the stream");
    }

    #[test]
    fn many_port_picks_stay_in_range() {
        let mut j = Jitter::new(11, 3, 0);
        let ready = [0, 2, 5, 6];
        for _ in 0..128 {
            assert!(ready.contains(&j.pick(&ready)));
        }
    }

    #[test]
    fn zero_max_delay_returns_immediately() {
        let mut j = Jitter::new(3, 2, 0);
        j.delay(); // must not sleep; the test would time out otherwise
    }
}
