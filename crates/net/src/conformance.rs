//! The sim-conformance oracle: every net run must agree with the
//! simulator.
//!
//! The real transport is only trustworthy if it computes *the same
//! function at the same metered cost* as the audited simulators. The
//! oracle re-executes each job under the asynchronous engine and demands
//! agreement on everything that is schedule-independent:
//!
//! * **outputs** — rendered bytes must be identical (the audited
//!   algorithms are schedule-independent, so any honest execution agrees);
//! * **total messages** and **total bits** — each send is metered exactly
//!   once at its emission, so totals cannot depend on interleaving.
//!
//! Wall-clock, delivery interleaving, and therefore the *per-epoch*
//! histogram and `max_epoch` may legitimately differ: a real thread can
//! batch several simulated cycles into one burst of events, which shifts
//! epoch stamps without changing what was sent. Comparing them would
//! reject correct executions, so the oracle deliberately stops at the
//! schedule-independent invariants.

use std::fmt;

use anonring_sim::r#async::{AsyncEngine, AsyncPortProcess, AsyncReport, Scheduler};
use anonring_sim::{SimError, Topology};

use crate::runtime::{run, NetError, NetOptions, NetReport};
use crate::wire::Wire;

/// A conformance violation or an execution failure on either side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The net run failed outright.
    Net(NetError),
    /// The reference simulation failed (the job itself is broken).
    Sim(SimError),
    /// Both sides ran, but a schedule-independent quantity differs.
    Mismatch {
        /// Which quantity differs (`"outputs"`, `"messages"`, `"bits"`).
        what: &'static str,
        /// The net side's value, rendered.
        net: String,
        /// The simulator side's value, rendered.
        sim: String,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::Net(e) => write!(f, "net run failed: {e}"),
            ConformanceError::Sim(e) => write!(f, "reference simulation failed: {e}"),
            ConformanceError::Mismatch { what, net, sim } => {
                write!(f, "net/sim mismatch on {what}: net {net} vs sim {sim}")
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Both sides of a certified run.
#[derive(Debug, Clone)]
pub struct Certified<O> {
    /// The real-transport run.
    pub net: NetReport<O>,
    /// The reference simulation.
    pub sim: AsyncReport<O>,
}

/// Checks the schedule-independent invariants between a completed net run
/// and its reference simulation.
///
/// # Errors
///
/// Returns [`ConformanceError::Mismatch`] naming the first disagreeing
/// quantity.
pub fn compare<O: fmt::Debug>(
    net: &NetReport<O>,
    sim: &AsyncReport<O>,
) -> Result<(), ConformanceError> {
    let mismatch = |what, net: &dyn fmt::Debug, sim: &dyn fmt::Debug| {
        Err(ConformanceError::Mismatch {
            what,
            net: format!("{net:?}"),
            sim: format!("{sim:?}"),
        })
    };
    // Byte-identical rendering, the strongest output equality every
    // `O: Debug` admits.
    let net_out = format!("{:?}", net.outputs());
    let sim_out = format!("{:?}", sim.outputs());
    if net_out != sim_out {
        return mismatch("outputs", &net.outputs(), &sim.outputs());
    }
    if net.messages != sim.messages {
        return mismatch("messages", &net.messages, &sim.messages);
    }
    if net.bits != sim.bits {
        return mismatch("bits", &net.bits, &sim.bits);
    }
    Ok(())
}

/// Runs a job on the real transport, re-executes it under the async
/// simulator with `scheduler`, and certifies agreement. `make` must build
/// the same processors both times — handing it the same `(algorithm, n,
/// inputs)` data twice is exactly how the `ringd` server uses this.
///
/// # Errors
///
/// See [`ConformanceError`].
pub fn certify_with<P, T, F, S>(
    topology: &T,
    make: F,
    options: &NetOptions,
    scheduler: &mut S,
) -> Result<Certified<P::Output>, ConformanceError>
where
    P: AsyncPortProcess + Send,
    P::Msg: Wire + Send,
    P::Output: Send,
    T: Topology + Clone,
    F: Fn() -> Vec<P>,
    S: Scheduler,
{
    let net = run(topology, make(), options).map_err(ConformanceError::Net)?;
    let mut engine = AsyncEngine::new(topology.clone(), make()).map_err(ConformanceError::Sim)?;
    let sim = engine.run(scheduler).map_err(ConformanceError::Sim)?;
    compare(&net, &sim)?;
    Ok(Certified { net, sim })
}

/// [`certify_with`] under the Theorem 5.1 synchronizing adversary — the
/// reference schedule the audit tables are built from.
///
/// # Errors
///
/// See [`ConformanceError`].
pub fn certify<P, T, F>(
    topology: &T,
    make: F,
    options: &NetOptions,
) -> Result<Certified<P::Output>, ConformanceError>
where
    P: AsyncPortProcess + Send,
    P::Msg: Wire + Send,
    P::Output: Send,
    T: Topology + Clone,
    F: Fn() -> Vec<P>,
{
    certify_with(
        topology,
        make,
        options,
        &mut anonring_sim::r#async::SynchronizingScheduler,
    )
}
