//! Bounded per-processor mailboxes: the FIFO links of the real transport.
//!
//! Each processor owns one [`Inbox`] with one bounded FIFO queue per local
//! port — the net-runtime incarnation of the simulator's per-directed-link
//! queues. Senders block when a queue is full (backpressure); while blocked
//! they keep draining their *own* inbox so a full cycle of mutually-blocked
//! sends cannot deadlock the ring (see [`crate::runtime`]).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use anonring_sim::profile;
use anonring_sim::runtime::CausalStamp;
use anonring_sim::PortId;

/// One message in transit on the real transport: the payload plus the
/// metadata the simulators attach to every send.
#[derive(Debug, Clone)]
pub(crate) struct Parcel<M> {
    /// The algorithm's message.
    pub msg: M,
    /// Arrival epoch stamped at the send (sender's event epoch + 1).
    pub time: u64,
    /// Causal identity assigned by the hub at the send.
    pub stamp: CausalStamp,
}

/// Queue index of a local port.
pub(crate) fn pidx(port: PortId) -> usize {
    port.index()
}

struct InboxState<M> {
    queues: Vec<VecDeque<Parcel<M>>>,
    /// Enqueue wall stamps parallel to `queues`, populated only while
    /// the S26 profiler is enabled; popped at drain time to record
    /// per-port queue dwell. May run behind `queues` when the profiler
    /// is toggled mid-run — drains clear both, so it self-heals.
    stamps: Vec<VecDeque<Instant>>,
    capacity: usize,
    shutdown: bool,
}

/// Outcome of a non-blocking push attempt.
pub(crate) enum PushOutcome<M> {
    /// Enqueued.
    Pushed,
    /// The port's queue is at capacity; the parcel is handed back.
    Full(Parcel<M>),
    /// The run is over; the parcel was discarded.
    Closed,
}

/// Outcome of waiting for deliverable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkOutcome {
    /// At least one queue is nonempty.
    Ready,
    /// The wait timed out with both queues empty.
    Idle,
    /// The inbox was shut down.
    Closed,
}

/// A processor's bounded arrival queues, one per local port (a ring
/// processor has two: left then right).
pub(crate) struct Inbox<M> {
    state: Mutex<InboxState<M>>,
    changed: Condvar,
}

impl<M> Inbox<M> {
    /// An empty inbox with one queue per local port, each holding at most
    /// `capacity` parcels (`capacity ≥ 1`).
    pub(crate) fn new(ports: usize, capacity: usize) -> Inbox<M> {
        Inbox {
            state: Mutex::new(InboxState {
                queues: (0..ports).map(|_| VecDeque::new()).collect(),
                stamps: (0..ports).map(|_| VecDeque::new()).collect(),
                capacity: capacity.max(1),
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InboxState<M>> {
        self.state.lock().expect("inbox lock poisoned")
    }

    /// Attempts to enqueue `parcel` on the queue for arrival port `port`.
    pub(crate) fn try_push(&self, port: PortId, parcel: Parcel<M>) -> PushOutcome<M> {
        let mut state = self.lock();
        if state.shutdown {
            return PushOutcome::Closed;
        }
        if state.queues[pidx(port)].len() >= state.capacity {
            return PushOutcome::Full(parcel);
        }
        state.queues[pidx(port)].push_back(parcel);
        if let Some(now) = profile::stamp() {
            state.stamps[pidx(port)].push_back(now);
        }
        drop(state);
        self.changed.notify_all();
        PushOutcome::Pushed
    }

    /// Parks until the queue for `port` has room, the inbox shuts down, or
    /// `timeout` elapses — whichever comes first. Callers re-attempt the
    /// push afterwards; spurious wakeups are harmless.
    pub(crate) fn wait_space(&self, port: PortId, timeout: Duration) {
        let state = self.lock();
        if state.shutdown || state.queues[pidx(port)].len() < state.capacity {
            return;
        }
        let _unused = self
            .changed
            .wait_timeout(state, timeout)
            .expect("inbox lock poisoned");
    }

    /// Moves every queued parcel into `staging` (per-port, preserving FIFO
    /// order) and returns whether anything was moved. Draining frees queue
    /// capacity, which unblocks senders.
    pub(crate) fn drain_into(&self, staging: &mut [VecDeque<Parcel<M>>]) -> bool {
        let mut state = self.lock();
        let mut moved = false;
        let record = profile::enabled();
        for (k, queue) in state.queues.iter_mut().enumerate() {
            if !queue.is_empty() {
                moved = true;
                staging[k].append(queue);
            }
        }
        for (k, stamps) in state.stamps.iter_mut().enumerate() {
            for enqueued in stamps.drain(..) {
                if record {
                    profile::record_queue_dwell(profile::QueueKind::Inbox, k, Some(enqueued));
                }
            }
        }
        drop(state);
        if moved {
            // Senders may be parked on a full queue.
            self.changed.notify_all();
        }
        moved
    }

    /// Parks until a parcel arrives, the inbox shuts down, or `timeout`
    /// elapses.
    pub(crate) fn wait_work(&self, timeout: Duration) -> WorkOutcome {
        let mut state = self.lock();
        if state.queues.iter().any(|q| !q.is_empty()) {
            return WorkOutcome::Ready;
        }
        if state.shutdown {
            return WorkOutcome::Closed;
        }
        (state, _) = self
            .changed
            .wait_timeout(state, timeout)
            .expect("inbox lock poisoned");
        if state.queues.iter().any(|q| !q.is_empty()) {
            WorkOutcome::Ready
        } else if state.shutdown {
            WorkOutcome::Closed
        } else {
            WorkOutcome::Idle
        }
    }

    /// Marks the run as over and wakes every parked thread. Subsequent
    /// pushes report [`PushOutcome::Closed`].
    pub(crate) fn close(&self) {
        self.lock().shutdown = true;
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{pidx, Inbox, Parcel, PushOutcome, WorkOutcome};
    use anonring_sim::runtime::CausalStamp;
    use anonring_sim::PortId;
    use std::collections::VecDeque;
    use std::time::Duration;

    fn parcel(msg: u8) -> Parcel<u8> {
        Parcel {
            msg,
            time: 1,
            stamp: CausalStamp {
                seq: u64::from(msg),
                lamport: 1,
                parent: None,
            },
        }
    }

    #[test]
    fn port_indexing_is_a_bijection() {
        assert_ne!(pidx(PortId::LEFT), pidx(PortId::RIGHT));
        assert!(pidx(PortId::LEFT) < 2 && pidx(PortId::RIGHT) < 2);
        assert_eq!(pidx(PortId::new(5)), 5);
    }

    #[test]
    fn capacity_bounds_each_port_queue_independently() {
        let inbox: Inbox<u8> = Inbox::new(2, 1);
        assert!(matches!(
            inbox.try_push(PortId::LEFT, parcel(1)),
            PushOutcome::Pushed
        ));
        assert!(matches!(
            inbox.try_push(PortId::LEFT, parcel(2)),
            PushOutcome::Full(p) if p.msg == 2
        ));
        assert!(matches!(
            inbox.try_push(PortId::RIGHT, parcel(3)),
            PushOutcome::Pushed
        ));
    }

    #[test]
    fn draining_preserves_per_port_fifo_order_and_frees_capacity() {
        let inbox: Inbox<u8> = Inbox::new(2, 2);
        for m in [1, 2] {
            assert!(matches!(
                inbox.try_push(PortId::RIGHT, parcel(m)),
                PushOutcome::Pushed
            ));
        }
        let mut staging: Vec<VecDeque<Parcel<u8>>> = vec![VecDeque::new(), VecDeque::new()];
        assert!(inbox.drain_into(&mut staging));
        assert!(
            !inbox.drain_into(&mut staging),
            "second drain finds nothing"
        );
        let order: Vec<u8> = staging[1].iter().map(|p| p.msg).collect();
        assert_eq!(order, vec![1, 2]);
        assert!(matches!(
            inbox.try_push(PortId::RIGHT, parcel(3)),
            PushOutcome::Pushed
        ));
    }

    #[test]
    fn close_rejects_pushes_and_unblocks_waiters() {
        let inbox: Inbox<u8> = Inbox::new(2, 1);
        inbox.close();
        assert!(matches!(
            inbox.try_push(PortId::LEFT, parcel(1)),
            PushOutcome::Closed
        ));
        assert_eq!(
            inbox.wait_work(Duration::from_millis(1)),
            WorkOutcome::Closed
        );
    }

    #[test]
    fn draining_records_queue_dwell_while_profiling() {
        let session = anonring_sim::profile::session();
        let inbox: Inbox<u8> = Inbox::new(2, 4);
        for m in [1, 2] {
            assert!(matches!(
                inbox.try_push(PortId::RIGHT, parcel(m)),
                PushOutcome::Pushed
            ));
        }
        let mut staging: Vec<VecDeque<Parcel<u8>>> = vec![VecDeque::new(), VecDeque::new()];
        assert!(inbox.drain_into(&mut staging));
        let reg = anonring_sim::profile::snapshot();
        let id = anonring_sim::telemetry::MetricId::with_labels(
            "queue_dwell_us",
            &[("queue", "inbox"), ("port", "1")],
        );
        let count = reg
            .histograms()
            .find(|(got, _)| **got == id)
            .map(|(_, histogram)| histogram.count);
        assert_eq!(count, Some(2), "one dwell sample per drained parcel");
        drop(session);
    }

    #[test]
    fn wait_work_reports_ready_and_idle() {
        let inbox: Inbox<u8> = Inbox::new(2, 1);
        assert_eq!(inbox.wait_work(Duration::from_millis(1)), WorkOutcome::Idle);
        assert!(matches!(
            inbox.try_push(PortId::RIGHT, parcel(9)),
            PushOutcome::Pushed
        ));
        assert_eq!(
            inbox.wait_work(Duration::from_millis(1)),
            WorkOutcome::Ready
        );
    }
}
