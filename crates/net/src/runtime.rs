//! The real-transport runtime: one OS thread per processor.
//!
//! This is a third driver over the same algorithm interface the simulators
//! use: processes implement [`AsyncPortProcess`] (every ring
//! [`anonring_sim::r#async::AsyncProcess`] qualifies automatically) and
//! never learn which substrate runs them. Each processor becomes a worker
//! thread with a bounded [`crate::inbox::Inbox`] (one FIFO per local port);
//! workers deliver from their own inbox, react, and push the reactions
//! into their neighbours' inboxes. Every send, delivery and halt is
//! metered and logged by the shared [`crate::hub::ShardHub`], so a net run
//! yields the same message/bit accounting and the same causal
//! [`TraceEvent`] stream as a simulated one.
//!
//! ## Backpressure without deadlock
//!
//! Queues are bounded, so a send into a full queue blocks. A ring of
//! processors all sending "forward" can then block in a full cycle — the
//! classical ring deadlock. The runtime breaks it structurally: while a
//! worker is blocked on a send it keeps *draining its own inbox* into its
//! local staging queues (which frees its neighbour's send). Draining never
//! consumes a message mid-send — delivery order within a link is preserved
//! — so per-link FIFO still holds, and some worker on any blocked cycle
//! always has a drainable message.
//!
//! ## Time and termination
//!
//! Sends are stamped with Theorem 5.1's bookkeeping (arrival epoch =
//! sender's event epoch + 1), exactly like the async simulator. The run
//! ends when every processor has halted and no message is in flight;
//! full quiescence with a processor still running reproduces the
//! simulator's `QuiescentWithoutHalt` error; a wall-clock deadline guards
//! against livelock and is reported as [`NetError::Timeout`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anonring_sim::message::Message;
use anonring_sim::r#async::AsyncPortProcess;
use anonring_sim::runtime::{CausalClocks, Observer, PortActions, TraceEvent};
use anonring_sim::{PortId, Topology};

use crate::hub::{Outcome, ShardHub};
use crate::inbox::{pidx, Inbox, Parcel, PushOutcome, WorkOutcome};
use crate::jitter::Jitter;
use crate::wire::Wire;

/// How the topology's links are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// In-process: one OS thread per processor, links are bounded
    /// channels. No serialization; any message type runs.
    Threads,
    /// One OS thread per processor, each directed link a TCP connection
    /// over loopback; messages cross the wire via their [`Wire`] encoding.
    TcpLoopback,
}

impl Transport {
    /// Stable name, as used by the `ringd` job schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Transport::Threads => "threads",
            Transport::TcpLoopback => "tcp",
        }
    }

    /// Parses [`Transport::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Transport> {
        match name {
            "threads" => Some(Transport::Threads),
            "tcp" => Some(Transport::TcpLoopback),
            _ => None,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs of a net run.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Per-port inbox capacity (≥ 1): how many undelivered messages one
    /// directed link buffers before the sender blocks.
    pub capacity: usize,
    /// Seed of the deterministic delivery jitter (which local port a
    /// worker consumes from when both have pending messages).
    pub jitter_seed: u64,
    /// Upper bound, in microseconds, of the random per-delivery sleep
    /// modelling link delay. `0` (default) never sleeps.
    pub max_delay_us: u64,
    /// Link realisation.
    pub transport: Transport,
    /// Wall-clock budget; exceeding it aborts with [`NetError::Timeout`].
    /// A zero budget fails before the run starts — deterministically,
    /// whatever the machine speed — making it a failure injector for
    /// retry paths.
    pub timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> NetOptions {
        NetOptions {
            capacity: 8,
            jitter_seed: 0,
            max_delay_us: 0,
            transport: Transport::Threads,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome of a completed net run: the same cost accounting as an
/// `AsyncReport`, plus the recorded [`TraceEvent`] stream.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport<O> {
    /// Total messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Total deliveries performed (drops included).
    pub deliveries: u64,
    /// Messages that arrived at an already-halted processor.
    pub dropped: u64,
    /// Highest arrival epoch of any send. **Interleaving-dependent**:
    /// real threads batch differently than the simulator's adversaries,
    /// so only `messages`/`bits`/outputs are conformance-comparable.
    pub max_epoch: u64,
    /// Messages per arrival epoch (interleaving-dependent, like
    /// [`NetReport::max_epoch`]).
    pub per_epoch_messages: Vec<u64>,
    /// High-water mark of routed-but-undelivered sends (hub-observed link
    /// congestion; wall-clock-dependent, never conformance-compared).
    pub peak_in_flight: u64,
    /// Full-inbox waits observed by senders and TCP reader pumps
    /// (wall-clock-dependent, never conformance-compared).
    pub backpressure_waits: u64,
    outputs: Vec<O>,
    events: Vec<TraceEvent>,
    wall_us: Vec<u64>,
}

impl<O> NetReport<O> {
    /// The ring output `O(1), …, O(n)`.
    #[must_use]
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the report, returning the ring output.
    #[must_use]
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }

    /// The recorded event stream, in hub (= global causal) order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Wall-clock microseconds since run start, one stamp per recorded
    /// event in [`NetReport::events`] order — feed them to
    /// `Recording::attach_wall_stamps` so replay tooling can report real
    /// latencies next to the metered epochs.
    #[must_use]
    pub fn wall_stamps(&self) -> &[u64] {
        &self.wall_us
    }

    /// Replays the recorded events into `observer` — the bridge to every
    /// simulator-side consumer (flight recorder, telemetry registry,
    /// space-time trace).
    pub fn replay(&self, observer: &mut impl Observer) {
        for event in &self.events {
            observer.on_event(event);
        }
    }
}

/// A failed net run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// `procs.len()` does not match the ring size.
    LengthMismatch {
        /// The ring size.
        expected: usize,
        /// The process count provided.
        actual: usize,
    },
    /// The wall-clock budget elapsed before termination (livelock, or a
    /// budget too tight for the configured jitter delays).
    Timeout {
        /// The configured budget, in milliseconds.
        timeout_ms: u64,
        /// Processors that had halted by the deadline.
        halted: usize,
    },
    /// Every link drained and every worker idled, but some processors
    /// never halted — the transport analogue of the simulator's
    /// `QuiescentWithoutHalt` (an algorithm deadlock).
    QuiescentWithoutHalt {
        /// How many processors were still running.
        running: usize,
    },
    /// A worker thread panicked (an algorithm bug; the panic message goes
    /// to stderr).
    WorkerPanic {
        /// The processor whose worker died.
        processor: usize,
    },
    /// A transport-level I/O failure (TCP mode).
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} processes, got {actual}")
            }
            NetError::Timeout { timeout_ms, halted } => write!(
                f,
                "run exceeded its {timeout_ms} ms budget ({halted} processors halted)"
            ),
            NetError::QuiescentWithoutHalt { running } => {
                write!(f, "links drained but {running} processors never halted")
            }
            NetError::WorkerPanic { processor } => {
                write!(f, "worker thread of processor {processor} panicked")
            }
            NetError::Io { detail } => write!(f, "transport I/O error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Why a send could not complete.
pub(crate) enum PushError {
    /// The run is over (done, stalled or cancelled); exit quietly.
    Stopped,
    /// The transport broke.
    Io(String),
}

/// One outgoing directed link, as seen by a worker: local in-process
/// channel or TCP socket.
pub(crate) trait SendPort<M> {
    /// Pushes `parcel` toward the peer, blocking under backpressure.
    /// While blocked the implementation must periodically call `relieve`
    /// (which drains the sender's own inbox — the ring's deadlock
    /// breaker) and give up once `over` reports the run finished.
    fn push(
        &mut self,
        parcel: Parcel<M>,
        relieve: &mut dyn FnMut(),
        over: &dyn Fn() -> bool,
    ) -> Result<(), PushError>;
}

/// In-process link: pushes straight into the peer's bounded inbox.
pub(crate) struct LocalPort<M> {
    pub peer: Arc<Inbox<M>>,
    pub arrival: PortId,
    /// Hub-shared counter of full-inbox waits (see `ShardHub::backpressure_handle`).
    pub pressure: Arc<std::sync::atomic::AtomicU64>,
}

impl<M> SendPort<M> for LocalPort<M> {
    fn push(
        &mut self,
        mut parcel: Parcel<M>,
        relieve: &mut dyn FnMut(),
        over: &dyn Fn() -> bool,
    ) -> Result<(), PushError> {
        loop {
            match self.peer.try_push(self.arrival, parcel) {
                PushOutcome::Pushed => return Ok(()),
                PushOutcome::Closed => return Err(PushError::Stopped),
                PushOutcome::Full(returned) => {
                    parcel = returned;
                    self.pressure
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    relieve();
                    if over() {
                        return Err(PushError::Stopped);
                    }
                    self.peer
                        .wait_space(self.arrival, Duration::from_micros(200));
                }
            }
        }
    }
}

/// Emits one event's reactions: meters and logs each send through the hub
/// (arrival epoch = event epoch + 1, Theorem 5.1's bookkeeping), pushes
/// the parcels out, and logs the halt if the process stopped.
#[allow(clippy::too_many_arguments)] // worker internals threaded through one helper, like the engines'
pub(crate) fn emit_actions<M: Message, O, L: SendPort<M>>(
    me: usize,
    actions: PortActions<M, O>,
    event_epoch: u64,
    hub: &ShardHub,
    clocks: &mut CausalClocks,
    inbox: &Inbox<M>,
    links: &mut [L],
    staging: &mut [VecDeque<Parcel<M>>],
    output: &mut Option<O>,
) -> Result<(), PushError> {
    let send_epoch = event_epoch + 1;
    let span = actions.span;
    for (port, msg) in actions.sends {
        let (lamport, parent) = clocks.stamp_send(0);
        let bits = msg.bit_len();
        let stamp = hub.route_send(me, port, bits, send_epoch, lamport, parent, span);
        let parcel = Parcel {
            msg,
            time: send_epoch,
            stamp,
        };
        let relieve = &mut || {
            inbox.drain_into(staging);
        };
        links[pidx(port)].push(parcel, relieve, &|| hub.is_over())?;
    }
    if let Some(out) = actions.halt {
        if output.is_none() {
            *output = Some(out);
            hub.halt(me, event_epoch);
        }
    }
    Ok(())
}

/// The body of one processor's thread: deliver → react → send, until the
/// hub declares the run over.
pub(crate) fn worker<P: AsyncPortProcess, L: SendPort<P::Msg>>(
    me: usize,
    mut proc: P,
    hub: &ShardHub,
    inbox: &Inbox<P::Msg>,
    mut links: Vec<L>,
    mut jitter: Jitter,
) -> Result<Option<P::Output>, NetError> {
    let mut clocks = CausalClocks::new(1);
    let mut staging: Vec<VecDeque<Parcel<P::Msg>>> =
        (0..links.len()).map(|_| VecDeque::new()).collect();
    let mut output: Option<P::Output> = None;

    let started = proc.on_start_ports();
    match emit_actions(
        me,
        started,
        0,
        hub,
        &mut clocks,
        inbox,
        &mut links,
        &mut staging,
        &mut output,
    ) {
        Ok(()) => {}
        Err(PushError::Stopped) => return Ok(output),
        Err(PushError::Io(detail)) => return Err(NetError::Io { detail }),
    }

    loop {
        // Staged-but-undelivered parcels keep `in_flight` nonzero, so a
        // `done` verdict implies the staging queues are empty too.
        if hub.is_over() {
            break;
        }
        inbox.drain_into(&mut staging);
        let ready: Vec<usize> = (0..staging.len())
            .filter(|&k| !staging[k].is_empty())
            .collect();
        if ready.is_empty() {
            hub.enter_wait();
            let wait = inbox.wait_work(Duration::from_millis(1));
            hub.exit_wait();
            if wait == WorkOutcome::Closed {
                break;
            }
            continue;
        }
        let port = PortId::new(jitter.pick(&ready) as u16);
        let parcel = staging[pidx(port)]
            .pop_front()
            .expect("picked a nonempty staging queue");
        jitter.delay();
        let dropped = output.is_some();
        hub.deliver(parcel.time, me, port, parcel.stamp.seq, dropped);
        if dropped {
            continue;
        }
        clocks.consume(0, parcel.stamp);
        let actions = proc.on_message_port(port, parcel.msg);
        match emit_actions(
            me,
            actions,
            parcel.time,
            hub,
            &mut clocks,
            inbox,
            &mut links,
            &mut staging,
            &mut output,
        ) {
            Ok(()) => {}
            Err(PushError::Stopped) => break,
            Err(PushError::Io(detail)) => return Err(NetError::Io { detail }),
        }
    }
    Ok(output)
}

/// Folds the hub state and per-worker results into a report (or the run's
/// first error).
pub(crate) fn finish<O>(
    hub: ShardHub,
    outcome: Outcome,
    results: Vec<Result<Option<O>, NetError>>,
    options: &NetOptions,
) -> Result<NetReport<O>, NetError> {
    let n = results.len();
    let mut outputs = Vec::with_capacity(n);
    for result in results {
        outputs.push(result?);
    }
    if outcome.stalled {
        return Err(NetError::QuiescentWithoutHalt {
            running: n - outcome.halted,
        });
    }
    if outcome.cancelled || !outcome.done {
        return Err(NetError::Timeout {
            timeout_ms: u64::try_from(options.timeout.as_millis()).unwrap_or(u64::MAX),
            halted: outcome.halted,
        });
    }
    let outputs = outputs
        .into_iter()
        .map(|out| out.expect("done verdict implies every processor halted"))
        .collect();
    let (meter, events, wall_us, stats) = hub.into_parts();
    Ok(NetReport {
        messages: meter.messages,
        bits: meter.bits,
        deliveries: meter.deliveries,
        dropped: meter.dropped,
        max_epoch: meter.max_time,
        per_epoch_messages: meter.per_time_messages,
        peak_in_flight: stats.peak_in_flight,
        backpressure_waits: stats.backpressure_waits,
        outputs,
        events,
        wall_us,
    })
}

/// Runs `procs` on real threads over in-process bounded links.
///
/// # Errors
///
/// See [`NetError`].
pub fn run_threads<P, T>(
    topology: &T,
    procs: Vec<P>,
    options: &NetOptions,
) -> Result<NetReport<P::Output>, NetError>
where
    P: AsyncPortProcess + Send,
    P::Msg: Send,
    P::Output: Send,
    T: Topology,
{
    let n = topology.n();
    if procs.len() != n {
        return Err(NetError::LengthMismatch {
            expected: n,
            actual: procs.len(),
        });
    }
    // A zero budget can never be met; failing before spawning keeps the
    // verdict deterministic (a fast run could otherwise finish before
    // the coordinator's first deadline check), which makes
    // `timeout_ms: 0` a reliable failure injector for retry paths.
    if options.timeout.is_zero() {
        return Err(NetError::Timeout {
            timeout_ms: 0,
            halted: 0,
        });
    }
    let hub = ShardHub::new(topology);
    let inboxes: Vec<Arc<Inbox<P::Msg>>> = (0..n)
        .map(|i| Arc::new(Inbox::new(topology.ports(i), options.capacity)))
        .collect();
    let deadline = Instant::now() + options.timeout;

    let (outcome, results) = std::thread::scope(|scope| {
        let hub = &hub;
        let handles: Vec<_> = procs
            .into_iter()
            .enumerate()
            .map(|(i, proc)| {
                let links: Vec<_> = hub
                    .links_of(i)
                    .iter()
                    .map(|end| LocalPort {
                        peer: Arc::clone(&inboxes[end.to]),
                        arrival: end.arrival,
                        pressure: hub.backpressure_handle(),
                    })
                    .collect();
                let inbox = Arc::clone(&inboxes[i]);
                let jitter = Jitter::new(options.jitter_seed, i as u64, options.max_delay_us);
                scope.spawn(move || worker(i, proc, hub, &inbox, links, jitter))
            })
            .collect();
        let outcome = hub.await_outcome(deadline);
        for inbox in &inboxes {
            inbox.close();
        }
        let results = handles
            .into_iter()
            .enumerate()
            .map(|(i, handle)| {
                handle
                    .join()
                    .unwrap_or(Err(NetError::WorkerPanic { processor: i }))
            })
            .collect();
        (outcome, results)
    });
    finish(hub, outcome, results, options)
}

/// Runs `procs` under the transport selected in `options`. The TCP
/// transport needs a [`Wire`] encoding for the message type; the threads
/// transport ignores it.
///
/// # Errors
///
/// See [`NetError`].
pub fn run<P, T>(
    topology: &T,
    procs: Vec<P>,
    options: &NetOptions,
) -> Result<NetReport<P::Output>, NetError>
where
    P: AsyncPortProcess + Send,
    P::Msg: Wire + Send,
    P::Output: Send,
    T: Topology,
{
    match options.transport {
        Transport::Threads => run_threads(topology, procs, options),
        Transport::TcpLoopback => crate::tcp::run_tcp(topology, procs, options),
    }
}
