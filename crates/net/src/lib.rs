//! `anonring_net` — real-transport execution of anonymous-ring algorithms.
//!
//! The workspace's third execution substrate, after the synchronous and
//! asynchronous simulators: each ring processor becomes an OS thread, each
//! directed link a bounded FIFO channel (in-process, or a loopback TCP
//! connection), and the algorithms — unchanged [`AsyncProcess`]
//! implementations — run against real concurrency with configurable
//! delivery jitter. Anonymity is preserved by construction: a process is
//! built from `(algorithm, n, input)` alone and speaks only through its
//! local ports; the ring wiring lives in the runtime's metering hub,
//! exactly where the simulators keep it.
//!
//! Three properties tie the transport back to the paper's cost model:
//!
//! 1. **One metering path.** Every send crosses the [`hub`](crate::runtime)
//!    exactly once, driving the same `CostMeter` the simulators use, so
//!    message and bit complexities mean the same thing on real links.
//! 2. **The same event stream.** Runs log the simulator's `TraceEvent`s
//!    with full causal stamps (seq, Lamport, parent), so flight
//!    recordings, telemetry and causal-DAG tooling consume net runs with
//!    no changes.
//! 3. **Sim conformance.** The [`conformance`] oracle re-executes any net
//!    job under the async simulator and certifies that outputs, total
//!    messages and total bits agree — the schedule-independent core of the
//!    model. See `DESIGN.md` §S22 for why per-epoch quantities are
//!    excluded.
//!
//! ```
//! use anonring_core::algorithms::driver::Audited;
//! use anonring_net::{certify, NetOptions};
//!
//! let algorithm = Audited::SyncAnd;
//! let inputs = [1, 1, 1];
//! let topology = algorithm.topology(3, &inputs).unwrap();
//! let certified = certify(
//!     &topology,
//!     || algorithm.procs(3, &inputs).unwrap(),
//!     &NetOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(certified.net.outputs().len(), 3);
//! assert_eq!(certified.net.messages, certified.sim.messages);
//! ```
//!
//! [`AsyncProcess`]: anonring_sim::r#async::AsyncProcess

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod conformance;
mod hub;
mod inbox;
mod jitter;
pub mod manifest;
pub mod runtime;
mod tcp;
pub mod wire;

pub use cluster::{certify_cluster, ClusterCertified, ClusterError, Handshake, ShardReport};
pub use conformance::{certify, certify_with, compare, Certified, ConformanceError};
pub use manifest::{ClusterManifest, ManifestError, ShardSpec, MANIFEST_VERSION};
pub use runtime::{run, run_threads, NetError, NetOptions, NetReport, Transport};
pub use wire::{Wire, WireError};
