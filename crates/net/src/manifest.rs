//! Cluster host manifests: the one JSON document every `ringd --cluster`
//! process reads (S27).
//!
//! A manifest pins a whole cluster run: the job (algorithm, ring size,
//! inputs, seed, net options) and the shard map — which host owns which
//! contiguous block of processors and where it listens. Every shard
//! parses the same file, re-renders it canonically, and hashes the bytes
//! ([`ClusterManifest::digest`], FNV-1a); the digest rides the link
//! handshake so two processes reading *different* manifests refuse to
//! exchange a single payload frame. Hashing the canonical rendering (not
//! the input text) makes the digest whitespace- and key-order-independent
//! — only a semantic difference changes it.
//!
//! The JSON surface is hand-rolled like everywhere else in the workspace:
//! a small recursive-descent reader below (objects, arrays, strings,
//! unsigned integers, booleans — all the manifest and the handshake need)
//! and canonical rendering with fields in fixed order.

use std::fmt;
use std::ops::Range;

/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u64 = 1;

/// One host's slice of the ring: shard `id` listens on `addr` and owns
/// processors `start .. start + count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard id; shard 0 is the coordinator.
    pub id: u64,
    /// `host:port` the shard listens on for cross-shard links and the
    /// control plane.
    pub addr: String,
    /// First owned processor (global index).
    pub start: usize,
    /// Number of owned processors (≥ 1).
    pub count: usize,
}

/// The parsed, validated cluster manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    /// Manifest format version (must equal [`MANIFEST_VERSION`]).
    pub version: u64,
    /// Human label, carried into recording metas.
    pub label: String,
    /// Audited algorithm name (resolved by the driver at run time).
    pub algorithm: String,
    /// Ring size.
    pub n: usize,
    /// Per-processor inputs; empty means "driver defaults".
    pub inputs: Vec<u8>,
    /// Delivery-jitter seed shared by all shards.
    pub seed: u64,
    /// Per-port inbox capacity.
    pub capacity: usize,
    /// Maximum injected delivery delay in microseconds.
    pub max_delay_us: u64,
    /// Run deadline in milliseconds.
    pub timeout_ms: u64,
    /// The shard map: ids `0..shards.len()`, contiguous processor ranges
    /// covering exactly `0..n`.
    pub shards: Vec<ShardSpec>,
}

/// Why a manifest was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The text is not the JSON this reader understands.
    Parse {
        /// What went wrong, with byte offset.
        detail: String,
    },
    /// The JSON parsed but violates a manifest invariant.
    Invalid {
        /// Which invariant, in words.
        detail: String,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse { detail } => write!(f, "manifest parse error: {detail}"),
            ManifestError::Invalid { detail } => write!(f, "invalid manifest: {detail}"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn invalid(detail: impl Into<String>) -> ManifestError {
    ManifestError::Invalid {
        detail: detail.into(),
    }
}

impl ClusterManifest {
    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Parse`] on malformed JSON, [`ManifestError::Invalid`]
    /// when the shard map does not tile `0..n` (or any other invariant
    /// fails).
    pub fn parse(text: &str) -> Result<ClusterManifest, ManifestError> {
        let value = Json::parse(text).map_err(|detail| ManifestError::Parse { detail })?;
        let obj = value
            .object()
            .ok_or_else(|| invalid("top level must be an object"))?;
        let field = |name: &str| -> Result<&Json, ManifestError> {
            obj.iter()
                .find(|(key, _)| key == name)
                .map(|(_, v)| v)
                .ok_or_else(|| invalid(format!("missing \"{name}\"")))
        };
        let num = |name: &str| -> Result<u64, ManifestError> {
            field(name)?
                .number()
                .ok_or_else(|| invalid(format!("\"{name}\" must be an unsigned integer")))
        };
        let text_field = |name: &str| -> Result<String, ManifestError> {
            Ok(field(name)?
                .string()
                .ok_or_else(|| invalid(format!("\"{name}\" must be a string")))?
                .to_string())
        };
        let version = num("version")?;
        if version != MANIFEST_VERSION {
            return Err(invalid(format!(
                "manifest version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let n = usize::try_from(num("n")?).map_err(|_| invalid("\"n\" out of range"))?;
        let inputs = match obj.iter().find(|(key, _)| key == "inputs") {
            None => Vec::new(),
            Some((_, v)) => {
                let arr = v
                    .array()
                    .ok_or_else(|| invalid("\"inputs\" must be an array"))?;
                let mut inputs = Vec::with_capacity(arr.len());
                for item in arr {
                    let byte = item
                        .number()
                        .and_then(|v| u8::try_from(v).ok())
                        .ok_or_else(|| invalid("\"inputs\" entries must be bytes"))?;
                    inputs.push(byte);
                }
                inputs
            }
        };
        if !inputs.is_empty() && inputs.len() != n {
            return Err(invalid(format!("{} inputs for n = {n}", inputs.len())));
        }
        let shard_values = field("shards")?
            .array()
            .ok_or_else(|| invalid("\"shards\" must be an array"))?;
        let mut shards = Vec::with_capacity(shard_values.len());
        for value in shard_values {
            let entry = value
                .object()
                .ok_or_else(|| invalid("each shard must be an object"))?;
            let get = |name: &str| -> Result<&Json, ManifestError> {
                entry
                    .iter()
                    .find(|(key, _)| key == name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| invalid(format!("shard missing \"{name}\"")))
            };
            let shard_num = |name: &str| -> Result<u64, ManifestError> {
                get(name)?
                    .number()
                    .ok_or_else(|| invalid(format!("shard \"{name}\" must be an unsigned integer")))
            };
            shards.push(ShardSpec {
                id: shard_num("id")?,
                addr: get("addr")?
                    .string()
                    .ok_or_else(|| invalid("shard \"addr\" must be a string"))?
                    .to_string(),
                start: usize::try_from(shard_num("start")?)
                    .map_err(|_| invalid("shard \"start\" out of range"))?,
                count: usize::try_from(shard_num("count")?)
                    .map_err(|_| invalid("shard \"count\" out of range"))?,
            });
        }
        let manifest = ClusterManifest {
            version,
            label: text_field("label")?,
            algorithm: text_field("algorithm")?,
            n,
            inputs,
            seed: num("seed")?,
            capacity: usize::try_from(num("capacity")?)
                .map_err(|_| invalid("\"capacity\" out of range"))?,
            max_delay_us: num("max_delay_us")?,
            timeout_ms: num("timeout_ms")?,
            shards,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    fn validate(&self) -> Result<(), ManifestError> {
        if self.n < 2 {
            return Err(invalid("n must be at least 2"));
        }
        if self.capacity == 0 {
            return Err(invalid("capacity must be positive"));
        }
        if self.shards.is_empty() {
            return Err(invalid("at least one shard required"));
        }
        let mut next_start = 0usize;
        for (k, shard) in self.shards.iter().enumerate() {
            if shard.id != k as u64 {
                return Err(invalid(format!(
                    "shard ids must be 0..{} in order (found {} at position {k})",
                    self.shards.len(),
                    shard.id
                )));
            }
            if shard.addr.is_empty() {
                return Err(invalid(format!("shard {k} has an empty addr")));
            }
            if shard.count == 0 {
                return Err(invalid(format!("shard {k} owns no processors")));
            }
            if shard.start != next_start {
                return Err(invalid(format!(
                    "shard {k} starts at {} (expected {next_start}: ranges must be contiguous)",
                    shard.start
                )));
            }
            next_start = shard.start + shard.count;
        }
        if next_start != self.n {
            return Err(invalid(format!(
                "shards cover 0..{next_start} but n = {}",
                self.n
            )));
        }
        Ok(())
    }

    /// The shard owning global processor `proc`, if `proc < n`.
    #[must_use]
    pub fn owner_of(&self, proc: usize) -> Option<u64> {
        self.shards
            .iter()
            .find(|shard| shard.start <= proc && proc < shard.start + shard.count)
            .map(|shard| shard.id)
    }

    /// The processor range owned by shard `id`.
    #[must_use]
    pub fn local_range(&self, id: u64) -> Option<Range<usize>> {
        self.shard(id)
            .map(|shard| shard.start..shard.start + shard.count)
    }

    /// The shard record for `id`.
    #[must_use]
    pub fn shard(&self, id: u64) -> Option<&ShardSpec> {
        usize::try_from(id).ok().and_then(|k| self.shards.get(k))
    }

    /// Canonical rendering: fixed field order, no whitespace. Parsing this
    /// back yields an equal manifest; the [`digest`](Self::digest) is
    /// computed over these bytes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"version\":{},\"label\":\"{}\",\"algorithm\":\"{}\",\"n\":{},\"inputs\":[",
            self.version,
            json_escape(&self.label),
            json_escape(&self.algorithm),
            self.n,
        ));
        for (k, byte) in self.inputs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&byte.to_string());
        }
        out.push_str(&format!(
            "],\"seed\":{},\"capacity\":{},\"max_delay_us\":{},\"timeout_ms\":{},\"shards\":[",
            self.seed, self.capacity, self.max_delay_us, self.timeout_ms,
        ));
        for (k, shard) in self.shards.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"addr\":\"{}\",\"start\":{},\"count\":{}}}",
                shard.id,
                json_escape(&shard.addr),
                shard.start,
                shard.count,
            ));
        }
        out.push_str("]}");
        out
    }

    /// FNV-1a over the canonical rendering — the value both ends of every
    /// cluster link compare during the handshake.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

/// FNV-1a 64-bit over raw bytes.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a string for a JSON string literal (the subset the manifest
/// can contain: quotes, backslashes and control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — the minimal shape manifests and cluster
/// handshakes need (numbers are unsigned integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Json {
    /// Key/value pairs in document order (duplicates kept; first wins on
    /// lookup).
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    String(String),
    /// An unsigned integer.
    Number(u64),
    /// A boolean.
    Bool(bool),
    /// JSON null.
    Null,
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    pub(crate) fn object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn string(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn number(&self) -> Option<u64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// First value under `name` in an object.
    pub(crate) fn get(&self, name: &str) -> Option<&Json> {
        self.object()?
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, v)| v)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {}",
            char::from(want),
            *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(&c) => Err(format!("unexpected '{}' at offset {}", char::from(c), *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
        return Err(format!(
            "only unsigned integers are accepted (offset {start})"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'/') => b'/',
                    Some(b'n') => b'\n',
                    Some(b'r') => b'\r',
                    Some(b't') => b'\t',
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *pos))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *pos))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 5;
                        continue;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{ClusterManifest, ManifestError, ShardSpec, MANIFEST_VERSION};

    fn demo() -> ClusterManifest {
        ClusterManifest {
            version: MANIFEST_VERSION,
            label: "demo".into(),
            algorithm: "async-or".into(),
            n: 6,
            inputs: vec![1, 0, 1, 0, 1, 0],
            seed: 7,
            capacity: 8,
            max_delay_us: 0,
            timeout_ms: 10_000,
            shards: vec![
                ShardSpec {
                    id: 0,
                    addr: "127.0.0.1:4400".into(),
                    start: 0,
                    count: 2,
                },
                ShardSpec {
                    id: 1,
                    addr: "127.0.0.1:4401".into(),
                    start: 2,
                    count: 4,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let m = demo();
        let parsed = ClusterManifest::parse(&m.render()).expect("round trip");
        assert_eq!(parsed, m);
        assert_eq!(parsed.digest(), m.digest());
    }

    #[test]
    fn digest_ignores_formatting_but_not_semantics() {
        let m = demo();
        let pretty = m.render().replace(",\"seed\"", " ,\n  \"seed\"");
        let reparsed = ClusterManifest::parse(&pretty).expect("whitespace tolerated");
        assert_eq!(reparsed.digest(), m.digest());
        let mut other = demo();
        other.seed = 8;
        assert_ne!(other.digest(), m.digest());
    }

    #[test]
    fn owner_and_range_follow_the_shard_map() {
        let m = demo();
        assert_eq!(m.owner_of(0), Some(0));
        assert_eq!(m.owner_of(1), Some(0));
        assert_eq!(m.owner_of(2), Some(1));
        assert_eq!(m.owner_of(5), Some(1));
        assert_eq!(m.owner_of(6), None);
        assert_eq!(m.local_range(1), Some(2..6));
        assert_eq!(m.local_range(2), None);
    }

    #[test]
    fn gaps_overlaps_and_bad_ids_are_rejected() {
        let mut gap = demo();
        gap.shards[1].start = 3;
        let err = ClusterManifest::parse(&gap.render()).expect_err("gap");
        assert!(matches!(err, ManifestError::Invalid { .. }));
        let mut short = demo();
        short.shards[1].count = 3;
        assert!(ClusterManifest::parse(&short.render()).is_err());
        let mut ids = demo();
        ids.shards[1].id = 2;
        assert!(ClusterManifest::parse(&ids.render()).is_err());
    }

    #[test]
    fn empty_inputs_mean_driver_defaults() {
        let mut m = demo();
        m.inputs.clear();
        let parsed = ClusterManifest::parse(&m.render()).expect("no inputs");
        assert!(parsed.inputs.is_empty());
    }

    #[test]
    fn wrong_version_is_named() {
        let text = demo().render().replace("\"version\":1", "\"version\":9");
        let err = ClusterManifest::parse(&text).expect_err("version");
        assert!(err.to_string().contains('9'));
    }
}
