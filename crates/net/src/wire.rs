//! Binary codecs for messages crossing a real link.
//!
//! The TCP transport needs an octet encoding of each algorithm's message
//! alphabet. [`Wire`] is deliberately *not* the cost model:
//! [`anonring_sim::message::Message::bit_len`] defines the paper's
//! accounted bit complexity, while `Wire` is a practical framing (whole
//! bytes, length prefixes) whose size is irrelevant to every reported
//! number. Codecs must round-trip exactly — the conformance oracle
//! compares outputs across transports, so a lossy codec would surface as
//! a conformance failure.

use std::fmt;

use anonring_core::algorithms::async_input_dist::DistMsg;
use anonring_core::algorithms::driver::JobMsg;
use anonring_core::algorithms::dyn_broadcast::BcastMsg;
use anonring_core::algorithms::orientation::OrientMsg;
use anonring_core::algorithms::sync_input_dist::IdMsg;
use anonring_sim::synchronizer::Envelope;
use anonring_sim::Port;
use anonring_words::Word;

/// A malformed or truncated wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the bytes.
    pub detail: String,
}

impl WireError {
    fn new(detail: impl Into<String>) -> WireError {
        WireError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

/// An octet encoding for one message type. Implementations append to the
/// output buffer and consume from the front of the input slice, so codecs
/// compose by concatenation.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated input or an invalid tag.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;
}

/// Splits `n` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::new(format!(
            "truncated {what}: need {n} bytes, have {}",
            input.len()
        )));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> Result<u8, WireError> {
        Ok(take(input, 1, "u8")?[0])
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<u64, WireError> {
        let bytes = take(input, 8, "u64")?;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("take returned 8 bytes"),
        ))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<bool, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::new(format!("invalid bool tag {tag}"))),
        }
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> Result<(), WireError> {
        Ok(())
    }
}

impl Wire for Port {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Port::Left => 0,
            Port::Right => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Port, WireError> {
        match u8::decode(input)? {
            0 => Ok(Port::Left),
            1 => Ok(Port::Right),
            tag => Err(WireError::new(format!("invalid port tag {tag}"))),
        }
    }
}

impl<M: Wire> Wire for Option<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Option<M>, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(M::decode(input)?)),
            tag => Err(WireError::new(format!("invalid option tag {tag}"))),
        }
    }
}

impl Wire for Word {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_slice());
        // The copy into the frame is the codec's per-message allocation
        // cost the S26 profiler accounts (symbol bytes, not framing).
        anonring_sim::profile::record_word_clone_bytes(self.len() as u64);
    }

    fn decode(input: &mut &[u8]) -> Result<Word, WireError> {
        let len = usize::try_from(u64::decode(input)?)
            .map_err(|_| WireError::new("word length overflows usize"))?;
        let symbols = take(input, len, "word symbols")?.to_vec();
        anonring_sim::profile::record_word_clone_bytes(len as u64);
        Ok(Word::from_symbols(symbols))
    }
}

impl<M: Wire> Wire for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle.encode(out);
        self.closing.encode(out);
        self.payload.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Envelope<M>, WireError> {
        Ok(Envelope {
            cycle: u64::decode(input)?,
            closing: bool::decode(input)?,
            payload: Option::<M>::decode(input)?,
        })
    }
}

impl Wire for DistMsg<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin_port.encode(out);
        self.input.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<DistMsg<u8>, WireError> {
        Ok(DistMsg {
            origin_port: Port::decode(input)?,
            input: u8::decode(input)?,
        })
    }
}

impl Wire for IdMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        let (tag, word) = match self {
            IdMsg::Label(w) => (0u8, w),
            IdMsg::Collect(w) => (1, w),
            IdMsg::Broadcast(w) => (2, w),
        };
        out.push(tag);
        word.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<IdMsg, WireError> {
        let tag = u8::decode(input)?;
        let word = Word::decode(input)?;
        match tag {
            0 => Ok(IdMsg::Label(word)),
            1 => Ok(IdMsg::Collect(word)),
            2 => Ok(IdMsg::Broadcast(word)),
            _ => Err(WireError::new(format!("invalid IdMsg tag {tag}"))),
        }
    }
}

impl Wire for OrientMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OrientMsg::Marker(port) => {
                out.push(0);
                port.encode(out);
            }
            OrientMsg::Seg(bit) => {
                out.push(1);
                bit.encode(out);
            }
            OrientMsg::Fin(bit, port) => {
                out.push(2);
                bit.encode(out);
                port.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<OrientMsg, WireError> {
        match u8::decode(input)? {
            0 => Ok(OrientMsg::Marker(Port::decode(input)?)),
            1 => Ok(OrientMsg::Seg(u8::decode(input)?)),
            2 => Ok(OrientMsg::Fin(u8::decode(input)?, Port::decode(input)?)),
            tag => Err(WireError::new(format!("invalid OrientMsg tag {tag}"))),
        }
    }
}

impl Wire for JobMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JobMsg::Dist(m) => {
                out.push(0);
                m.encode(out);
            }
            JobMsg::SyncDist(m) => {
                out.push(1);
                m.encode(out);
            }
            JobMsg::Orient(m) => {
                out.push(2);
                m.encode(out);
            }
            JobMsg::Start(m) => {
                out.push(3);
                m.encode(out);
            }
            JobMsg::And(m) => {
                out.push(4);
                m.encode(out);
            }
            JobMsg::Bcast(m) => {
                out.push(5);
                m.0.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<JobMsg, WireError> {
        match u8::decode(input)? {
            0 => Ok(JobMsg::Dist(DistMsg::decode(input)?)),
            1 => Ok(JobMsg::SyncDist(Envelope::decode(input)?)),
            2 => Ok(JobMsg::Orient(Envelope::decode(input)?)),
            3 => Ok(JobMsg::Start(Envelope::decode(input)?)),
            4 => Ok(JobMsg::And(Envelope::decode(input)?)),
            5 => Ok(JobMsg::Bcast(BcastMsg(u8::decode(input)?))),
            tag => Err(WireError::new(format!("invalid JobMsg tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Wire, WireError};
    use anonring_core::algorithms::async_input_dist::DistMsg;
    use anonring_core::algorithms::driver::JobMsg;
    use anonring_core::algorithms::orientation::OrientMsg;
    use anonring_core::algorithms::sync_input_dist::IdMsg;
    use anonring_sim::synchronizer::Envelope;
    use anonring_sim::Port;
    use anonring_words::Word;

    fn round_trip<M: Wire + PartialEq + std::fmt::Debug>(value: M) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let back = M::decode(&mut input).expect("decodes");
        assert_eq!(back, value);
        assert!(input.is_empty(), "no trailing bytes for {value:?}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(Port::Left);
        round_trip(Port::Right);
        round_trip(Some(7u64));
        round_trip(None::<u64>);
        round_trip(Word::from_symbols(vec![0, 1, 1, 0]));
        round_trip(Word::from_symbols(vec![]));
    }

    #[test]
    fn every_job_message_variant_round_trips() {
        let samples = vec![
            JobMsg::Dist(DistMsg {
                origin_port: Port::Right,
                input: 200,
            }),
            JobMsg::SyncDist(Envelope {
                cycle: 3,
                payload: Some(IdMsg::Label(Word::from_symbols(vec![1, 0]))),
                closing: false,
            }),
            JobMsg::SyncDist(Envelope {
                cycle: 9,
                payload: Some(IdMsg::Collect(Word::from_symbols(vec![0]))),
                closing: true,
            }),
            JobMsg::SyncDist(Envelope {
                cycle: 1,
                payload: Some(IdMsg::Broadcast(Word::from_symbols(vec![1, 1, 0]))),
                closing: false,
            }),
            JobMsg::Orient(Envelope {
                cycle: 0,
                payload: Some(OrientMsg::Marker(Port::Left)),
                closing: false,
            }),
            JobMsg::Orient(Envelope {
                cycle: 2,
                payload: Some(OrientMsg::Seg(1)),
                closing: false,
            }),
            JobMsg::Orient(Envelope {
                cycle: 5,
                payload: Some(OrientMsg::Fin(0, Port::Right)),
                closing: true,
            }),
            JobMsg::Start(Envelope {
                cycle: 7,
                payload: Some(42),
                closing: false,
            }),
            JobMsg::And(Envelope {
                cycle: 4,
                payload: None,
                closing: true,
            }),
        ];
        for sample in samples {
            round_trip(sample);
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_errors_not_panics() {
        let mut empty: &[u8] = &[];
        assert!(matches!(u64::decode(&mut empty), Err(WireError { .. })));
        let mut bad_tag: &[u8] = &[9];
        assert!(Port::decode(&mut bad_tag).is_err());
        let mut bad_job: &[u8] = &[200];
        assert!(JobMsg::decode(&mut bad_job).is_err());
        // A word claiming more symbols than the frame holds.
        let mut lying: Vec<u8> = Vec::new();
        1000u64.encode(&mut lying);
        lying.push(1);
        let mut input = lying.as_slice();
        assert!(Word::decode(&mut input).is_err());
    }
}
