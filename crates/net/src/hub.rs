//! The metering hub: one lock, one meter, one event log — per shard.
//!
//! The simulators funnel every send through `LinkFabric::send`, so the
//! message, bit and per-epoch numbers have exactly one definition. The real
//! transport keeps that property with the [`ShardHub`]: every worker thread
//! reports each send, delivery and halt to its hub, which assigns the
//! send sequence number, meters the cost, and appends the
//! [`TraceEvent`] — all inside a single critical section per event, so the
//! recorded stream satisfies the same causal-ordering invariants
//! (seq-in-file-order, parent-before-child, send-before-deliver) the
//! flight-recorder checker enforces on simulator recordings.
//!
//! A single-process run uses one hub for the whole ring (`ShardHub::new`,
//! shard 0, self-terminating). A cluster run (S27) gives each `ringd
//! --cluster` process its own hub over the *same* full-topology wiring:
//! seqs carry the shard id in their high bits
//! ([`anonring_sim::telemetry::SHARD_SEQ_SHIFT`]) so they stay globally
//! unique without cross-host coordination, and termination moves to the
//! cluster control plane — a coordinated hub never declares itself done;
//! it exposes monotone sent/delivered/halted counters and accepts an
//! external verdict ([`ShardHub::finish`]) from the coordinator instead.
//!
//! The hub also owns the topology wiring. Workers speak only in terms of
//! their local ports; the hub routes a send to the destination inbox and
//! arrival port. This is the **substrate** side of the anonymity boundary — the
//! same place `LinkFabric` sits in the simulators — which is why the
//! topology lookup below carries the lint exemption the simulator runtime
//! enjoys by location.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

use anonring_sim::profile;
use anonring_sim::runtime::{CausalStamp, CostMeter, SendEvent, Span, TraceEvent};
use anonring_sim::{PortId, Topology};

/// Destination of one directed link: receiving processor and its local
/// arrival port.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkEnd {
    /// Receiving processor index.
    pub to: usize,
    /// The receiver's local port the message shows up on.
    pub arrival: PortId,
}

/// Mutable run state, guarded by the hub's single mutex.
struct HubInner {
    meter: CostMeter,
    events: Vec<TraceEvent>,
    /// Wall-clock microseconds since hub creation, one per event, stamped
    /// in the same critical section that appends the event — so stamp `k`
    /// always belongs to event `k` and stamps are monotone in file order.
    wall_stamps: Vec<u64>,
    next_seq: u64,
    /// Sends routed by this shard, monotone. `sent - delivered` is the
    /// in-flight count only in single-process mode; a coordinated shard
    /// delivers remote-origin sends it never routed, so the two counters
    /// are reported to the control plane separately and only their
    /// *cluster-wide* difference means "in flight".
    sent: u64,
    /// Deliveries (and drops) recorded by this shard, monotone.
    delivered: u64,
    /// High-water mark of `sent - delivered` over the run (saturating, so
    /// a remote-heavy shard reports 0 rather than wrapping).
    peak_in_flight: u64,
    /// Processors that have halted.
    halted: usize,
    /// Workers currently parked with an empty inbox.
    waiting: usize,
    /// All processors halted and no message in flight.
    done: bool,
    /// Quiescent (nothing in flight, everyone parked) but not all halted —
    /// the transport analogue of `SimError::QuiescentWithoutHalt`.
    stalled: bool,
    /// The coordinator gave up (deadline or external abort).
    cancelled: bool,
}

/// Terminal state of a run, as observed by the coordinator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Outcome {
    /// Every processor halted and the links drained.
    pub done: bool,
    /// Quiescent without all processors halting.
    pub stalled: bool,
    /// Deadline elapsed first.
    pub cancelled: bool,
    /// Processors halted by the end.
    pub halted: usize,
}

/// Shared run coordinator: wiring, meter, trace log and termination state.
/// One per process — the whole ring in single-process mode, one shard of
/// it in cluster mode.
pub(crate) struct ShardHub {
    n: usize,
    /// High bits OR-ed onto every assigned seq (shard id shifted by
    /// `SHARD_SEQ_SHIFT`); 0 in single-process mode.
    seq_tag: u64,
    /// True when termination is decided by the cluster control plane:
    /// `enter_wait`/`check_done` never self-terminate and the run ends
    /// only via [`ShardHub::finish`] or [`ShardHub::cancel`].
    coordinated: bool,
    /// `wiring[from][pidx(local port)]` — fixed for the run.
    wiring: Vec<Vec<LinkEnd>>,
    inner: Mutex<HubInner>,
    /// Signalled on every state change that could end the run.
    progress: Condvar,
    /// Origin of the wall-clock stamps.
    started: Instant,
    /// Times a sender (or TCP reader pump) found a destination inbox full
    /// and had to wait — lock-free so the hot backpressure path never
    /// touches the hub mutex.
    backpressure: Arc<AtomicU64>,
}

/// Serving-plane counters the hub accumulates alongside the meter:
/// link-level congestion (peak in-flight) and backpressure stalls.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HubStats {
    /// High-water mark of routed-but-undelivered sends.
    pub peak_in_flight: u64,
    /// Full-inbox waits observed by senders and reader pumps.
    pub backpressure_waits: u64,
}

impl ShardHub {
    /// Builds the single-process hub for `topology` (shard 0 of 1,
    /// self-terminating), resolving every directed link once.
    pub(crate) fn new(topology: &dyn Topology) -> ShardHub {
        ShardHub::with_shard(topology, 0, false)
    }

    /// Builds the hub for one cluster shard: seqs are tagged with
    /// `shard`'s id and termination is left to the control plane.
    pub(crate) fn sharded(topology: &dyn Topology, shard: u64) -> ShardHub {
        ShardHub::with_shard(topology, shard, true)
    }

    fn with_shard(topology: &dyn Topology, shard: u64, coordinated: bool) -> ShardHub {
        let wiring = (0..topology.n())
            .map(|i| {
                (0..topology.ports(i))
                    .map(|k| {
                        // anonlint: allow(anonymity-breach) -- substrate wiring: the hub realises the topology like LinkFabric does; algorithms only ever see local ports
                        let (to, arrival) = topology.neighbor_port(i, PortId::new(k as u16));
                        LinkEnd { to, arrival }
                    })
                    .collect()
            })
            .collect();
        ShardHub {
            n: topology.n(),
            seq_tag: shard << anonring_sim::telemetry::SHARD_SEQ_SHIFT,
            coordinated,
            wiring,
            inner: Mutex::new(HubInner {
                meter: CostMeter::new(),
                events: Vec::new(),
                wall_stamps: Vec::new(),
                next_seq: 0,
                sent: 0,
                delivered: 0,
                peak_in_flight: 0,
                halted: 0,
                waiting: 0,
                done: false,
                stalled: false,
                cancelled: false,
            }),
            progress: Condvar::new(),
            started: Instant::now(),
            backpressure: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Microseconds since hub creation, saturating at `u64::MAX`.
    fn now_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// A lock-free handle senders use to count full-inbox waits.
    pub(crate) fn backpressure_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.backpressure)
    }

    /// Counts one full-inbox wait (TCP reader pumps call this directly).
    pub(crate) fn note_backpressure(&self) {
        self.backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// The outgoing link ends of processor `from`, indexed by
    /// [`crate::inbox::pidx`] of the local send port.
    pub(crate) fn links_of(&self, from: usize) -> &[LinkEnd] {
        &self.wiring[from]
    }

    fn lock(&self) -> MutexGuard<'_, HubInner> {
        self.inner.lock().expect("hub lock poisoned")
    }

    /// Like [`ShardHub::lock`], but wrapped in the S26 profiler probes: a
    /// `try_lock` first (a miss counts as contention), acquire-wait
    /// recorded per [`profile::HubOp`], and a [`profile::HoldTimer`]
    /// the caller binds alongside the guard so the hold duration is
    /// recorded right before the unlock. When the profiler is off this
    /// is one relaxed atomic load on top of the plain lock.
    fn lock_timed(&self, op: profile::HubOp) -> (MutexGuard<'_, HubInner>, profile::HoldTimer) {
        if !profile::enabled() {
            return (self.lock(), profile::HoldTimer::start(op));
        }
        let waited = profile::stamp();
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                profile::record_contention();
                self.inner.lock().expect("hub lock poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("hub lock poisoned"),
        };
        profile::record_lock_wait(op, waited);
        (guard, profile::HoldTimer::start(op))
    }

    /// Meters one send by `from` on its local `port` and logs the
    /// [`TraceEvent::Send`]; returns the causal stamp the parcel carries.
    /// Seq assignment and event append happen atomically, so seqs appear
    /// in increasing order in the recorded stream.
    #[allow(clippy::too_many_arguments)] // the full send metadata, same shape as the fabric's SendMeta
    pub(crate) fn route_send(
        &self,
        from: usize,
        port: PortId,
        bits: usize,
        time: u64,
        lamport: u64,
        parent: Option<u64>,
        span: Option<Span>,
    ) -> CausalStamp {
        let end = self.wiring[from][crate::inbox::pidx(port)];
        let (mut inner, _hold) = self.lock_timed(profile::HubOp::Send);
        let now = self.now_us();
        let timer = profile::SectionTimer::begin(profile::HubSection::Stamp);
        let seq = self.seq_tag | inner.next_seq;
        inner.next_seq += 1;
        inner.wall_stamps.push(now);
        timer.finish();
        let timer = profile::SectionTimer::begin(profile::HubSection::Meter);
        inner.sent += 1;
        let in_flight = inner.sent.saturating_sub(inner.delivered);
        inner.peak_in_flight = inner.peak_in_flight.max(in_flight);
        inner.meter.record_send(time, bits);
        timer.finish();
        let timer = profile::SectionTimer::begin(profile::HubSection::Trace);
        inner.events.push(TraceEvent::Send(SendEvent {
            cycle: time,
            from,
            to: end.to,
            port: end.arrival,
            bits,
            seq,
            lamport,
            parent,
            span,
        }));
        timer.finish();
        CausalStamp {
            seq,
            lamport,
            parent,
        }
    }

    /// Meters one delivery (or drop, when the receiver already halted) and
    /// logs the [`TraceEvent::Deliver`].
    pub(crate) fn deliver(&self, time: u64, to: usize, port: PortId, seq: u64, dropped: bool) {
        let (mut inner, _hold) = self.lock_timed(profile::HubOp::Deliver);
        let now = self.now_us();
        let timer = profile::SectionTimer::begin(profile::HubSection::Meter);
        inner.meter.record_delivery();
        if dropped {
            inner.meter.record_drop();
        }
        inner.delivered += 1;
        timer.finish();
        let timer = profile::SectionTimer::begin(profile::HubSection::Stamp);
        inner.wall_stamps.push(now);
        timer.finish();
        let timer = profile::SectionTimer::begin(profile::HubSection::Trace);
        inner.events.push(TraceEvent::Deliver {
            time,
            to,
            port,
            seq,
            dropped,
        });
        timer.finish();
        self.check_done(&mut inner);
    }

    /// Logs a processor's halt.
    pub(crate) fn halt(&self, processor: usize, time: u64) {
        let (mut inner, _hold) = self.lock_timed(profile::HubOp::Halt);
        let now = self.now_us();
        inner.wall_stamps.push(now);
        inner.events.push(TraceEvent::Halt { time, processor });
        inner.halted += 1;
        self.check_done(&mut inner);
    }

    /// Records that a worker is parking on an empty inbox. If every worker
    /// is now parked with nothing in flight, the run has terminated —
    /// successfully if everyone halted, as a stall otherwise.
    pub(crate) fn enter_wait(&self) {
        let mut inner = self.lock();
        inner.waiting += 1;
        if self.coordinated {
            return;
        }
        if inner.waiting == self.n
            && inner.sent == inner.delivered
            && !inner.done
            && !inner.cancelled
        {
            if inner.halted < self.n {
                inner.stalled = true;
            }
            inner.done = true;
            self.progress.notify_all();
        }
    }

    /// Records that a parked worker woke up again.
    pub(crate) fn exit_wait(&self) {
        self.lock().waiting -= 1;
    }

    /// Whether the run has reached a terminal state (done, stalled or
    /// cancelled) — workers poll this to know when to exit.
    pub(crate) fn is_over(&self) -> bool {
        let inner = self.lock();
        inner.done || inner.cancelled
    }

    /// Aborts the run (deadline or external cancellation).
    pub(crate) fn cancel(&self) {
        let mut inner = self.lock();
        inner.cancelled = true;
        self.progress.notify_all();
    }

    fn check_done(&self, inner: &mut HubInner) {
        if !self.coordinated
            && inner.halted == self.n
            && inner.sent == inner.delivered
            && !inner.done
        {
            inner.done = true;
            self.progress.notify_all();
        }
    }

    /// Monotone progress counters for the cluster control plane:
    /// `(halted, sent, delivered)`. Halted processors never send again, so
    /// once a shard reports all its locals halted its `sent` is final —
    /// which is what makes the coordinator's done check exact.
    pub(crate) fn counters(&self) -> (usize, u64, u64) {
        let inner = self.lock();
        (inner.halted, inner.sent, inner.delivered)
    }

    /// External verdict from the cluster coordinator: ends the run as
    /// done (`stalled = false`) or as a quiescent stall (`stalled =
    /// true`). Only meaningful on coordinated hubs, where no internal
    /// check ever sets these flags.
    pub(crate) fn finish(&self, stalled: bool) {
        let mut inner = self.lock();
        if inner.done || inner.cancelled {
            return;
        }
        inner.stalled = stalled;
        inner.done = true;
        self.progress.notify_all();
    }

    /// Blocks the coordinator until the run terminates or `deadline`
    /// passes; a missed deadline cancels the run.
    pub(crate) fn await_outcome(&self, deadline: Instant) -> Outcome {
        let mut inner = self.lock();
        loop {
            if inner.done || inner.cancelled {
                return Outcome {
                    done: inner.done,
                    stalled: inner.stalled,
                    cancelled: inner.cancelled,
                    halted: inner.halted,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                inner.cancelled = true;
                self.progress.notify_all();
                return Outcome {
                    done: false,
                    stalled: false,
                    cancelled: true,
                    halted: inner.halted,
                };
            }
            (inner, _) = self
                .progress
                .wait_timeout(inner, (deadline - now).min(Duration::from_millis(20)))
                .expect("hub lock poisoned");
        }
    }

    /// Consumes the hub, yielding the meter, the recorded event stream,
    /// the per-event wall stamps (same length and order as the events)
    /// and the serving-plane counters.
    pub(crate) fn into_parts(self) -> (CostMeter, Vec<TraceEvent>, Vec<u64>, HubStats) {
        let backpressure_waits = self.backpressure.load(Ordering::Relaxed);
        let inner = self.inner.into_inner().expect("hub lock poisoned");
        (
            inner.meter,
            inner.events,
            inner.wall_stamps,
            HubStats {
                peak_in_flight: inner.peak_in_flight,
                backpressure_waits,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ShardHub;
    use anonring_sim::{PortId, RingTopology};
    use std::time::{Duration, Instant};

    fn hub(n: usize) -> ShardHub {
        ShardHub::new(&RingTopology::oriented(n).expect("n >= 2"))
    }

    #[test]
    fn wiring_matches_the_topology() {
        let h = hub(3);
        let right = h.links_of(0)[crate::inbox::pidx(PortId::RIGHT)];
        assert_eq!((right.to, right.arrival), (1, PortId::LEFT));
        let left = h.links_of(0)[crate::inbox::pidx(PortId::LEFT)];
        assert_eq!((left.to, left.arrival), (2, PortId::RIGHT));
    }

    #[test]
    fn seqs_are_assigned_in_event_log_order() {
        let h = hub(2);
        let a = h.route_send(0, PortId::RIGHT, 4, 1, 1, None, None);
        let b = h.route_send(1, PortId::RIGHT, 4, 1, 1, None, None);
        assert_eq!((a.seq, b.seq), (0, 1));
        let (meter, events, stamps, stats) = h.into_parts();
        assert_eq!(meter.messages, 2);
        assert_eq!(meter.bits, 8);
        assert_eq!(events.len(), 2);
        assert_eq!(stamps.len(), events.len(), "one wall stamp per event");
        assert!(stamps[0] <= stamps[1], "stamps monotone in log order");
        assert_eq!(stats.peak_in_flight, 2);
        assert_eq!(stats.backpressure_waits, 0);
    }

    #[test]
    fn stats_track_peak_in_flight_and_backpressure() {
        let h = hub(2);
        let a = h.route_send(0, PortId::RIGHT, 1, 1, 1, None, None);
        h.deliver(1, 1, PortId::LEFT, a.seq, false);
        let b = h.route_send(0, PortId::RIGHT, 1, 2, 2, None, None);
        let c = h.route_send(1, PortId::RIGHT, 1, 2, 2, None, None);
        h.deliver(2, 1, PortId::LEFT, b.seq, false);
        h.deliver(2, 0, PortId::LEFT, c.seq, false);
        h.note_backpressure();
        let pressure = h.backpressure_handle();
        pressure.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        let (_, events, stamps, stats) = h.into_parts();
        assert_eq!(stats.peak_in_flight, 2, "two concurrent in-flight sends");
        assert_eq!(stats.backpressure_waits, 3);
        assert_eq!(stamps.len(), events.len());
    }

    #[test]
    fn run_completes_when_all_halt_and_links_drain() {
        let h = hub(2);
        let s = h.route_send(0, PortId::RIGHT, 1, 1, 1, None, None);
        h.halt(0, 0);
        h.halt(1, 0);
        assert!(!h.is_over(), "a message is still in flight");
        h.deliver(1, 1, PortId::LEFT, s.seq, true);
        assert!(h.is_over());
        let outcome = h.await_outcome(Instant::now() + Duration::from_secs(1));
        assert!(outcome.done && !outcome.stalled && !outcome.cancelled);
        assert_eq!(outcome.halted, 2);
    }

    #[test]
    fn full_quiescence_without_halts_is_a_stall() {
        let h = hub(2);
        h.enter_wait();
        h.enter_wait();
        let outcome = h.await_outcome(Instant::now() + Duration::from_secs(1));
        assert!(outcome.done && outcome.stalled);
    }

    #[test]
    fn a_missed_deadline_cancels_the_run() {
        let h = hub(2);
        let outcome = h.await_outcome(Instant::now());
        assert!(outcome.cancelled && !outcome.done);
        assert!(h.is_over());
    }

    #[test]
    fn lock_probes_tally_waits_holds_and_sections_when_profiling() {
        let session = anonring_sim::profile::session();
        let h = hub(2);
        let s = h.route_send(0, PortId::RIGHT, 1, 1, 1, None, None);
        h.deliver(1, 1, PortId::LEFT, s.seq, false);
        h.halt(0, 0);
        let reg = anonring_sim::profile::snapshot();
        let count = |name: &'static str, labels: &[(&'static str, &str)]| {
            let id = anonring_sim::telemetry::MetricId::with_labels(name, labels);
            reg.histograms()
                .find(|(got, _)| **got == id)
                .map(|(_, histogram)| histogram.count)
        };
        assert_eq!(count("hub_lock_wait_us", &[("op", "send")]), Some(1));
        assert_eq!(count("hub_lock_hold_us", &[("op", "send")]), Some(1));
        assert_eq!(count("hub_lock_hold_us", &[("op", "deliver")]), Some(1));
        assert_eq!(count("hub_lock_hold_us", &[("op", "halt")]), Some(1));
        // Send and deliver each time all three sections.
        assert_eq!(
            count("hub_lock_section_us", &[("section", "meter")]),
            Some(2)
        );
        assert_eq!(
            count("hub_lock_section_us", &[("section", "stamp")]),
            Some(2)
        );
        assert_eq!(
            count("hub_lock_section_us", &[("section", "trace")]),
            Some(2)
        );
        drop(session);
    }
}
