//! Multi-host cluster execution: one `ringd --cluster` process per shard
//! (S27).
//!
//! A cluster run splits the ring across processes by the
//! [`ClusterManifest`]'s shard map: each process owns a contiguous block
//! of processors, runs them as ordinary worker threads against its own
//! [`ShardHub`] sequencer, keeps intra-shard links in-process, and dials
//! every cross-shard directed link as a TCP connection speaking the
//! existing [`Wire`] frame codec. Nothing above the link layer changes:
//! workers, inboxes, causal clocks and metering are the single-process
//! code paths, so a cluster run is certified by the same conformance
//! oracle once its per-shard recordings are merged
//! ([`anonring_sim::telemetry::merge`]).
//!
//! ## Handshake
//!
//! Before any payload frame crosses a connection, the dialer sends one
//! JSON line — protocol version, manifest digest, wiring digest, its
//! shard id, and what the link is (a directed data link identified by the
//! sending processor and its local port, or the control link) — and the
//! acceptor replies `{"ok":true}` or an error line. A digest mismatch is
//! a structured rejection naming both digests
//! ([`ClusterError::ManifestDigestMismatch`]): two processes reading
//! different manifests, or builds wiring the topology differently, refuse
//! each other at the first byte, with no hang (all reads are bounded and
//! deadlined) and no panic.
//!
//! ## Termination
//!
//! Termination is global, so it moves to a control plane: every shard
//! except 0 dials shard 0 and streams monotone counters
//! `(halted, sent, delivered)`. Halted processors never send again, so
//! once a shard reports all its processors halted its `sent` is final —
//! when every shard is fully halted and the cluster-wide `sent` equals
//! `delivered`, the run is exactly done (no in-flight message can exist)
//! and shard 0 broadcasts the `done` verdict. Quiescence without full
//! halting (counters frozen over a stall window) is the distributed
//! analogue of `QuiescentWithoutHalt`; the wall-clock deadline backstops
//! everything else.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use anonring_core::algorithms::driver::{Audited, JobMsg, JobProc, JobTopology};
use anonring_sim::runtime::Observer;
use anonring_sim::telemetry::{FlightRecorder, Recording};
use anonring_sim::{PortId, Topology};

use std::sync::atomic::{AtomicBool, Ordering};

use crate::hub::ShardHub;
use crate::inbox::{Inbox, Parcel};
use crate::manifest::{json_escape, ClusterManifest, Json, ManifestError};
use crate::runtime::{worker, LocalPort, NetError, PushError, SendPort};
use crate::tcp::{read_link, TcpPort, READ_POLL};
use crate::wire::Wire;

/// Version of the cluster link protocol (handshake + control plane).
pub const CLUSTER_PROTOCOL_VERSION: u64 = 1;

/// Longest accepted handshake / control line, in bytes.
const LINE_LIMIT: usize = 4096;

/// Budget for completing one handshake once a connection is up.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Pause between connect attempts while a peer shard is still starting.
const CONNECT_RETRY: Duration = Duration::from_millis(20);

/// How often a non-coordinator shard reports its counters.
const CTRL_PERIOD: Duration = Duration::from_millis(5);

/// How long the cluster-wide counters must sit frozen (equal sent and
/// delivered, not all halted) before the coordinator declares a stall.
const STALL_WINDOW: Duration = Duration::from_millis(300);

/// A failed cluster run (or link establishment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The manifest itself was rejected.
    Manifest(ManifestError),
    /// The manifest names an algorithm this build does not know.
    UnknownAlgorithm {
        /// The unresolvable name.
        name: String,
    },
    /// The requested shard id is not in the manifest.
    UnknownShard {
        /// The absent shard id.
        shard: u64,
    },
    /// The algorithm driver rejected the job (bad n/inputs).
    Driver {
        /// The driver's message.
        detail: String,
    },
    /// The peer speaks a different cluster protocol version.
    ProtocolMismatch {
        /// Our protocol version.
        ours: u64,
        /// The peer's protocol version.
        theirs: u64,
    },
    /// The peer read a different manifest — both digests named, so the
    /// operator can diff the two files.
    ManifestDigestMismatch {
        /// Digest of the manifest this process read.
        ours: u64,
        /// Digest the peer presented.
        theirs: u64,
    },
    /// Same manifest, different realised wiring (mismatched builds).
    WiringDigestMismatch {
        /// Our topology's wiring digest.
        ours: u64,
        /// The peer's wiring digest.
        theirs: u64,
    },
    /// A malformed or inconsistent handshake line.
    Handshake {
        /// What was wrong with it.
        detail: String,
    },
    /// The peer refused our handshake; its error line is carried along.
    Rejected {
        /// The peer's rendered rejection.
        detail: String,
    },
    /// A socket-level failure outside the frame codec.
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The run itself failed after the links were up.
    Net(NetError),
    /// The shard recordings could not be merged (or the merged recording
    /// violates the causal invariants).
    Merge {
        /// The merge verdict, rendered.
        detail: String,
    },
    /// The reference simulation failed (the job itself is broken).
    Sim {
        /// The simulator's error, rendered.
        detail: String,
    },
    /// The merged cluster run disagrees with the simulator on a
    /// schedule-independent quantity.
    Mismatch {
        /// Which quantity differs (`"outputs"`, `"messages"`, `"bits"`).
        what: &'static str,
        /// The cluster side's value, rendered.
        cluster: String,
        /// The simulator side's value, rendered.
        sim: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Manifest(e) => write!(f, "{e}"),
            ClusterError::UnknownAlgorithm { name } => {
                write!(f, "unknown algorithm \"{name}\"")
            }
            ClusterError::UnknownShard { shard } => {
                write!(f, "shard {shard} is not in the manifest")
            }
            ClusterError::Driver { detail } => write!(f, "driver rejected the job: {detail}"),
            ClusterError::ProtocolMismatch { ours, theirs } => write!(
                f,
                "cluster protocol mismatch (ours {ours}, theirs {theirs})"
            ),
            ClusterError::ManifestDigestMismatch { ours, theirs } => write!(
                f,
                "manifest digest mismatch (ours {ours:#018x}, theirs {theirs:#018x})"
            ),
            ClusterError::WiringDigestMismatch { ours, theirs } => write!(
                f,
                "wiring digest mismatch (ours {ours:#018x}, theirs {theirs:#018x})"
            ),
            ClusterError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            ClusterError::Rejected { detail } => write!(f, "peer rejected handshake: {detail}"),
            ClusterError::Io { detail } => write!(f, "cluster I/O error: {detail}"),
            ClusterError::Net(e) => write!(f, "{e}"),
            ClusterError::Merge { detail } => write!(f, "{detail}"),
            ClusterError::Sim { detail } => {
                write!(f, "reference simulation failed: {detail}")
            }
            ClusterError::Mismatch { what, cluster, sim } => write!(
                f,
                "cluster/sim mismatch on {what}: cluster {cluster} vs sim {sim}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ManifestError> for ClusterError {
    fn from(e: ManifestError) -> ClusterError {
        ClusterError::Manifest(e)
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> ClusterError {
        ClusterError::Net(e)
    }
}

fn io_err(what: &str, e: impl std::fmt::Display) -> ClusterError {
    ClusterError::Io {
        detail: format!("{what}: {e}"),
    }
}

/// What one cluster connection is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// A directed data link: frames sent by global processor `from` out
    /// of its local port `port` (the acceptor resolves the receiving
    /// processor and arrival port from its own wiring — which the wiring
    /// digest guarantees is the same wiring).
    Data {
        /// The sending processor (global index).
        from: usize,
        /// The sender's local port index.
        port: u16,
    },
    /// The control link carrying counter reports and the final verdict.
    Ctrl,
}

/// The one JSON line a dialer sends before any payload frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// [`CLUSTER_PROTOCOL_VERSION`] of the dialing build.
    pub protocol: u64,
    /// [`ClusterManifest::digest`] of the manifest the dialer read.
    pub manifest_digest: u64,
    /// `Topology::wiring_digest` of the topology the dialer realised.
    pub wiring: u64,
    /// The dialing shard.
    pub shard: u64,
    /// What the connection will carry.
    pub link: LinkKind,
}

impl Handshake {
    /// Renders the handshake as one JSON line (newline included). Digests
    /// travel as fixed-width hex strings so the error path can echo them
    /// exactly as transmitted.
    #[must_use]
    pub fn render(&self) -> String {
        let link = match self.link {
            LinkKind::Data { from, port } => {
                format!("\"link\":\"data\",\"from\":{from},\"port\":{port}")
            }
            LinkKind::Ctrl => "\"link\":\"ctrl\"".to_string(),
        };
        format!(
            "{{\"proto\":{},\"manifest\":\"{:016x}\",\"wiring\":\"{:016x}\",\"shard\":{},{link}}}\n",
            self.protocol, self.manifest_digest, self.wiring, self.shard,
        )
    }

    /// Parses a received handshake line.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Handshake`] when the line is not a handshake.
    pub fn parse(line: &str) -> Result<Handshake, ClusterError> {
        let bad = |detail: &str| ClusterError::Handshake {
            detail: detail.to_string(),
        };
        let value = Json::parse(line).map_err(|detail| ClusterError::Handshake { detail })?;
        let digest = |name: &str| -> Result<u64, ClusterError> {
            let hex = value
                .get(name)
                .and_then(Json::string)
                .ok_or_else(|| bad(&format!("missing \"{name}\" digest")))?;
            u64::from_str_radix(hex, 16).map_err(|_| bad(&format!("bad \"{name}\" digest")))
        };
        let num = |name: &str| -> Result<u64, ClusterError> {
            value
                .get(name)
                .and_then(Json::number)
                .ok_or_else(|| bad(&format!("missing \"{name}\"")))
        };
        let link = match value.get("link").and_then(Json::string) {
            Some("ctrl") => LinkKind::Ctrl,
            Some("data") => LinkKind::Data {
                from: usize::try_from(num("from")?).map_err(|_| bad("\"from\" out of range"))?,
                port: u16::try_from(num("port")?).map_err(|_| bad("\"port\" out of range"))?,
            },
            _ => return Err(bad("missing or unknown \"link\"")),
        };
        Ok(Handshake {
            protocol: num("proto")?,
            manifest_digest: digest("manifest")?,
            wiring: digest("wiring")?,
            shard: num("shard")?,
            link,
        })
    }

    /// Checks a peer's handshake against our own view of the run.
    ///
    /// # Errors
    ///
    /// The digest/protocol mismatch variants of [`ClusterError`], each
    /// naming both sides' values.
    pub fn verify(&self, manifest_digest: u64, wiring: u64) -> Result<(), ClusterError> {
        if self.protocol != CLUSTER_PROTOCOL_VERSION {
            return Err(ClusterError::ProtocolMismatch {
                ours: CLUSTER_PROTOCOL_VERSION,
                theirs: self.protocol,
            });
        }
        if self.manifest_digest != manifest_digest {
            return Err(ClusterError::ManifestDigestMismatch {
                ours: manifest_digest,
                theirs: self.manifest_digest,
            });
        }
        if self.wiring != wiring {
            return Err(ClusterError::WiringDigestMismatch {
                ours: wiring,
                theirs: self.wiring,
            });
        }
        Ok(())
    }
}

/// Accumulates bytes from a read-timeout socket and yields complete
/// lines; every read is bounded by [`LINE_LIMIT`] so a silent or hostile
/// peer can neither hang nor balloon us.
struct LineReader {
    buf: Vec<u8>,
}

impl LineReader {
    fn new() -> LineReader {
        LineReader { buf: Vec::new() }
    }

    /// One poll: a complete line if available, `None` on read timeout.
    fn poll(&mut self, stream: &mut TcpStream) -> Result<Option<String>, String> {
        use std::io::Read;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| "non-UTF-8 line".to_string());
            }
            if self.buf.len() > LINE_LIMIT {
                return Err(format!("line exceeds {LINE_LIMIT} bytes"));
            }
            let mut chunk = [0u8; 512];
            match stream.read(&mut chunk) {
                Ok(0) => return Err("connection closed".to_string()),
                Ok(k) => self.buf.extend_from_slice(&chunk[..k]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }

    /// Blocks (in poll-sized steps) until a full line or `deadline`.
    fn read_deadline(
        &mut self,
        stream: &mut TcpStream,
        deadline: Instant,
    ) -> Result<String, String> {
        loop {
            if let Some(line) = self.poll(stream)? {
                return Ok(line);
            }
            if Instant::now() >= deadline {
                return Err("timed out waiting for a line".to_string());
            }
        }
    }
}

/// Writes the accept-side handshake reply.
fn reply(stream: &mut TcpStream, result: &Result<(), ClusterError>) {
    let line = match result {
        Ok(()) => "{\"ok\":true}\n".to_string(),
        Err(e) => format!(
            "{{\"ok\":false,\"error\":\"{}\"}}\n",
            json_escape(&e.to_string())
        ),
    };
    // The connection is torn down right after a rejection; a failed
    // reply write cannot make that outcome worse.
    let _ = stream.write_all(line.as_bytes());
}

/// One outgoing link as a cluster worker sees it: in-process to a
/// co-shard processor, or a TCP frame stream to a remote shard.
enum ShardLink<M> {
    Local(LocalPort<M>),
    Remote(TcpPort<M>),
}

impl<M: Wire> SendPort<M> for ShardLink<M> {
    fn push(
        &mut self,
        parcel: Parcel<M>,
        relieve: &mut dyn FnMut(),
        over: &dyn Fn() -> bool,
    ) -> Result<(), PushError> {
        match self {
            ShardLink::Local(port) => port.push(parcel, relieve, over),
            ShardLink::Remote(port) => port.push(parcel, relieve, over),
        }
    }
}

/// A connection the acceptor classified and handshook.
enum Accepted {
    Data {
        stream: TcpStream,
        to: usize,
        arrival: PortId,
    },
    Ctrl {
        shard: u64,
        stream: TcpStream,
    },
}

/// The latest counter report of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Status {
    halted: usize,
    sent: u64,
    delivered: u64,
}

fn status_line(shard: u64, status: Status) -> String {
    format!(
        "{{\"shard\":{},\"halted\":{},\"sent\":{},\"delivered\":{}}}\n",
        shard, status.halted, status.sent, status.delivered
    )
}

fn parse_status(line: &str) -> Option<Status> {
    let value = Json::parse(line).ok()?;
    Some(Status {
        halted: usize::try_from(value.get("halted")?.number()?).ok()?,
        sent: value.get("sent")?.number()?,
        delivered: value.get("delivered")?.number()?,
    })
}

/// The successful outcome of one shard's run: local outputs, local cost
/// totals, and the per-shard recording [`merge`] interleaves.
///
/// [`merge`]: anonring_sim::telemetry::merge::merge
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// This shard's id.
    pub shard: u64,
    /// Cluster size (number of shards).
    pub shards: u64,
    /// First owned processor (global index).
    pub start: usize,
    /// Debug-rendered outputs of the owned processors, in global order.
    pub outputs: Vec<String>,
    /// Messages routed by this shard (each send is metered exactly once,
    /// at its sender's shard).
    pub messages: u64,
    /// Bits routed by this shard.
    pub bits: u64,
    /// Deliveries performed at this shard (drops included).
    pub deliveries: u64,
    /// Deliveries to already-halted local processors.
    pub dropped: u64,
    /// High-water mark of locally routed-but-undelivered sends.
    pub peak_in_flight: u64,
    /// Full-inbox waits observed locally.
    pub backpressure_waits: u64,
    /// The shard's v2 recording (`"shard"`/`"shards"` meta set).
    pub recording: Recording,
}

/// Establishes one outbound connection: dial (retrying while the peer
/// boots), send the handshake, await the acceptance line.
fn dial(
    addr: &str,
    handshake: &Handshake,
    deadline: Instant,
    stop: &AtomicBool,
) -> Result<TcpStream, ClusterError> {
    let mut stream = loop {
        if stop.load(Ordering::Relaxed) {
            return Err(ClusterError::Io {
                detail: "link establishment aborted".to_string(),
            });
        }
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(e) => {
                if Instant::now() + CONNECT_RETRY >= deadline {
                    return Err(io_err(&format!("connect {addr}"), e));
                }
                std::thread::sleep(CONNECT_RETRY);
            }
        }
    };
    stream
        .set_nodelay(true)
        .map_err(|e| io_err("set nodelay", e))?;
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| io_err("set read timeout", e))?;
    stream
        .write_all(handshake.render().as_bytes())
        .map_err(|e| io_err("send handshake", e))?;
    let hs_deadline = deadline.min(Instant::now() + HANDSHAKE_TIMEOUT);
    let line = LineReader::new()
        .read_deadline(&mut stream, hs_deadline)
        .map_err(|detail| ClusterError::Handshake { detail })?;
    let value = Json::parse(&line).map_err(|detail| ClusterError::Handshake { detail })?;
    match value.get("ok") {
        Some(Json::Bool(true)) => Ok(stream),
        _ => Err(ClusterError::Rejected {
            detail: value
                .get("error")
                .and_then(Json::string)
                .unwrap_or("peer sent no error")
                .to_string(),
        }),
    }
}

/// Accept-side handshake of one freshly accepted connection.
fn accept_link(
    mut stream: TcpStream,
    manifest: &ClusterManifest,
    topology: &JobTopology,
    shard_id: u64,
    manifest_digest: u64,
    wiring: u64,
    deadline: Instant,
) -> Result<Accepted, ClusterError> {
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| io_err("set read timeout", e))?;
    let hs_deadline = deadline.min(Instant::now() + HANDSHAKE_TIMEOUT);
    let line = LineReader::new()
        .read_deadline(&mut stream, hs_deadline)
        .map_err(|detail| ClusterError::Handshake { detail })?;
    let handshake = match Handshake::parse(&line) {
        Ok(handshake) => handshake,
        Err(e) => {
            reply(&mut stream, &Err(e.clone()));
            return Err(e);
        }
    };
    let checked = handshake.verify(manifest_digest, wiring).and_then(|()| {
        let local = manifest
            .local_range(shard_id)
            .ok_or(ClusterError::UnknownShard { shard: shard_id })?;
        match handshake.link {
            LinkKind::Ctrl if shard_id == 0 && handshake.shard != 0 => Ok(None),
            LinkKind::Ctrl => Err(ClusterError::Handshake {
                detail: format!("ctrl link offered to shard {shard_id}"),
            }),
            LinkKind::Data { from, port } => {
                if manifest.owner_of(from) != Some(handshake.shard) {
                    return Err(ClusterError::Handshake {
                        detail: format!("shard {} does not own sender {from}", handshake.shard),
                    });
                }
                if from >= manifest.n || usize::from(port) >= topology.ports(from) {
                    return Err(ClusterError::Handshake {
                        detail: format!("no port {port} at processor {from}"),
                    });
                }
                // anonlint: allow(anonymity-breach) -- substrate wiring: the acceptor realises the shared topology, exactly like the hub
                let (to, arrival) = topology.neighbor_port(from, PortId::new(port));
                if !local.contains(&to) {
                    return Err(ClusterError::Handshake {
                        detail: format!("link from {from} lands at {to}, not on shard {shard_id}"),
                    });
                }
                Ok(Some((to, arrival)))
            }
        }
    });
    match checked {
        Ok(Some((to, arrival))) => {
            reply(&mut stream, &Ok(()));
            Ok(Accepted::Data {
                stream,
                to,
                arrival,
            })
        }
        Ok(None) => {
            reply(&mut stream, &Ok(()));
            Ok(Accepted::Ctrl {
                shard: handshake.shard,
                stream,
            })
        }
        Err(e) => {
            reply(&mut stream, &Err(e.clone()));
            Err(e)
        }
    }
}

/// Shard 0's termination loop: collect counter reports, decide the
/// verdict, broadcast it, apply it locally.
fn coordinate(
    hub: &ShardHub,
    manifest: &ClusterManifest,
    mut ctrl: Vec<(u64, TcpStream)>,
    deadline: Instant,
) {
    let n = manifest.n;
    let shards = manifest.shards.len();
    for (_, stream) in &ctrl {
        // Short read timeout: the coordinator polls every stream each tick.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    }
    let mut readers: Vec<LineReader> = (0..ctrl.len()).map(|_| LineReader::new()).collect();
    let mut latest: Vec<Option<Status>> = vec![None; ctrl.len()];
    let mut frozen_since: Option<(Instant, Vec<Option<Status>>, Status)> = None;
    let verdict = loop {
        if Instant::now() >= deadline {
            break "cancelled";
        }
        if hub.is_over() {
            // Something else ended the run locally (fault, external
            // cancel); propagate the abort.
            break "cancelled";
        }
        let mut broken = false;
        for (k, (_, stream)) in ctrl.iter_mut().enumerate() {
            loop {
                match readers[k].poll(stream) {
                    Ok(Some(line)) => {
                        if let Some(status) = parse_status(&line) {
                            latest[k] = Some(status);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            break "cancelled";
        }
        let (halted, sent, delivered) = hub.counters();
        let own = Status {
            halted,
            sent,
            delivered,
        };
        if latest.iter().all(Option::is_some) {
            let mut all_halted = own.halted == manifest.local_range(0).map_or(0, |r| r.len());
            let mut total_halted = own.halted;
            let mut total_sent = own.sent;
            let mut total_delivered = own.delivered;
            for (k, status) in latest.iter().enumerate() {
                let status = status.expect("all reported");
                let (shard, _) = &ctrl[k];
                let count = manifest.local_range(*shard).map_or(0, |r| r.len());
                all_halted &= status.halted == count;
                total_halted += status.halted;
                total_sent += status.sent;
                total_delivered += status.delivered;
            }
            if all_halted && total_halted == n && total_sent == total_delivered {
                break "done";
            }
            // Stall: counters frozen, sends all delivered, not all halted.
            let snapshot = (latest.clone(), own);
            match &frozen_since {
                Some((since, seen, seen_own)) if *seen == snapshot.0 && *seen_own == snapshot.1 => {
                    if total_sent == total_delivered
                        && total_halted < n
                        && since.elapsed() >= STALL_WINDOW
                        && shards > 0
                    {
                        break "stalled";
                    }
                }
                _ => frozen_since = Some((Instant::now(), snapshot.0, snapshot.1)),
            }
        }
        std::thread::sleep(CTRL_PERIOD);
    };
    let line = format!("{{\"verdict\":\"{verdict}\"}}\n");
    for (_, stream) in &mut ctrl {
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
    match verdict {
        "done" => hub.finish(false),
        "stalled" => hub.finish(true),
        _ => hub.cancel(),
    }
    // Hold the ctrl streams open briefly so slow peers read the verdict
    // rather than a reset; they also have their own deadline backstop.
    std::thread::sleep(CTRL_PERIOD);
}

/// A non-coordinator shard's control loop: stream counters to shard 0,
/// apply the verdict it sends back.
fn report_to_coordinator(hub: &ShardHub, shard_id: u64, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(CTRL_PERIOD));
    let mut reader = LineReader::new();
    loop {
        if hub.is_over() {
            return;
        }
        let (halted, sent, delivered) = hub.counters();
        let line = status_line(
            shard_id,
            Status {
                halted,
                sent,
                delivered,
            },
        );
        if stream.write_all(line.as_bytes()).is_err() {
            hub.cancel();
            return;
        }
        // The read timeout doubles as the reporting period.
        match reader.poll(&mut stream) {
            Ok(Some(line)) => {
                match Json::parse(&line)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("verdict").and_then(Json::string).map(str::to_string))
                {
                    Some(v) if v == "done" => hub.finish(false),
                    Some(v) if v == "stalled" => hub.finish(true),
                    _ => hub.cancel(),
                }
                return;
            }
            Ok(None) => {}
            Err(_) => {
                hub.cancel();
                return;
            }
        }
    }
}

/// Runs one shard of a cluster job to completion: realises the local
/// processors, establishes every cross-shard link (dialing outbound,
/// accepting inbound, handshaking both ways), participates in the
/// control plane, and returns the shard's outputs, cost totals and
/// recording.
///
/// The manifest must carry explicit per-processor inputs (`ringctl`
/// fills driver defaults in before writing the file).
///
/// # Errors
///
/// See [`ClusterError`]. Digest mismatches surface before any payload
/// frame; run-level failures (timeout, stall, worker panic) arrive as
/// [`ClusterError::Net`].
pub fn run_shard(manifest: &ClusterManifest, shard_id: u64) -> Result<ShardReport, ClusterError> {
    let spec = manifest
        .shard(shard_id)
        .ok_or(ClusterError::UnknownShard { shard: shard_id })?
        .clone();
    let algorithm =
        Audited::from_name(&manifest.algorithm).ok_or_else(|| ClusterError::UnknownAlgorithm {
            name: manifest.algorithm.clone(),
        })?;
    let n = manifest.n;
    if manifest.inputs.len() != n {
        return Err(ClusterError::Driver {
            detail: format!(
                "manifest carries {} inputs for n = {n}; fill defaults before launch",
                manifest.inputs.len()
            ),
        });
    }
    let driver_err = |e: &dyn std::fmt::Display| ClusterError::Driver {
        detail: e.to_string(),
    };
    let topology = algorithm
        .topology(n, &manifest.inputs)
        .map_err(|e| driver_err(&e))?;
    let procs = algorithm
        .procs(n, &manifest.inputs)
        .map_err(|e| driver_err(&e))?;
    let local: Range<usize> = manifest
        .local_range(shard_id)
        .ok_or(ClusterError::UnknownShard { shard: shard_id })?;
    let shards = manifest.shards.len() as u64;
    let manifest_digest = manifest.digest();
    // anonlint: allow(anonymity-breach) -- substrate wiring: digesting the manifest-shared topology for the handshake; algorithms never see it
    let wiring = topology.wiring_digest();
    let deadline = Instant::now() + Duration::from_millis(manifest.timeout_ms);

    let hub = ShardHub::sharded(&topology, shard_id);
    let inboxes: Vec<Option<Arc<Inbox<JobMsg>>>> = (0..n)
        .map(|i| {
            local
                .contains(&i)
                .then(|| Arc::new(Inbox::new(topology.ports(i), manifest.capacity)))
        })
        .collect();

    // Inbound data links: every remote directed link landing on one of
    // our processors dials us exactly once.
    let mut expected_data = 0usize;
    for i in (0..n).filter(|i| !local.contains(i)) {
        for p in 0..topology.ports(i) {
            // anonlint: allow(anonymity-breach) -- substrate wiring: counting the manifest-shared wiring's inbound cut, not peeking for an algorithm
            let (to, _) = topology.neighbor_port(i, PortId::new(p as u16));
            if local.contains(&to) {
                expected_data += 1;
            }
        }
    }
    let expected_ctrl = if shard_id == 0 {
        usize::try_from(shards).unwrap_or(1) - 1
    } else {
        0
    };

    let listener =
        TcpListener::bind(&spec.addr).map_err(|e| io_err(&format!("bind {}", spec.addr), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("set listener nonblocking", e))?;

    let faults: Mutex<Vec<String>> = Mutex::new(Vec::new());
    // Raised by whichever side of link establishment fails first, so the
    // other side stops promptly instead of riding out the deadline.
    let stop = AtomicBool::new(false);
    let (outcome, results) = {
        let hub = &hub;
        let faults = &faults;
        let stop = &stop;
        let manifest_ref = manifest;
        let topology_ref = &topology;
        let result = std::thread::scope(|scope| -> Result<_, ClusterError> {
            // Acceptor: collect and handshake every expected inbound
            // connection while we dial outbound in parallel below.
            let acceptor = scope.spawn(move || -> Result<Vec<Accepted>, ClusterError> {
                let run = || -> Result<Vec<Accepted>, ClusterError> {
                    let mut accepted = Vec::with_capacity(expected_data + expected_ctrl);
                    let mut data = 0usize;
                    let mut ctrl = 0usize;
                    while data < expected_data || ctrl < expected_ctrl {
                        if stop.load(Ordering::Relaxed) {
                            return Err(ClusterError::Io {
                                detail: "link establishment aborted".to_string(),
                            });
                        }
                        if Instant::now() >= deadline {
                            return Err(ClusterError::Io {
                                detail: format!(
                                    "deadline before all links arrived ({data}/{expected_data} data, {ctrl}/{expected_ctrl} ctrl)"
                                ),
                            });
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let link = accept_link(
                                    stream,
                                    manifest_ref,
                                    topology_ref,
                                    shard_id,
                                    manifest_digest,
                                    wiring,
                                    deadline,
                                )?;
                                match &link {
                                    Accepted::Data { .. } => data += 1,
                                    Accepted::Ctrl { .. } => ctrl += 1,
                                }
                                accepted.push(link);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => return Err(io_err("accept", e)),
                        }
                    }
                    Ok(accepted)
                };
                let result = run();
                if result.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                result
            });

            // Dial every outbound cross-shard link and (if we are not the
            // coordinator) the control link.
            let dialed = (|| -> Result<_, ClusterError> {
                let mut links_of: Vec<Vec<ShardLink<JobMsg>>> = Vec::with_capacity(local.len());
                for i in local.clone() {
                    let ends = hub.links_of(i);
                    let mut links = Vec::with_capacity(ends.len());
                    for (k, end) in ends.iter().enumerate() {
                        if local.contains(&end.to) {
                            links.push(ShardLink::Local(LocalPort {
                                peer: Arc::clone(
                                    inboxes[end.to].as_ref().expect("local inbox exists"),
                                ),
                                arrival: end.arrival,
                                pressure: hub.backpressure_handle(),
                            }));
                        } else {
                            let peer_shard =
                                manifest_ref
                                    .owner_of(end.to)
                                    .ok_or(ClusterError::Handshake {
                                        detail: format!("processor {} owned by no shard", end.to),
                                    })?;
                            let addr = &manifest_ref
                                .shard(peer_shard)
                                .ok_or(ClusterError::UnknownShard { shard: peer_shard })?
                                .addr;
                            let handshake = Handshake {
                                protocol: CLUSTER_PROTOCOL_VERSION,
                                manifest_digest,
                                wiring,
                                shard: shard_id,
                                link: LinkKind::Data {
                                    from: i,
                                    port: k as u16,
                                },
                            };
                            let stream = dial(addr, &handshake, deadline, stop)?;
                            links.push(ShardLink::Remote(TcpPort::over(stream)));
                        }
                    }
                    links_of.push(links);
                }
                let ctrl_stream = if shard_id != 0 {
                    let handshake = Handshake {
                        protocol: CLUSTER_PROTOCOL_VERSION,
                        manifest_digest,
                        wiring,
                        shard: shard_id,
                        link: LinkKind::Ctrl,
                    };
                    let addr = &manifest_ref
                        .shard(0)
                        .ok_or(ClusterError::UnknownShard { shard: 0 })?
                        .addr;
                    Some(dial(addr, &handshake, deadline, stop)?)
                } else {
                    None
                };
                Ok((links_of, ctrl_stream))
            })();
            if dialed.is_err() {
                stop.store(true, Ordering::Relaxed);
            }

            let accepted = acceptor.join().map_err(|_| ClusterError::Io {
                detail: "acceptor thread panicked".to_string(),
            })?;
            // Whichever side failed *first* set the stop flag and holds
            // the structured cause; the other side aborted with the
            // generic Io error. Surface the structured one.
            let aborted = |e: &ClusterError| matches!(e, ClusterError::Io { detail } if detail == "link establishment aborted");
            let (links_of, ctrl_stream, accepted) = match (dialed, accepted) {
                (Ok((links_of, ctrl_stream)), Ok(accepted)) => (links_of, ctrl_stream, accepted),
                (Err(d), Err(a)) => return Err(if aborted(&d) { a } else { d }),
                (Err(d), Ok(_)) => return Err(d),
                (Ok(_), Err(a)) => return Err(a),
            };

            // Links are up cluster-wide (for our cut); start the readers,
            // the control plane, and the workers.
            let mut ctrl_peers = Vec::new();
            for link in accepted {
                match link {
                    Accepted::Data {
                        stream,
                        to,
                        arrival,
                    } => {
                        let peer = Arc::clone(inboxes[to].as_ref().expect("inbound link is local"));
                        scope.spawn(move || read_link(stream, &peer, arrival, hub, faults));
                    }
                    Accepted::Ctrl { shard, stream } => ctrl_peers.push((shard, stream)),
                }
            }
            if shard_id == 0 {
                scope.spawn(move || coordinate(hub, manifest_ref, ctrl_peers, deadline));
            } else if let Some(stream) = ctrl_stream {
                scope.spawn(move || report_to_coordinator(hub, shard_id, stream));
            }

            let mut handles = Vec::with_capacity(local.len());
            let mut owned: Vec<JobProc> = procs
                .into_iter()
                .enumerate()
                .filter_map(|(i, proc)| local.contains(&i).then_some(proc))
                .collect();
            for (offset, (proc, links)) in owned.drain(..).zip(links_of).enumerate() {
                let i = local.start + offset;
                let inbox = Arc::clone(inboxes[i].as_ref().expect("local inbox exists"));
                let jitter = crate::jitter::Jitter::new(
                    manifest_ref.seed,
                    i as u64,
                    manifest_ref.max_delay_us,
                );
                handles.push(scope.spawn(move || worker(i, proc, hub, &inbox, links, jitter)));
            }

            let outcome = hub.await_outcome(deadline);
            for inbox in inboxes.iter().flatten() {
                inbox.close();
            }
            let results: Vec<_> = handles
                .into_iter()
                .enumerate()
                .map(|(offset, handle)| {
                    handle.join().unwrap_or(Err(NetError::WorkerPanic {
                        processor: local.start + offset,
                    }))
                })
                .collect();
            Ok((outcome, results))
        });
        result?
    };

    let faults = faults.into_inner().expect("fault list poisoned");
    if let Some(detail) = faults.into_iter().next() {
        return Err(ClusterError::Net(NetError::Io { detail }));
    }
    let mut outputs = Vec::with_capacity(results.len());
    for result in results {
        outputs.push(result.map_err(ClusterError::Net)?);
    }
    if outcome.stalled {
        return Err(ClusterError::Net(NetError::QuiescentWithoutHalt {
            running: local.len().saturating_sub(outcome.halted),
        }));
    }
    if outcome.cancelled || !outcome.done {
        return Err(ClusterError::Net(NetError::Timeout {
            timeout_ms: manifest.timeout_ms,
            halted: outcome.halted,
        }));
    }
    let outputs: Vec<String> = outputs
        .into_iter()
        .map(|out| format!("{:?}", out.expect("done verdict implies local halts")))
        .collect();
    let (meter, events, wall_us, stats) = hub.into_parts();
    let mut recorder = FlightRecorder::new(
        n,
        format!("cluster {} {} n={n}", manifest.label, manifest.algorithm),
    )
    .with_engine("net")
    .with_shard(shard_id, shards);
    for event in &events {
        recorder.on_event(event);
    }
    let mut recording = recorder.into_recording();
    recording.attach_wall_stamps(&wall_us);
    Ok(ShardReport {
        shard: shard_id,
        shards,
        start: local.start,
        outputs,
        messages: meter.messages,
        bits: meter.bits,
        deliveries: meter.deliveries,
        dropped: meter.dropped,
        peak_in_flight: stats.peak_in_flight,
        backpressure_waits: stats.backpressure_waits,
        recording,
    })
}

/// A certified cluster run: the canonical merged recording plus the
/// cluster-side totals the simulator agreed with.
#[derive(Debug, Clone)]
pub struct ClusterCertified {
    /// The merged, causally-checked recording (no shard meta).
    pub merged: Recording,
    /// Debug-rendered outputs `O(1), …, O(n)` in global processor order.
    pub outputs: Vec<String>,
    /// Cluster-wide total messages.
    pub messages: u64,
    /// Cluster-wide total bits.
    pub bits: u64,
}

/// Certifies a completed cluster run against the async simulator: merges
/// the shard recordings into canonical order, re-parses the result so
/// the S21 causal invariants are enforced, reassembles the global
/// outputs, and demands the schedule-independent agreement
/// (`outputs`/`messages`/`bits`) the single-process conformance oracle
/// demands.
///
/// # Errors
///
/// [`ClusterError::Merge`] when the recordings do not merge (a missing
/// shard is named), [`ClusterError::Mismatch`] naming the first
/// disagreeing quantity.
pub fn certify_cluster(
    manifest: &ClusterManifest,
    reports: &[ShardReport],
) -> Result<ClusterCertified, ClusterError> {
    use anonring_sim::r#async::{AsyncEngine, SynchronizingScheduler};
    use anonring_sim::telemetry::merge::merge;

    let shards = manifest.shards.len();
    let mut ordered: Vec<Option<&ShardReport>> = vec![None; shards];
    for report in reports {
        match usize::try_from(report.shard).ok().filter(|&k| k < shards) {
            Some(k) => ordered[k] = Some(report),
            None => {
                return Err(ClusterError::UnknownShard {
                    shard: report.shard,
                })
            }
        }
    }
    let recordings: Vec<Recording> = ordered
        .iter()
        .flatten()
        .map(|report| report.recording.clone())
        .collect();
    let merged = merge(&recordings).map_err(|e| ClusterError::Merge {
        detail: e.to_string(),
    })?;
    // Round-trip through the parser: the v2 causal checker enforces the
    // S21 invariants (seq order, parent-before-child, send-before-deliver)
    // on exactly the bytes a `tracer merge` would write.
    Recording::parse_jsonl(&merged.to_jsonl()).map_err(|e| ClusterError::Merge {
        detail: format!("merged recording fails causal check: {e}"),
    })?;
    let mut outputs = Vec::with_capacity(manifest.n);
    let mut messages = 0u64;
    let mut bits = 0u64;
    for report in ordered.iter().flatten() {
        outputs.extend(report.outputs.iter().cloned());
        messages += report.messages;
        bits += report.bits;
    }
    let algorithm =
        Audited::from_name(&manifest.algorithm).ok_or_else(|| ClusterError::UnknownAlgorithm {
            name: manifest.algorithm.clone(),
        })?;
    let topology = algorithm
        .topology(manifest.n, &manifest.inputs)
        .map_err(|e| ClusterError::Driver {
            detail: e.to_string(),
        })?;
    let procs =
        algorithm
            .procs(manifest.n, &manifest.inputs)
            .map_err(|e| ClusterError::Driver {
                detail: e.to_string(),
            })?;
    let mut engine = AsyncEngine::new(topology, procs).map_err(|e| ClusterError::Sim {
        detail: e.to_string(),
    })?;
    let sim = engine
        .run(&mut SynchronizingScheduler)
        .map_err(|e| ClusterError::Sim {
            detail: e.to_string(),
        })?;
    let sim_outputs: Vec<String> = sim.outputs().iter().map(|out| format!("{out:?}")).collect();
    if outputs != sim_outputs {
        return Err(ClusterError::Mismatch {
            what: "outputs",
            cluster: format!("{outputs:?}"),
            sim: format!("{sim_outputs:?}"),
        });
    }
    if messages != sim.messages {
        return Err(ClusterError::Mismatch {
            what: "messages",
            cluster: messages.to_string(),
            sim: sim.messages.to_string(),
        });
    }
    if bits != sim.bits {
        return Err(ClusterError::Mismatch {
            what: "bits",
            cluster: bits.to_string(),
            sim: sim.bits.to_string(),
        });
    }
    Ok(ClusterCertified {
        merged,
        outputs,
        messages,
        bits,
    })
}

#[cfg(test)]
mod tests {
    use super::{ClusterError, Handshake, LinkKind, CLUSTER_PROTOCOL_VERSION};

    #[test]
    fn handshake_round_trips() {
        for link in [LinkKind::Ctrl, LinkKind::Data { from: 3, port: 1 }] {
            let hs = Handshake {
                protocol: CLUSTER_PROTOCOL_VERSION,
                manifest_digest: 0xdead_beef_0123_4567,
                wiring: 0x0fed_cba9_8765_4321,
                shard: 2,
                link,
            };
            let parsed = Handshake::parse(hs.render().trim()).expect("round trip");
            assert_eq!(parsed, hs);
        }
    }

    #[test]
    fn digest_mismatch_names_both_digests() {
        let hs = Handshake {
            protocol: CLUSTER_PROTOCOL_VERSION,
            manifest_digest: 0x1111,
            wiring: 0x2222,
            shard: 1,
            link: LinkKind::Ctrl,
        };
        let err = hs.verify(0x3333, 0x2222).expect_err("mismatch");
        match &err {
            ClusterError::ManifestDigestMismatch { ours, theirs } => {
                assert_eq!((*ours, *theirs), (0x3333, 0x1111));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("0x0000000000003333"), "{rendered}");
        assert!(rendered.contains("0x0000000000001111"), "{rendered}");
    }

    #[test]
    fn protocol_and_wiring_checks_fire_in_order() {
        let mut hs = Handshake {
            protocol: CLUSTER_PROTOCOL_VERSION + 1,
            manifest_digest: 1,
            wiring: 2,
            shard: 0,
            link: LinkKind::Ctrl,
        };
        assert!(matches!(
            hs.verify(1, 2),
            Err(ClusterError::ProtocolMismatch { .. })
        ));
        hs.protocol = CLUSTER_PROTOCOL_VERSION;
        assert!(matches!(
            hs.verify(1, 9),
            Err(ClusterError::WiringDigestMismatch { .. })
        ));
        assert!(hs.verify(1, 2).is_ok());
    }

    #[test]
    fn malformed_handshake_lines_are_structured_errors() {
        for line in ["", "{}", "{\"proto\":1}", "not json"] {
            assert!(matches!(
                Handshake::parse(line),
                Err(ClusterError::Handshake { .. })
            ));
        }
    }
}
