//! The asynchronous (message-driven) execution engine (paper §2 and §5).
//!
//! Message delays are unpredictable but finite, and each link is FIFO. The
//! engine therefore keeps one FIFO queue per *directed link* — the shared
//! [`crate::runtime::LinkFabric`] — and lets a [`Scheduler`] — the
//! adversary — choose which queue delivers next.
//!
//! The built-in [`SynchronizingScheduler`] is exactly the adversary of
//! Theorem 5.1: it organises the execution into *cycles* (here called
//! epochs) such that every message sent at epoch `e` is received at epoch
//! `e + 1`, each processor receiving its left-port messages before its
//! right-port messages. Under this adversary the state of a processor after
//! `k` epochs depends only on its `k`-neighborhood, which is what makes the
//! asynchronous lower bounds work.
//!
//! This engine is a thin driver over [`crate::runtime`]: queues, cost
//! accounting and trace events all come from the shared substrate.

use std::fmt;

use crate::config::RingConfig;
use crate::error::SimError;
use crate::message::Message;
use crate::port::{Port, PortId};
use crate::runtime::{
    CausalClocks, CostMeter, LinkFabric, NullObserver, Observer, PortActions, SendMeta, TraceEvent,
};
use crate::topology::{RingTopology, Topology};

pub use crate::runtime::{Actions, Candidate, Emit};

/// A processor of an asynchronous ring algorithm. State transitions are
/// message driven: the conceptual "start" message triggers
/// [`AsyncProcess::on_start`], and every subsequent delivery triggers
/// [`AsyncProcess::on_message`].
pub trait AsyncProcess {
    /// Message type sent on the channels.
    type Msg: Message;
    /// Output state when the processor halts.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Reaction to the conceptual start message.
    fn on_start(&mut self) -> Actions<Self::Msg, Self::Output>;

    /// Reaction to a message arriving on local port `from`.
    fn on_message(&mut self, from: Port, msg: Self::Msg) -> Actions<Self::Msg, Self::Output>;
}

/// A processor of an asynchronous algorithm on an arbitrary port-labelled
/// topology: the general form the engine (and the `net` driver) actually
/// executes.
///
/// Every [`AsyncProcess`] is automatically an `AsyncPortProcess` (ports 0
/// and 1 are the ring's left and right), so ring algorithms run
/// unchanged. Higher-degree processes implement this trait directly.
pub trait AsyncPortProcess {
    /// Message type sent on the channels.
    type Msg: Message;
    /// Output state when the processor halts.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Reaction to the conceptual start message.
    fn on_start_ports(&mut self) -> PortActions<Self::Msg, Self::Output>;

    /// Reaction to a message arriving on local port `from`.
    fn on_message_port(
        &mut self,
        from: PortId,
        msg: Self::Msg,
    ) -> PortActions<Self::Msg, Self::Output>;
}

impl<P: AsyncProcess> AsyncPortProcess for P {
    type Msg = P::Msg;
    type Output = P::Output;

    fn on_start_ports(&mut self) -> PortActions<Self::Msg, Self::Output> {
        self.on_start().into()
    }

    fn on_message_port(
        &mut self,
        from: PortId,
        msg: Self::Msg,
    ) -> PortActions<Self::Msg, Self::Output> {
        let from = from
            .as_ring()
            .expect("two-port process on a many-port topology");
        self.on_message(from, msg).into()
    }
}

/// The adversary: chooses which pending message is delivered next.
///
/// `pick` receives the heads of all nonempty link queues (so per-link FIFO
/// order is enforced structurally) and returns an index into that slice.
pub trait Scheduler {
    /// Chooses the next delivery among `candidates` (nonempty).
    fn pick(&mut self, candidates: &[Candidate]) -> usize;
}

/// Theorem 5.1's adversary: delivers strictly in epoch order, and within an
/// epoch orders by receiver index, left port before right port, then send
/// order. Every message sent at epoch `e` is received "at epoch `e + 1`".
#[derive(Debug, Clone, Copy, Default)]
pub struct SynchronizingScheduler;

impl Scheduler for SynchronizingScheduler {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.epoch, c.to, c.port, c.seq))
            .map(|(i, _)| i)
            .expect("candidates nonempty")
    }
}

/// Delivers messages in global send order — the "everything takes exactly
/// one time unit" schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.seq)
            .map(|(i, _)| i)
            .expect("candidates nonempty")
    }
}

/// Delivers the *newest* pending message first (maximal reordering across
/// links; per-link FIFO still holds structurally). A stress-test
/// adversary: algorithms whose correctness arguments rely only on
/// link-FIFO must survive it.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.seq)
            .map(|(i, _)| i)
            .expect("candidates nonempty")
    }
}

/// Starves one directed link for as long as any other delivery is
/// possible — the slowest legal link in the model (delays are unbounded
/// but finite: when the victim is the only choice, it delivers).
#[derive(Debug, Clone, Copy)]
pub struct LinkStarvingScheduler {
    victim_to: usize,
    victim_port: PortId,
}

impl LinkStarvingScheduler {
    /// Starves the link delivering to processor `to` on its `port` (either
    /// a ring [`Port`] or a general [`PortId`]).
    #[must_use]
    pub fn new(to: usize, port: impl Into<PortId>) -> LinkStarvingScheduler {
        LinkStarvingScheduler {
            victim_to: to,
            victim_port: port.into(),
        }
    }
}

impl Scheduler for LinkStarvingScheduler {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .find(|(_, c)| !(c.to == self.victim_to && c.port == self.victim_port))
            .or_else(|| candidates.iter().enumerate().next())
            .map(|(i, _)| i)
            .expect("candidates nonempty")
    }
}

/// Delivers a uniformly random pending message (deterministic given the
/// seed) — used to check that algorithm outputs are schedule independent.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    state: u64,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: tiny, high-quality, dependency-free.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        (self.next_u64() % candidates.len() as u64) as usize
    }
}

/// Outcome of a completed asynchronous run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncReport<O> {
    /// Total messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Total deliveries performed (messages to halted processors count as
    /// deliveries but are dropped).
    pub deliveries: u64,
    /// Messages that arrived at an already-halted processor.
    pub dropped: u64,
    /// Highest epoch of any sent message — under the synchronizing
    /// scheduler this is the number of "cycles" the computation took.
    pub max_epoch: u64,
    /// Messages sent per epoch (`per_epoch_messages[e]` = messages with
    /// epoch `e`, i.e. sent by events executing at epoch `e − 1`).
    pub per_epoch_messages: Vec<u64>,
    outputs: Vec<O>,
}

impl<O> AsyncReport<O> {
    /// The ring output `O(1), …, O(n)`.
    #[must_use]
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the report, returning the ring output.
    #[must_use]
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }
}

/// Default delivery budget, analogous to
/// [`crate::sync::DEFAULT_MAX_CYCLES`].
pub const DEFAULT_MAX_DELIVERIES: u64 = 50_000_000;

/// Driver for an asynchronous ring computation.
///
/// ```
/// use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, Emit, RandomScheduler};
/// use anonring_sim::{Port, RingTopology};
///
/// /// Every processor forwards one token and halts with its hop count.
/// #[derive(Debug)]
/// struct Hop;
/// impl AsyncProcess for Hop {
///     type Msg = u64;
///     type Output = u64;
///     fn on_start(&mut self) -> Actions<u64, u64> {
///         Actions::send(Port::Right, 1)
///     }
///     fn on_message(&mut self, _from: Port, hops: u64) -> Actions<u64, u64> {
///         Actions::send(Port::Right, hops + 1).and_halt(hops)
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topology = RingTopology::oriented(5)?;
/// let mut engine = AsyncEngine::new(topology, (0..5).map(|_| Hop).collect())?;
/// let report = engine.run(&mut RandomScheduler::new(1))?;
/// assert_eq!(report.messages, 10);
/// assert!(report.outputs().iter().all(|&h| h == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AsyncEngine<P: AsyncPortProcess, T: Topology = RingTopology> {
    topology: T,
    procs: Vec<P>,
    max_deliveries: u64,
}

impl<P: AsyncPortProcess> AsyncEngine<P, RingTopology> {
    /// Builds an engine from a ring configuration, constructing each
    /// process from its index and input.
    pub fn from_config<V>(
        config: &RingConfig<V>,
        mut make: impl FnMut(usize, &V) -> P,
    ) -> AsyncEngine<P, RingTopology> {
        let procs = config
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, v)| make(i, v))
            .collect();
        AsyncEngine::new(config.topology().clone(), procs).expect("config is self-consistent")
    }
}

impl<P: AsyncPortProcess, T: Topology> AsyncEngine<P, T> {
    /// Builds an engine over `topology` with one process per processor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if `procs.len() != n`.
    pub fn new(topology: T, procs: Vec<P>) -> Result<AsyncEngine<P, T>, SimError> {
        if procs.len() != topology.n() {
            return Err(SimError::LengthMismatch {
                expected: topology.n(),
                actual: procs.len(),
            });
        }
        Ok(AsyncEngine {
            topology,
            procs,
            max_deliveries: DEFAULT_MAX_DELIVERIES,
        })
    }

    /// Sets the delivery budget after which the run aborts.
    pub fn set_max_deliveries(&mut self, max_deliveries: u64) -> &mut Self {
        self.max_deliveries = max_deliveries;
        self
    }

    /// The ring size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.topology.n()
    }

    /// The topology the engine runs over.
    #[must_use]
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Runs the computation under `scheduler` until quiescence.
    ///
    /// # Errors
    ///
    /// * [`SimError::QuiescentWithoutHalt`] if no messages remain but some
    ///   processor never halted (an algorithm deadlock);
    /// * [`SimError::DisconnectedTopology`] for the same quiescence on a
    ///   topology with more than one connected component;
    /// * [`SimError::MaxDeliveriesExceeded`] if the delivery budget runs
    ///   out (an algorithm livelock).
    pub fn run(
        &mut self,
        scheduler: &mut dyn Scheduler,
    ) -> Result<AsyncReport<P::Output>, SimError> {
        self.run_with_observer(scheduler, &mut NullObserver)
    }

    /// Runs the computation while recording every message send into a
    /// [`crate::trace::Trace`] — the same space-time rendering the sync
    /// engine produces, with epochs in place of cycles.
    ///
    /// # Errors
    ///
    /// As for [`AsyncEngine::run`].
    pub fn run_traced(
        &mut self,
        scheduler: &mut dyn Scheduler,
    ) -> Result<(AsyncReport<P::Output>, crate::trace::Trace), SimError> {
        let mut trace = crate::trace::Trace::new(self.topology.n());
        let report = self.run_with_observer(scheduler, &mut trace)?;
        Ok((report, trace))
    }

    /// Runs the computation while streaming every [`TraceEvent`] to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As for [`AsyncEngine::run`].
    pub fn run_with_observer(
        &mut self,
        scheduler: &mut dyn Scheduler,
        observer: &mut impl Observer,
    ) -> Result<AsyncReport<P::Output>, SimError> {
        let n = self.topology.n();
        let procs = &mut self.procs;
        let mut halted: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut meter = CostMeter::new();
        let mut fabric: LinkFabric<P::Msg> = LinkFabric::new(&self.topology);
        let mut clocks = CausalClocks::new(n);

        // Dispatch one event's reactions: sends are tagged with the arrival
        // epoch (event epoch + 1), Theorem 5.1's bookkeeping.
        #[allow(clippy::too_many_arguments)] // engine internals threaded through one helper
        fn dispatch<M: Message, O>(
            from: usize,
            actions: PortActions<M, O>,
            event_epoch: u64,
            fabric: &mut LinkFabric<'_, M>,
            clocks: &mut CausalClocks,
            meter: &mut CostMeter,
            observer: &mut impl Observer,
            halted: &mut [Option<O>],
        ) {
            let send_epoch = event_epoch + 1;
            for (port, msg) in actions.sends {
                let (lamport, parent) = clocks.stamp_send(from);
                let meta = SendMeta {
                    send_time: send_epoch,
                    due_time: send_epoch,
                    span: actions.span,
                    lamport,
                    parent,
                };
                fabric.send(from, port, msg, meta, meter, observer);
            }
            if let Some(output) = actions.halt {
                halted[from] = Some(output);
                observer.on_event(&TraceEvent::Halt {
                    time: event_epoch,
                    processor: from,
                });
            }
        }

        // Conceptual start messages: every processor's initial transition
        // happens at epoch 0.
        for (i, proc) in procs.iter_mut().enumerate() {
            let actions = proc.on_start_ports();
            dispatch(
                i,
                actions,
                0,
                &mut fabric,
                &mut clocks,
                &mut meter,
                observer,
                &mut halted,
            );
        }

        let mut candidates: Vec<Candidate> = Vec::new();
        loop {
            fabric.candidates(&mut candidates);
            if candidates.is_empty() {
                break;
            }
            if meter.deliveries >= self.max_deliveries {
                return Err(SimError::MaxDeliveriesExceeded {
                    max_deliveries: self.max_deliveries,
                });
            }
            let cand = candidates[scheduler.pick(&candidates)];
            let popped = fabric.pop_candidate(&cand);
            meter.record_delivery();
            let is_drop = halted[cand.to].is_some();
            observer.on_event(&TraceEvent::Deliver {
                time: popped.time,
                to: cand.to,
                port: cand.port,
                seq: popped.stamp.seq,
                dropped: is_drop,
            });
            if is_drop {
                meter.record_drop();
                continue;
            }
            clocks.consume(cand.to, popped.stamp);
            let actions = procs[cand.to].on_message_port(cand.port, popped.msg);
            dispatch(
                cand.to,
                actions,
                popped.time,
                &mut fabric,
                &mut clocks,
                &mut meter,
                observer,
                &mut halted,
            );
        }

        let running = halted.iter().filter(|h| h.is_none()).count();
        if running > 0 {
            // Distinguish "the algorithm deadlocked" from "the graph cannot
            // carry the information at all": quiescence on a disconnected
            // topology gets its own verdict.
            let components = self.topology.components();
            if components > 1 {
                return Err(SimError::DisconnectedTopology {
                    components,
                    running,
                });
            }
            return Err(SimError::QuiescentWithoutHalt { running });
        }
        Ok(AsyncReport {
            messages: meter.messages,
            bits: meter.bits,
            deliveries: meter.deliveries,
            dropped: meter.dropped,
            max_epoch: meter.max_time,
            per_epoch_messages: meter.per_time_messages,
            outputs: halted
                .into_iter()
                .map(|h| h.expect("running == 0 was checked: every processor has halted"))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every processor emits one token; on its first delivery it forwards
    /// once more and halts. Second-generation tokens die at halted
    /// receivers, so the run is deterministic under *any* scheduler:
    /// exactly `2n` messages, every output `1`.
    #[derive(Debug)]
    struct Relay;

    impl AsyncProcess for Relay {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self) -> Actions<u64, u64> {
            Actions::send(Port::Right, 1)
        }
        fn on_message(&mut self, from: Port, hops: u64) -> Actions<u64, u64> {
            assert_eq!(from, Port::Left, "oriented ring: tokens arrive left");
            Actions::send(Port::Right, hops + 1).and_halt(hops)
        }
    }

    fn run_relay(scheduler: &mut dyn Scheduler, n: usize) -> AsyncReport<u64> {
        let topo = RingTopology::oriented(n).unwrap();
        let mut engine = AsyncEngine::new(topo, (0..n).map(|_| Relay).collect()).unwrap();
        engine.run(scheduler).unwrap()
    }

    #[test]
    fn relay_is_schedule_independent() {
        for n in [2usize, 3, 5, 8] {
            for (name, mut sched) in [
                (
                    "sync",
                    Box::new(SynchronizingScheduler) as Box<dyn Scheduler>,
                ),
                ("fifo", Box::new(FifoScheduler) as Box<dyn Scheduler>),
                (
                    "rand",
                    Box::new(RandomScheduler::new(42)) as Box<dyn Scheduler>,
                ),
            ] {
                let report = run_relay(sched.as_mut(), n);
                assert_eq!(report.messages, 2 * n as u64, "{name} n={n}");
                assert_eq!(report.dropped, n as u64, "{name} n={n}");
                assert!(report.outputs().iter().all(|&h| h == 1), "{name} n={n}");
            }
        }
    }

    #[test]
    fn synchronizing_scheduler_assigns_epochs_like_cycles() {
        let report = run_relay(&mut SynchronizingScheduler, 4);
        // Starts emit at epoch 1; the single forwarding generation at
        // epoch 2.
        assert_eq!(report.max_epoch, 2);
        assert_eq!(report.per_epoch_messages, vec![0, 4, 4]);
    }

    #[derive(Debug)]
    struct Silent;
    impl AsyncProcess for Silent {
        type Msg = ();
        type Output = ();
        fn on_start(&mut self) -> Actions<(), ()> {
            Actions::idle()
        }
        fn on_message(&mut self, _f: Port, (): ()) -> Actions<(), ()> {
            Actions::idle()
        }
    }

    #[test]
    fn quiescence_without_halt_is_an_error() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = AsyncEngine::new(topo, vec![Silent, Silent]).unwrap();
        assert!(matches!(
            engine.run(&mut FifoScheduler),
            Err(SimError::QuiescentWithoutHalt { running: 2 })
        ));
    }

    #[derive(Debug)]
    struct PingForever;
    impl AsyncProcess for PingForever {
        type Msg = ();
        type Output = ();
        fn on_start(&mut self) -> Actions<(), ()> {
            Actions::send(Port::Right, ())
        }
        fn on_message(&mut self, _f: Port, (): ()) -> Actions<(), ()> {
            Actions::send(Port::Right, ())
        }
    }

    #[test]
    fn livelock_hits_delivery_budget() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = AsyncEngine::new(topo, vec![PingForever, PingForever]).unwrap();
        engine.set_max_deliveries(100);
        assert!(matches!(
            engine.run(&mut FifoScheduler),
            Err(SimError::MaxDeliveriesExceeded {
                max_deliveries: 100
            })
        ));
    }

    #[test]
    fn messages_to_halted_processors_are_dropped() {
        #[derive(Debug)]
        struct OneShot;
        impl AsyncProcess for OneShot {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self) -> Actions<(), ()> {
                Actions::send_both((), ()).and_halt(())
            }
            fn on_message(&mut self, _f: Port, (): ()) -> Actions<(), ()> {
                unreachable!("halted before any delivery")
            }
        }
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = AsyncEngine::new(topo, vec![OneShot, OneShot, OneShot]).unwrap();
        let report = engine.run(&mut FifoScheduler).unwrap();
        assert_eq!(report.messages, 6);
        assert_eq!(report.dropped, 6);
        assert_eq!(report.deliveries, 6);
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let a = run_relay(&mut RandomScheduler::new(7), 6);
        let b = run_relay(&mut RandomScheduler::new(7), 6);
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_schedulers_preserve_outcomes() {
        let want = run_relay(&mut FifoScheduler, 7).into_outputs();
        assert_eq!(run_relay(&mut LifoScheduler, 7).into_outputs(), want);
        for victim in 0..7 {
            for port in [Port::Left, Port::Right] {
                let got = run_relay(&mut LinkStarvingScheduler::new(victim, port), 7);
                assert_eq!(got.into_outputs(), want, "victim {victim}/{port:?}");
            }
        }
    }

    #[test]
    fn starved_link_still_delivers_eventually() {
        // A ping-pong that *requires* the victim link to make progress.
        #[derive(Debug)]
        struct Echo {
            bounces: u8,
        }
        impl AsyncProcess for Echo {
            type Msg = u8;
            type Output = u8;
            fn on_start(&mut self) -> Actions<u8, u8> {
                Actions::send(Port::Right, 0)
            }
            fn on_message(&mut self, from: Port, b: u8) -> Actions<u8, u8> {
                self.bounces += 1;
                if b >= 4 {
                    Actions::halt(self.bounces)
                } else {
                    Actions::send(from.opposite(), b + 1).and_halt(self.bounces)
                }
            }
        }
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = AsyncEngine::new(
            topo,
            vec![
                Echo { bounces: 0 },
                Echo { bounces: 0 },
                Echo { bounces: 0 },
            ],
        )
        .unwrap();
        let report = engine
            .run(&mut LinkStarvingScheduler::new(0, Port::Left))
            .unwrap();
        assert_eq!(report.deliveries, report.messages);
    }

    /// An [`AsyncPortProcess`] on a general graph: every processor echoes
    /// the first message on each port back once, then halts once every port
    /// has spoken.
    #[derive(Debug)]
    struct EchoAll {
        ports: usize,
        heard: usize,
    }

    impl AsyncPortProcess for EchoAll {
        type Msg = u8;
        type Output = usize;
        fn on_start_ports(&mut self) -> PortActions<u8, usize> {
            let everywhere: Vec<PortId> = (0..self.ports as u16).map(PortId::new).collect();
            PortActions::send_each(&everywhere, 1)
        }
        fn on_message_port(&mut self, from: PortId, msg: u8) -> PortActions<u8, usize> {
            self.heard += 1;
            let step = if msg == 1 {
                PortActions::send(from, 2)
            } else {
                PortActions::idle()
            };
            if self.heard == 2 * self.ports {
                step.and_halt(self.heard)
            } else {
                step
            }
        }
    }

    #[test]
    fn general_graphs_run_on_the_async_engine() {
        // K_4: each processor sends one token per port and echoes each
        // token once — 12 first-generation + 12 echo messages.
        let graph = crate::graph::GraphTopology::complete(4).unwrap();
        let procs = (0..4).map(|_| EchoAll { ports: 3, heard: 0 }).collect();
        let mut engine = AsyncEngine::new(graph, procs).unwrap();
        let report = engine.run(&mut FifoScheduler).unwrap();
        assert_eq!(report.messages, 24);
        assert_eq!(report.outputs(), &[6, 6, 6, 6]);

        // The same run survives an adversarial schedule.
        let graph = crate::graph::GraphTopology::complete(4).unwrap();
        let procs = (0..4).map(|_| EchoAll { ports: 3, heard: 0 }).collect();
        let mut engine = AsyncEngine::new(graph, procs).unwrap();
        let report = engine.run(&mut RandomScheduler::new(9)).unwrap();
        assert_eq!(report.messages, 24);
        assert_eq!(report.outputs(), &[6, 6, 6, 6]);
    }

    #[test]
    fn async_quiescence_on_a_disconnected_graph_names_the_components() {
        // Two disjoint edges: every processor emits once and waits for
        // three deliveries, but only one can ever arrive across a single
        // edge — the run goes quiescent and the verdict names the split.
        #[derive(Debug)]
        struct WaitForThree {
            heard: u64,
        }
        impl AsyncPortProcess for WaitForThree {
            type Msg = u8;
            type Output = u64;
            fn on_start_ports(&mut self) -> PortActions<u8, u64> {
                PortActions::send(PortId::new(0), 1)
            }
            fn on_message_port(&mut self, _from: PortId, _msg: u8) -> PortActions<u8, u64> {
                self.heard += 1;
                if self.heard >= 3 {
                    PortActions::halt(self.heard)
                } else {
                    PortActions::idle()
                }
            }
        }
        let graph = crate::graph::GraphTopology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let procs = (0..4).map(|_| WaitForThree { heard: 0 }).collect();
        let mut engine: AsyncEngine<WaitForThree, _> = AsyncEngine::new(graph, procs).unwrap();
        assert!(matches!(
            engine.run(&mut FifoScheduler),
            Err(SimError::DisconnectedTopology {
                components: 2,
                running: 4
            })
        ));
    }

    /// The async engine now shares the trace plumbing: `run_traced` records
    /// one event per send, stamped with the arrival epoch.
    #[test]
    fn async_runs_can_be_traced() {
        let topo = RingTopology::oriented(4).unwrap();
        let mut engine = AsyncEngine::new(topo, (0..4).map(|_| Relay).collect()).unwrap();
        let (report, trace) = engine.run_traced(&mut SynchronizingScheduler).unwrap();
        assert_eq!(trace.events().len() as u64, report.messages);
        assert_eq!(trace.per_cycle(), report.per_epoch_messages);
    }
}
