//! Wake-up schedules for start synchronization (paper §4.2.3, §6.3.3).
//!
//! Processors wake either spontaneously or on message arrival. Since a
//! freshly woken processor can immediately send a message that wakes its
//! neighbour, the adversary may only schedule spontaneous wake-ups that
//! differ by at most one cycle between adjacent processors (paper §6.3.3).

use crate::error::SimError;

/// A legal assignment of spontaneous wake-up cycles to the `n` ring
/// processors: adjacent processors (including the wrap-around pair) wake
/// at most one cycle apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSchedule(Vec<u64>);

impl WakeSchedule {
    /// All processors wake at cycle 0 — the simultaneous-start model.
    #[must_use]
    pub fn simultaneous(n: usize) -> WakeSchedule {
        WakeSchedule(vec![0; n])
    }

    /// Builds a schedule from explicit wake times.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] if `times.len() < 2`, or
    /// [`SimError::LengthMismatch`] (with `expected == actual`) if some
    /// adjacent pair differs by more than one cycle — an illegal adversary
    /// schedule.
    pub fn from_times(times: Vec<u64>) -> Result<WakeSchedule, SimError> {
        let n = times.len();
        if n < 2 {
            return Err(SimError::RingTooSmall { n });
        }
        for i in 0..n {
            let a = times[i];
            let b = times[(i + 1) % n];
            if a.abs_diff(b) > 1 {
                return Err(SimError::LengthMismatch {
                    expected: i,
                    actual: (i + 1) % n,
                });
            }
        }
        Ok(WakeSchedule(times))
    }

    /// The paper's §6.3.3 encoding: a `{0,1}` word `ε₁ … εₙ` where
    /// processor `i` wakes one cycle *later* than processor `i − 1` when
    /// `εᵢ = 1` and one cycle *earlier* when `εᵢ = 0` (a dummy processor 0
    /// anchors cycle 0). Times are shifted so the earliest is 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the word does not wrap legally (the first and
    /// last times differ by more than one) — per the paper this requires
    /// the ±1 walk to return near its origin.
    ///
    /// # Panics
    ///
    /// Panics on symbols other than 0 and 1.
    pub fn from_word(word: &[u8]) -> Result<WakeSchedule, SimError> {
        let mut t = 0i64;
        let mut raw = Vec::with_capacity(word.len());
        for &e in word {
            match e {
                1 => t += 1,
                0 => t -= 1,
                other => panic!("invalid word symbol {other}"),
            }
            raw.push(t);
        }
        let min = raw.iter().copied().min().unwrap_or(0);
        WakeSchedule::from_times(raw.into_iter().map(|t| (t - min) as u64).collect())
    }

    /// A pseudo-random legal schedule (deterministic per seed): a shuffled
    /// balanced ±1 walk.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn random(n: usize, seed: u64) -> WakeSchedule {
        assert!(n >= 2, "ring needs at least 2 processors");
        // Balanced word: ⌊n/2⌋ ones, rest zeros, then one symbol flipped
        // for odd n so the walk ends at ±1 (still a legal wrap).
        let ones = n / 2;
        let mut word: Vec<u8> = (0..n).map(|i| u8::from(i < ones)).collect();
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            word.swap(i, j);
        }
        if n % 2 == 1 {
            // An odd walk ends at -1; wrapping legally requires the first
            // step to also go down.
            if word[0] == 1 {
                let z = word.iter().position(|&b| b == 0).expect("has zeros");
                word.swap(0, z);
            }
        }
        WakeSchedule::from_word(&word).expect("balanced walks wrap legally")
    }

    /// Ring size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.0.len()
    }

    /// The wake-up cycles.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Consumes the schedule, returning the wake-up cycles (ready for
    /// [`crate::sync::SyncEngine::set_wakeups`]).
    #[must_use]
    pub fn into_vec(self) -> Vec<u64> {
        self.0
    }

    /// Largest difference between any two wake-up times.
    #[must_use]
    pub fn max_skew(&self) -> u64 {
        let max = self.0.iter().copied().max().unwrap_or(0);
        let min = self.0.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_has_zero_skew() {
        let w = WakeSchedule::simultaneous(5);
        assert_eq!(w.max_skew(), 0);
        assert_eq!(w.as_slice(), &[0; 5]);
    }

    #[test]
    fn word_walk_matches_paper() {
        // Word 1 1 0 0: times 1, 2, 1, 0 (already min 0).
        let w = WakeSchedule::from_word(&[1, 1, 0, 0]).unwrap();
        assert_eq!(w.as_slice(), &[1, 2, 1, 0]);
        assert_eq!(w.max_skew(), 2);
    }

    #[test]
    fn illegal_wrap_is_rejected() {
        // 1 1 1 1 walks to 4; wrap diff |t4 - t1| = 3 > 1.
        assert!(WakeSchedule::from_word(&[1, 1, 1, 1]).is_err());
        assert!(WakeSchedule::from_times(vec![0, 2, 0]).is_err());
    }

    #[test]
    fn random_schedules_are_legal_and_deterministic() {
        for n in [2usize, 3, 7, 20] {
            let a = WakeSchedule::random(n, 99);
            let b = WakeSchedule::random(n, 99);
            assert_eq!(a, b);
            assert!(WakeSchedule::from_times(a.as_slice().to_vec()).is_ok());
        }
    }
}
