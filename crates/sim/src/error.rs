//! Error types for the simulators.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or running a ring simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A ring must have at least two processors (a single self-connected
    /// processor would make both ports share one channel).
    RingTooSmall {
        /// The offending ring size.
        n: usize,
    },
    /// The engine exceeded its configured cycle budget without all
    /// processors halting — almost always an algorithm bug (deadlock).
    MaxCyclesExceeded {
        /// The configured budget.
        max_cycles: u64,
        /// How many processors were still running.
        running: usize,
    },
    /// The asynchronous engine reached quiescence (no messages in flight)
    /// but some processors never halted.
    QuiescentWithoutHalt {
        /// How many processors were still running.
        running: usize,
    },
    /// The asynchronous engine exceeded its configured delivery budget.
    MaxDeliveriesExceeded {
        /// The configured budget.
        max_deliveries: u64,
    },
    /// Mismatched vector lengths when building a configuration or engine.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RingTooSmall { n } => {
                write!(f, "ring must have at least 2 processors, got {n}")
            }
            SimError::MaxCyclesExceeded {
                max_cycles,
                running,
            } => write!(
                f,
                "exceeded {max_cycles} cycles with {running} processors still running"
            ),
            SimError::QuiescentWithoutHalt { running } => write!(
                f,
                "no messages in flight but {running} processors never halted"
            ),
            SimError::MaxDeliveriesExceeded { max_deliveries } => {
                write!(f, "exceeded {max_deliveries} message deliveries")
            }
            SimError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::RingTooSmall { n: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = SimError::MaxCyclesExceeded {
            max_cycles: 10,
            running: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
