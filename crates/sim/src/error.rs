//! Error types for the simulators.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or running a ring simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A ring must have at least two processors (a single self-connected
    /// processor would make both ports share one channel).
    RingTooSmall {
        /// The offending ring size.
        n: usize,
    },
    /// The engine exceeded its configured cycle budget without all
    /// processors halting — almost always an algorithm bug (deadlock).
    MaxCyclesExceeded {
        /// The configured budget.
        max_cycles: u64,
        /// How many processors were still running.
        running: usize,
    },
    /// The asynchronous engine reached quiescence (no messages in flight)
    /// but some processors never halted.
    QuiescentWithoutHalt {
        /// How many processors were still running.
        running: usize,
    },
    /// The asynchronous engine exceeded its configured delivery budget.
    MaxDeliveriesExceeded {
        /// The configured budget.
        max_deliveries: u64,
    },
    /// Mismatched vector lengths when building a configuration or engine.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A topology edge joins a processor to itself. Self-loops are
    /// rejected at construction: an anonymous processor cannot tell a
    /// self-loop from a genuine neighbour, so a looped port would silently
    /// corrupt every neighbourhood argument.
    SelfLoop {
        /// The processor with the looped edge.
        processor: usize,
    },
    /// A topology edge references a processor outside `0..n`.
    EdgeOutOfRange {
        /// The offending endpoint.
        processor: usize,
        /// The topology size.
        n: usize,
    },
    /// The run could not terminate because the topology is disconnected —
    /// the distinct non-termination verdict for partitioned graphs, so a
    /// partition is not misdiagnosed as an algorithm deadlock.
    DisconnectedTopology {
        /// Number of connected components (≥ 2).
        components: usize,
        /// How many processors were still running.
        running: usize,
    },
    /// An explicit port assignment reuses or skips a port slot: each
    /// processor's ports must be `0..ports(i)` with exactly one wire per
    /// port.
    PortClash {
        /// The processor whose port space is malformed.
        processor: usize,
        /// The clashing or missing port index.
        port: u16,
    },
    /// A dynamic topology was built with an empty round schedule.
    EmptySchedule,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RingTooSmall { n } => {
                write!(f, "ring must have at least 2 processors, got {n}")
            }
            SimError::MaxCyclesExceeded {
                max_cycles,
                running,
            } => write!(
                f,
                "exceeded {max_cycles} cycles with {running} processors still running"
            ),
            SimError::QuiescentWithoutHalt { running } => write!(
                f,
                "no messages in flight but {running} processors never halted"
            ),
            SimError::MaxDeliveriesExceeded { max_deliveries } => {
                write!(f, "exceeded {max_deliveries} message deliveries")
            }
            SimError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            SimError::SelfLoop { processor } => {
                write!(
                    f,
                    "self-loop at processor {processor}: edges must join distinct processors"
                )
            }
            SimError::EdgeOutOfRange { processor, n } => {
                write!(
                    f,
                    "edge endpoint {processor} out of range for {n} processors"
                )
            }
            SimError::DisconnectedTopology {
                components,
                running,
            } => write!(
                f,
                "topology has {components} connected components; {running} processors cannot \
                 be reached and never halted"
            ),
            SimError::PortClash { processor, port } => {
                write!(
                    f,
                    "processor {processor} port {port} is assigned twice or never: ports must \
                     be a gap-free 0..k with one wire each"
                )
            }
            SimError::EmptySchedule => {
                write!(
                    f,
                    "dynamic topology needs at least one round in its schedule"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::RingTooSmall { n: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = SimError::MaxCyclesExceeded {
            max_cycles: 10,
            running: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
