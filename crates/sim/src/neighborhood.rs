//! `k`-neighborhoods and the symmetry index `SI(R, k)` (paper §2).
//!
//! The `k`-neighborhood of a processor is everything it can possibly have
//! learnt after `k` synchronous cycles (Lemma 3.1): the inputs and relative
//! orientations of the `2k + 1` processors around it, *as seen from its own
//! orientation*. Two processors with equal `k`-neighborhoods are
//! indistinguishable for `k` cycles — the engine tests in this crate verify
//! that property against the actual simulators.

use std::collections::HashMap;
use std::hash::Hash;

use crate::config::RingConfig;
use crate::port::Orientation;

/// The `k`-neighborhood of a processor: a string of `2k + 1` pairs
/// *(relative orientation bit, input)* in the processor's own reading
/// direction.
///
/// For a clockwise processor `i` this is
/// `D(i−k)I(i−k), …, D(i+k)I(i+k)`; for a counterclockwise processor the
/// string is reversed and the orientation bits complemented, exactly as in
/// the paper. Equality of [`Neighborhood`] values is the paper's "has the
/// same `k`-neighborhood".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Neighborhood<V>(Vec<(u8, V)>);

impl<V> Neighborhood<V> {
    /// The radius `k` of this neighborhood.
    #[must_use]
    pub fn radius(&self) -> usize {
        debug_assert!(self.0.len() % 2 == 1);
        self.0.len() / 2
    }

    /// The underlying string of (orientation bit, input) pairs.
    #[must_use]
    pub fn as_pairs(&self) -> &[(u8, V)] {
        &self.0
    }
}

/// Computes the `k`-neighborhood of processor `i` in configuration `config`.
///
/// # Panics
///
/// Panics if `i ≥ n`.
///
/// ```
/// use anonring_sim::{neighborhood, RingConfig};
///
/// // On 110110 every processor sees the same multiset of 1-neighborhoods
/// // twice: the configuration is periodic with period 3.
/// let r = RingConfig::oriented_bits("110110").unwrap();
/// assert_eq!(neighborhood(&r, 0, 1), neighborhood(&r, 3, 1));
/// assert_ne!(neighborhood(&r, 0, 1), neighborhood(&r, 1, 1));
/// ```
#[must_use]
pub fn neighborhood<V: Clone>(config: &RingConfig<V>, i: usize, k: usize) -> Neighborhood<V> {
    let topo = config.topology();
    let n = config.n();
    assert!(i < n, "processor index {i} out of range (n = {n})");
    let k = k as isize;
    let pairs: Vec<(u8, V)> = match topo.orientation(i) {
        Orientation::Clockwise => (-k..=k)
            .map(|off| {
                let j = topo.wrap(i, off);
                (topo.orientation(j).bit(), config.input(j).clone())
            })
            .collect(),
        Orientation::Counterclockwise => (-k..=k)
            .rev()
            .map(|off| {
                let j = topo.wrap(i, off);
                (1 - topo.orientation(j).bit(), config.input(j).clone())
            })
            .collect(),
    };
    Neighborhood(pairs)
}

/// The number of processors of `config` whose `k`-neighborhood equals `nb`
/// — the paper's `g(R, σ)`.
#[must_use]
pub fn occurrences<V: Clone + Eq + Hash>(config: &RingConfig<V>, nb: &Neighborhood<V>) -> usize {
    let k = nb.radius();
    (0..config.n())
        .filter(|&i| &neighborhood(config, i, k) == nb)
        .count()
}

/// The symmetry index `SI(R, k)`: the minimum positive number of occurrences
/// of any `k`-neighborhood in `R` (paper §2).
///
/// `SI(R, k) = 1` when some neighborhood is unique; `SI(R, k) = n` when all
/// processors look alike out to radius `k`.
///
/// ```
/// use anonring_sim::{symmetry_index, RingConfig};
///
/// let uniform = RingConfig::oriented_bits("1111").unwrap();
/// assert_eq!(symmetry_index(&uniform, 1), 4);
///
/// let almost = RingConfig::oriented_bits("1110").unwrap();
/// assert_eq!(symmetry_index(&almost, 1), 1);
/// ```
#[must_use]
pub fn symmetry_index<V: Clone + Eq + Hash>(config: &RingConfig<V>, k: usize) -> usize {
    joint_symmetry_index(std::slice::from_ref(config), k)
}

/// The joint symmetry index `SI(R₁, …, R_j, k)`: the minimum positive
/// *total* number of occurrences of any `k`-neighborhood across all the
/// configurations (paper §2). Used by the synchronous fooling-pair bound
/// (condition 6b).
///
/// # Panics
///
/// Panics if `configs` is empty.
#[must_use]
pub fn joint_symmetry_index<V: Clone + Eq + Hash>(configs: &[RingConfig<V>], k: usize) -> usize {
    assert!(!configs.is_empty(), "need at least one configuration");
    let mut counts: HashMap<Neighborhood<V>, usize> = HashMap::new();
    for config in configs {
        for i in 0..config.n() {
            *counts.entry(neighborhood(config, i, k)).or_insert(0) += 1;
        }
    }
    counts.values().copied().min().expect("nonempty ring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Orientation::{Clockwise as CW, Counterclockwise as CCW};

    #[test]
    fn oriented_ring_neighborhood_is_input_window() {
        let r = RingConfig::oriented_bits("01101").unwrap();
        let nb = neighborhood(&r, 2, 1);
        let vals: Vec<u8> = nb.as_pairs().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1, 1, 0]); // I(1), I(2), I(3)
        assert_eq!(nb.radius(), 1);
    }

    #[test]
    fn counterclockwise_processor_reads_mirror_image() {
        // Two processors facing opposite ways over the same palindromic
        // input window must have equal neighborhoods.
        //
        // Ring: inputs 0 1 0 1 0 1 (period 2), orientations: 0 CW, 3 CCW.
        let inputs = vec![0u8, 1, 0, 1, 0, 1];
        let orient = vec![CW, CW, CW, CCW, CW, CW];
        let r = RingConfig::new(inputs, orient).unwrap();
        // Processor 0 (CW) sees (I5,I0,I1) = (1,0,1) with D-bits (1,1,1).
        // Processor 3 (CCW) sees reversed window (I4,I3,I2) = (0,1,0)
        // with complemented D-bits (0,1,0) -> (1-0,1-0,1-1)... compute:
        let nb0 = neighborhood(&r, 0, 1);
        let nb3 = neighborhood(&r, 3, 1);
        // D-bits for nb0: D(5)=1,D(0)=1,D(1)=1 -> all 1; inputs 1,0,1.
        assert_eq!(nb0.as_pairs(), &[(1, 1), (1, 0), (1, 1)]);
        // nb3 reversed: offsets +1,0,-1 -> j=4,3,2; bits 1-D = 0,1,0;
        // inputs 0,1,0.
        assert_eq!(nb3.as_pairs(), &[(0, 0), (1, 1), (0, 0)]);
        assert_ne!(nb0, nb3);
    }

    #[test]
    fn mirror_symmetric_pair_has_equal_neighborhoods() {
        // Theorem 3.5's configuration: two oriented half rings of a
        // 2n-ring. Processors i and 2n+1-i (1-based) have the same
        // neighborhoods. Using 0-based indices on n=6: D = CW for 0..3,
        // CCW for 3..6 — processors i and 5-i are mirror partners.
        let orient = vec![CW, CW, CW, CCW, CCW, CCW];
        let r = RingConfig::new(vec![0u8; 6], orient).unwrap();
        for i in 0..6 {
            let j = 5 - i;
            assert_eq!(
                neighborhood(&r, i, 2),
                neighborhood(&r, j, 2),
                "processors {i} and {j}"
            );
        }
    }

    #[test]
    fn symmetry_index_of_uniform_ring_is_n() {
        let r = RingConfig::oriented_bits("11111").unwrap();
        for k in 0..5 {
            assert_eq!(symmetry_index(&r, k), 5);
        }
    }

    #[test]
    fn symmetry_index_with_unique_input_is_one() {
        let r = RingConfig::oriented_bits("11110").unwrap();
        for k in 0..5 {
            assert_eq!(symmetry_index(&r, k), 1, "k={k}");
        }
    }

    #[test]
    fn periodic_ring_symmetry_index_equals_repetitions() {
        let r = RingConfig::oriented_bits("011011011").unwrap();
        for k in 0..4 {
            assert_eq!(symmetry_index(&r, k), 3, "k={k}");
        }
    }

    #[test]
    fn joint_symmetry_counts_across_configs() {
        let a = RingConfig::oriented_bits("1111").unwrap();
        let b = RingConfig::oriented_bits("1110").unwrap();
        // 0-neighborhood "0" occurs once in total (only in b).
        assert_eq!(joint_symmetry_index(&[a.clone(), b], 0), 1);
        // Two copies of the uniform ring double every count.
        assert_eq!(joint_symmetry_index(&[a.clone(), a], 1), 8);
    }

    #[test]
    fn occurrences_matches_definition() {
        // 0110: windows of radius 1 are 001, 011, 110, 100 — all distinct.
        let r = RingConfig::oriented_bits("0110").unwrap();
        for i in 0..4 {
            let nb = neighborhood(&r, i, 1);
            assert_eq!(occurrences(&r, &nb), 1, "processor {i}");
        }
        // 0101: windows alternate between 010 and 101, two each.
        let r = RingConfig::oriented_bits("0101").unwrap();
        let nb = neighborhood(&r, 0, 1);
        assert_eq!(occurrences(&r, &nb), 2);
    }
}
