//! In-process hot-path profiler (S26).
//!
//! The ROADMAP's speed pass targets two costs the codebase could not
//! previously *see*: the single `Hub` lock that serializes meter, stamp
//! and trace work per message, and the per-message allocation churn in
//! `Emit` fan-out and the `Wire` codec. This module is the measurement
//! layer those optimizations will be judged against. It is zero-dep and
//! always compiled; a single relaxed [`AtomicBool`] gates every probe,
//! so the disabled cost is one atomic load per instrumented site
//! (measured <5% end-to-end even when *enabled* — see
//! `BENCH_profile_overhead.md`).
//!
//! Three probe families:
//!
//! 1. **Hub lock** — acquire-wait and hold duration histograms per
//!    operation ([`HubOp`]), per-section time inside the critical
//!    region ([`HubSection`]: meter / stamp / trace), a contention
//!    counter (`try_lock` misses) and a longest-hold watermark.
//! 2. **Queue dwell** — enqueue→dequeue wall time per port slot, in
//!    both the sim `LinkFabric` and the net `Inbox` ([`QueueKind`]).
//! 3. **Allocation/copy accounting** — payload fan-out clones in
//!    `Emit`, byte volumes through the `Wire` codec, and frame buffer
//!    growth events.
//!
//! All state is process-global atomics: probes never take a lock, never
//! allocate, and are safe from any thread. [`snapshot`] materializes
//! the tallies into a [`MetricsRegistry`], which `ringd` merges into
//! its `{"type":"metrics"}` scrape — so the profile rides the existing
//! JSON and Prometheus surfaces for free. Every metric name is always
//! present in the snapshot (zero-valued when the profiler is off), so
//! dashboards can be built before the first enabled run.
//!
//! Lock discipline note: the profiler observes the hub lock from
//! *outside* the critical section (wait/hold timers bracket the guard)
//! and from section markers *inside* it; it never reads hub state
//! itself. anonlint's `lock-discipline` walker is scoped over this
//! module to keep it that way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::telemetry::{Histogram, MetricId, MetricsRegistry};

/// Hub entry points whose lock acquire/hold times are tracked
/// separately — contention behaviour differs between the send path
/// (every message), the delivery path (every dequeue) and halt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubOp {
    /// `route_send`: a node emitted a message.
    Send,
    /// `deliver`: a transport handed a message to its destination.
    Deliver,
    /// `halt` / teardown paths.
    Halt,
}

impl HubOp {
    const ALL: [HubOp; 3] = [HubOp::Send, HubOp::Deliver, HubOp::Halt];

    fn index(self) -> usize {
        match self {
            HubOp::Send => 0,
            HubOp::Deliver => 1,
            HubOp::Halt => 2,
        }
    }

    fn label(self) -> &'static str {
        match self {
            HubOp::Send => "send",
            HubOp::Deliver => "deliver",
            HubOp::Halt => "halt",
        }
    }
}

/// Work segments inside the hub critical section. The S21 invariants
/// force meter, stamp and trace updates under one guard; these markers
/// show where that one lock's time actually goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubSection {
    /// Conservation metering (`CostMeter` updates).
    Meter,
    /// Causal stamping (sequence numbers, wall stamps).
    Stamp,
    /// Trace event append.
    Trace,
}

impl HubSection {
    const ALL: [HubSection; 3] = [HubSection::Meter, HubSection::Stamp, HubSection::Trace];

    fn index(self) -> usize {
        match self {
            HubSection::Meter => 0,
            HubSection::Stamp => 1,
            HubSection::Trace => 2,
        }
    }

    fn label(self) -> &'static str {
        match self {
            HubSection::Meter => "meter",
            HubSection::Stamp => "stamp",
            HubSection::Trace => "trace",
        }
    }
}

/// Which queue a dwell observation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// The sim scheduler's in-flight link fabric.
    Fabric,
    /// The net runtime's per-node inbox.
    Inbox,
}

impl QueueKind {
    const ALL: [QueueKind; 2] = [QueueKind::Fabric, QueueKind::Inbox];

    fn index(self) -> usize {
        match self {
            QueueKind::Fabric => 0,
            QueueKind::Inbox => 1,
        }
    }

    fn label(self) -> &'static str {
        match self {
            QueueKind::Fabric => "fabric",
            QueueKind::Inbox => "inbox",
        }
    }
}

/// Ports 0..=2 get their own dwell series; everything above folds into
/// a shared `3+` slot so the metric surface stays bounded on wide
/// topologies.
const PORT_SLOTS: usize = 4;

const PORT_LABELS: [&str; PORT_SLOTS] = ["0", "1", "2", "3+"];

fn port_slot(port: usize) -> usize {
    port.min(PORT_SLOTS - 1)
}

/// Lock-free histogram mirror: same power-of-two buckets as
/// [`Histogram`], tallied with relaxed atomics so hot paths never
/// contend on the profiler itself. Materialized via
/// `Histogram::from_parts` at snapshot time.
struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl AtomicHistogram {
    const fn new() -> AtomicHistogram {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; 65],
        }
    }

    fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Histogram {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        Histogram::from_parts(
            count,
            self.sum.load(Ordering::Relaxed),
            if count == 0 { 0 } else { min },
            self.max.load(Ordering::Relaxed),
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        )
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

static LOCK_WAIT: [AtomicHistogram; 3] = [const { AtomicHistogram::new() }; 3];
static LOCK_HOLD: [AtomicHistogram; 3] = [const { AtomicHistogram::new() }; 3];
static LOCK_SECTION: [AtomicHistogram; 3] = [const { AtomicHistogram::new() }; 3];
static QUEUE_DWELL: [AtomicHistogram; 8] = [const { AtomicHistogram::new() }; 8];

static CONTENTION: AtomicU64 = AtomicU64::new(0);
static HOLD_MAX_US: AtomicU64 = AtomicU64::new(0);
static FANOUT_CLONES: AtomicU64 = AtomicU64::new(0);
static WORD_CLONE_BYTES: AtomicU64 = AtomicU64::new(0);
static WIRE_ENCODE_BYTES: AtomicU64 = AtomicU64::new(0);
static WIRE_DECODE_BYTES: AtomicU64 = AtomicU64::new(0);
static FRAME_GROWTHS: AtomicU64 = AtomicU64::new(0);

fn as_us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// Turns the profiler on or off process-wide. Probes left in the hot
/// paths cost one relaxed atomic load when off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether probes are currently recording.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every tally. Does not change the enabled gate.
pub fn reset() {
    for h in &LOCK_WAIT {
        h.reset();
    }
    for h in &LOCK_HOLD {
        h.reset();
    }
    for h in &LOCK_SECTION {
        h.reset();
    }
    for h in &QUEUE_DWELL {
        h.reset();
    }
    CONTENTION.store(0, Ordering::Relaxed);
    HOLD_MAX_US.store(0, Ordering::Relaxed);
    FANOUT_CLONES.store(0, Ordering::Relaxed);
    WORD_CLONE_BYTES.store(0, Ordering::Relaxed);
    WIRE_ENCODE_BYTES.store(0, Ordering::Relaxed);
    WIRE_DECODE_BYTES.store(0, Ordering::Relaxed);
    FRAME_GROWTHS.store(0, Ordering::Relaxed);
}

/// A wall-clock stamp, taken only when the profiler is enabled. Probe
/// sites hold `Option<Instant>` so the disabled path never calls
/// `Instant::now`.
#[must_use]
pub fn stamp() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records how long a hub caller waited to acquire the lock.
pub fn record_lock_wait(op: HubOp, since: Option<Instant>) {
    if let Some(since) = since {
        LOCK_WAIT[op.index()].observe(as_us(since.elapsed()));
    }
}

/// Counts one `try_lock` miss — somebody else held the hub lock.
pub fn record_contention() {
    if enabled() {
        CONTENTION.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records enqueue→dequeue wall time for one message through a queue.
pub fn record_queue_dwell(kind: QueueKind, port: usize, enqueued: Option<Instant>) {
    if let Some(enqueued) = enqueued {
        let slot = kind.index() * PORT_SLOTS + port_slot(port);
        QUEUE_DWELL[slot].observe(as_us(enqueued.elapsed()));
    }
}

/// Counts payload clones made while fanning one emission out to
/// `clones` extra ports (the `Emit` copy cost the speed pass targets).
pub fn record_fanout_clones(clones: u64) {
    if enabled() && clones > 0 {
        FANOUT_CLONES.fetch_add(clones, Ordering::Relaxed);
    }
}

/// Counts payload bytes copied when a `Word` crosses the codec.
pub fn record_word_clone_bytes(bytes: u64) {
    if enabled() {
        WORD_CLONE_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Counts bytes written by `Wire::encode`, plus whether the frame
/// buffer had to grow (a reallocation on the send path).
pub fn record_wire_encode(bytes: u64, grew: bool) {
    if enabled() {
        WIRE_ENCODE_BYTES.fetch_add(bytes, Ordering::Relaxed);
        if grew {
            FRAME_GROWTHS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counts bytes consumed by `Wire::decode`.
pub fn record_wire_decode(bytes: u64) {
    if enabled() {
        WIRE_DECODE_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Measures one hub lock hold: created right after the guard is
/// acquired, records hold duration (and the longest-hold watermark)
/// when dropped. Bind it alongside the guard so it drops just before
/// the unlock.
pub struct HoldTimer {
    op: HubOp,
    from: Option<Instant>,
}

impl HoldTimer {
    /// Starts timing a hold for `op` (no-op when the profiler is off).
    #[must_use]
    pub fn start(op: HubOp) -> HoldTimer {
        HoldTimer { op, from: stamp() }
    }
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        if let Some(from) = self.from {
            let us = as_us(from.elapsed());
            LOCK_HOLD[self.op.index()].observe(us);
            HOLD_MAX_US.fetch_max(us, Ordering::Relaxed);
        }
    }
}

/// Measures one segment inside the hub critical section.
pub struct SectionTimer {
    section: HubSection,
    from: Option<Instant>,
}

impl SectionTimer {
    /// Starts timing `section` (no-op when the profiler is off).
    #[must_use]
    pub fn begin(section: HubSection) -> SectionTimer {
        SectionTimer {
            section,
            from: stamp(),
        }
    }

    /// Stops the timer and records the segment duration.
    pub fn finish(self) {
        if let Some(from) = self.from {
            LOCK_SECTION[self.section.index()].observe(as_us(from.elapsed()));
        }
    }
}

/// Materializes every tally into a registry. All metric names are
/// always present — zero-valued histograms and counters when the
/// profiler has not run — so the scrape surface is stable.
#[must_use]
pub fn snapshot() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for op in HubOp::ALL {
        reg.put_histogram(
            MetricId::with_labels("hub_lock_wait_us", &[("op", op.label())]),
            LOCK_WAIT[op.index()].snapshot(),
        );
        reg.put_histogram(
            MetricId::with_labels("hub_lock_hold_us", &[("op", op.label())]),
            LOCK_HOLD[op.index()].snapshot(),
        );
    }
    for section in HubSection::ALL {
        reg.put_histogram(
            MetricId::with_labels("hub_lock_section_us", &[("section", section.label())]),
            LOCK_SECTION[section.index()].snapshot(),
        );
    }
    for kind in QueueKind::ALL {
        for (slot, port) in PORT_LABELS.iter().enumerate() {
            reg.put_histogram(
                MetricId::with_labels("queue_dwell_us", &[("queue", kind.label()), ("port", port)]),
                QUEUE_DWELL[kind.index() * PORT_SLOTS + slot].snapshot(),
            );
        }
    }
    reg.add_counter(
        MetricId::plain("hub_lock_contention_total"),
        CONTENTION.load(Ordering::Relaxed),
    );
    reg.set_gauge(
        MetricId::plain("hub_lock_hold_max_us"),
        i64::try_from(HOLD_MAX_US.load(Ordering::Relaxed)).unwrap_or(i64::MAX),
    );
    reg.add_counter(
        MetricId::plain("profile_fanout_clones_total"),
        FANOUT_CLONES.load(Ordering::Relaxed),
    );
    reg.add_counter(
        MetricId::plain("profile_word_clone_bytes_total"),
        WORD_CLONE_BYTES.load(Ordering::Relaxed),
    );
    reg.add_counter(
        MetricId::plain("profile_wire_encode_bytes_total"),
        WIRE_ENCODE_BYTES.load(Ordering::Relaxed),
    );
    reg.add_counter(
        MetricId::plain("profile_wire_decode_bytes_total"),
        WIRE_DECODE_BYTES.load(Ordering::Relaxed),
    );
    reg.add_counter(
        MetricId::plain("profile_frame_growths_total"),
        FRAME_GROWTHS.load(Ordering::Relaxed),
    );
    reg.set_gauge(MetricId::plain("profile_enabled"), i64::from(enabled()));
    reg
}

static SESSION_GATE: Mutex<()> = Mutex::new(());

/// Exclusive profiling window for tests: serializes on a process-wide
/// gate, resets all tallies and enables the profiler; disables it on
/// drop. The gate keeps concurrent tests from reading each other's
/// tallies out of the shared statics.
pub struct ProfilerSession {
    _gate: MutexGuard<'static, ()>,
}

/// Opens a [`ProfilerSession`]. Blocks until any other session ends.
#[must_use]
pub fn session() -> ProfilerSession {
    let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    set_enabled(true);
    ProfilerSession { _gate: gate }
}

impl Drop for ProfilerSession {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let s = session();
        set_enabled(false);
        assert!(stamp().is_none());
        record_lock_wait(HubOp::Send, stamp());
        record_contention();
        record_fanout_clones(3);
        record_wire_encode(100, true);
        let _ = HoldTimer::start(HubOp::Send);
        SectionTimer::begin(HubSection::Meter).finish();
        let reg = snapshot();
        assert_eq!(
            reg.counter(&MetricId::plain("hub_lock_contention_total")),
            0
        );
        assert_eq!(
            reg.counter(&MetricId::plain("profile_fanout_clones_total")),
            0
        );
        assert_eq!(reg.gauge(&MetricId::plain("profile_enabled")), Some(0));
        let wait = MetricId::with_labels("hub_lock_wait_us", &[("op", "send")]);
        let empty: Vec<_> = reg
            .histograms()
            .filter(|(id, h)| **id == wait && h.count == 0)
            .collect();
        assert_eq!(empty.len(), 1, "names registered even when idle");
        drop(s);
    }

    #[test]
    fn enabled_probes_tally_into_the_snapshot() {
        let s = session();
        record_lock_wait(HubOp::Send, stamp());
        {
            let _hold = HoldTimer::start(HubOp::Deliver);
            let t = SectionTimer::begin(HubSection::Stamp);
            t.finish();
        }
        record_contention();
        record_queue_dwell(QueueKind::Inbox, 7, stamp());
        record_fanout_clones(2);
        record_word_clone_bytes(16);
        record_wire_encode(24, true);
        record_wire_decode(24);
        let reg = snapshot();
        assert_eq!(
            reg.counter(&MetricId::plain("hub_lock_contention_total")),
            1
        );
        assert_eq!(
            reg.counter(&MetricId::plain("profile_fanout_clones_total")),
            2
        );
        assert_eq!(
            reg.counter(&MetricId::plain("profile_word_clone_bytes_total")),
            16
        );
        assert_eq!(
            reg.counter(&MetricId::plain("profile_wire_encode_bytes_total")),
            24
        );
        assert_eq!(
            reg.counter(&MetricId::plain("profile_frame_growths_total")),
            1
        );
        assert_eq!(reg.gauge(&MetricId::plain("profile_enabled")), Some(1));
        let by_id = |name: &'static str, labels: &[(&'static str, &str)]| {
            let id = MetricId::with_labels(name, labels);
            reg.histograms()
                .find(|(got, _)| **got == id)
                .map(|(_, h)| h.count)
        };
        assert_eq!(by_id("hub_lock_wait_us", &[("op", "send")]), Some(1));
        assert_eq!(by_id("hub_lock_hold_us", &[("op", "deliver")]), Some(1));
        assert_eq!(
            by_id("hub_lock_section_us", &[("section", "stamp")]),
            Some(1)
        );
        // Port 7 folds into the shared high-port slot.
        assert_eq!(
            by_id("queue_dwell_us", &[("queue", "inbox"), ("port", "3+")]),
            Some(1)
        );
        drop(s);
    }

    #[test]
    fn reset_zeroes_all_tallies() {
        let s = session();
        record_contention();
        record_queue_dwell(QueueKind::Fabric, 0, stamp());
        reset();
        let reg = snapshot();
        assert_eq!(
            reg.counter(&MetricId::plain("hub_lock_contention_total")),
            0
        );
        assert!(reg.histograms().all(|(_, h)| h.count == 0));
        drop(s);
    }
}
