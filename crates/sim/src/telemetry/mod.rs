//! Telemetry over the runtime's observer stream: a metrics registry,
//! phase-span profiles, a JSONL flight recorder, and causal replay.
//!
//! The layer is strictly downstream of the single send path
//! ([`crate::runtime::LinkFabric`]): every number here is derived from the
//! same [`TraceEvent`] stream both engines emit, so telemetry can never
//! disagree with [`crate::runtime::CostMeter`] (a property test pins
//! this).
//!
//! Data flow:
//!
//! ```text
//! engine ──TraceEvent──▶ Telemetry (hot Vec tallies, no allocation)
//!                   │         └─▶ registry() → MetricsRegistry → to_json()
//!                   ├────▶ FlightRecorder → to_jsonl() ⇄ Recording (replay)
//!                   └────▶ CausalDag → critical_path() / to_dot()
//! ```
//!
//! [`Telemetry`] is the *aggregating* observer: it keeps plain vectors
//! indexed by processor / directed link / time on the hot path and folds
//! them into a labelled [`MetricsRegistry`] only when a snapshot is
//! requested. [`FlightRecorder`] is the *recording* observer: it keeps
//! the raw events (optionally in a bounded ring buffer) for JSONL export
//! and offline replay by the `tracer` CLI. Run both at once with
//! [`crate::runtime::FanOut`].

pub mod causality;
pub mod merge;
mod metrics;
mod recorder;

pub use causality::{CausalDag, CausalNode, CausalityError, CriticalPath, PathWeight};
pub use merge::MergeError;
pub use metrics::{Histogram, MetricId, MetricsRegistry};
pub use recorder::{
    seq_shard, FlightRecorder, Recording, RecordingError, ReplayEvent, OLDEST_PARSEABLE_VERSION,
    RECORDING_VERSION, SHARD_SEQ_SHIFT,
};

use std::collections::BTreeMap;

use crate::port::PortId;
use crate::runtime::{Observer, Span, TraceEvent};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Message and bit tallies for one `(phase, round)` span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Messages sent under the span.
    pub messages: u64,
    /// Bits sent under the span.
    pub bits: u64,
}

/// The aggregating telemetry observer.
///
/// Hot-path updates touch only pre-sized vectors (per processor, per
/// directed link) plus one `BTreeMap` entry per *distinct* span — no
/// per-event label formatting. Fold into a [`MetricsRegistry`] with
/// [`Telemetry::registry`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    n: usize,
    messages: u64,
    bits: u64,
    deliveries: u64,
    drops: u64,
    per_proc_sent: Vec<u64>,
    per_proc_sent_bits: Vec<u64>,
    per_proc_received: Vec<u64>,
    per_time_messages: Vec<u64>,
    /// Current queue depth per directed link, indexed `[to][port]`; the
    /// per-processor vectors grow with the highest port observed (every
    /// processor starts with the ring's two).
    inflight: Vec<Vec<u64>>,
    max_inflight: Vec<Vec<u64>>,
    halt_times: Vec<Option<u64>>,
    spans: BTreeMap<Span, SpanStats>,
    unspanned: SpanStats,
}

impl Telemetry {
    /// Telemetry for a ring of `n` processors.
    #[must_use]
    pub fn new(n: usize) -> Telemetry {
        Telemetry {
            n,
            messages: 0,
            bits: 0,
            deliveries: 0,
            drops: 0,
            per_proc_sent: vec![0; n],
            per_proc_sent_bits: vec![0; n],
            per_proc_received: vec![0; n],
            per_time_messages: Vec::new(),
            inflight: vec![vec![0; 2]; n],
            max_inflight: vec![vec![0; 2]; n],
            halt_times: vec![None; n],
            spans: BTreeMap::new(),
            unspanned: SpanStats::default(),
        }
    }

    /// Ring size this observer was sized for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total messages observed.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bits observed.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Messages consumed by a live receiver.
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Messages discarded because the receiver had halted.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Messages sent per time index (index 0 = cycle/epoch 0); extends
    /// through the latest event of any kind, zeros included.
    #[must_use]
    pub fn per_time_messages(&self) -> &[u64] {
        &self.per_time_messages
    }

    /// Messages sent by each processor.
    #[must_use]
    pub fn per_proc_sent(&self) -> &[u64] {
        &self.per_proc_sent
    }

    /// Halt time per processor (`None` when it never halted).
    #[must_use]
    pub fn halt_times(&self) -> &[Option<u64>] {
        &self.halt_times
    }

    /// Per-span traffic, sorted by `(phase, round)`; sends with no span
    /// are excluded (see [`Telemetry::unspanned`]).
    #[must_use]
    pub fn phase_profile(&self) -> Vec<(Span, SpanStats)> {
        self.spans.iter().map(|(&s, &v)| (s, v)).collect()
    }

    /// Traffic from sends that carried no span annotation.
    #[must_use]
    pub fn unspanned(&self) -> SpanStats {
        self.unspanned
    }

    /// Messages summed over every round of the named phase.
    #[must_use]
    pub fn phase_messages(&self, phase: &str) -> u64 {
        self.spans
            .iter()
            .filter(|(s, _)| s.phase == phase)
            .map(|(_, v)| v.messages)
            .sum()
    }

    /// Ensures the per-link vectors of `to` cover `port` (higher-degree
    /// topologies reveal their ports through the event stream).
    fn grow_link(&mut self, to: usize, port: PortId) {
        let need = port.index() + 1;
        if self.inflight[to].len() < need {
            self.inflight[to].resize(need, 0);
            self.max_inflight[to].resize(need, 0);
        }
    }

    fn note_time(&mut self, time: u64) {
        let idx = time as usize;
        if self.per_time_messages.len() <= idx {
            self.per_time_messages.resize(idx + 1, 0);
        }
    }

    /// Folds the tallies into a labelled registry snapshot.
    ///
    /// Counters: `messages_total`, `bits_total`, `deliveries_total`,
    /// `drops_total` (plain and per `proc`/`span` where meaningful).
    /// Gauges: `halt_time{proc}`, `halted_total`, `queue_depth_max{to,port}`,
    /// `run_horizon`. Histograms: `messages_per_time`, `sent_per_proc`.
    #[must_use]
    pub fn registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add_counter(MetricId::plain("messages_total"), self.messages);
        reg.add_counter(MetricId::plain("bits_total"), self.bits);
        reg.add_counter(MetricId::plain("deliveries_total"), self.deliveries);
        reg.add_counter(MetricId::plain("drops_total"), self.drops);
        for i in 0..self.n {
            let proc = i.to_string();
            let labels: &[(&str, &str)] = &[("proc", &proc)];
            reg.add_counter(
                MetricId::with_labels("messages_total", labels),
                self.per_proc_sent[i],
            );
            reg.add_counter(
                MetricId::with_labels("bits_total", labels),
                self.per_proc_sent_bits[i],
            );
            reg.add_counter(
                MetricId::with_labels("received_total", labels),
                self.per_proc_received[i],
            );
            if let Some(t) = self.halt_times[i] {
                reg.set_gauge(
                    MetricId::with_labels("halt_time", labels),
                    i64::try_from(t).unwrap_or(i64::MAX),
                );
            }
        }
        for (span, stats) in &self.spans {
            let round = span.round.to_string();
            let labels: &[(&str, &str)] = &[("phase", span.phase), ("round", &round)];
            reg.add_counter(
                MetricId::with_labels("span_messages", labels),
                stats.messages,
            );
            reg.add_counter(MetricId::with_labels("span_bits", labels), stats.bits);
        }
        for to in 0..self.n {
            for (k, &max) in self.max_inflight[to].iter().enumerate() {
                let to_label = to.to_string();
                let port_label = PortId::new(k as u16).to_string();
                reg.set_gauge(
                    MetricId::with_labels(
                        "queue_depth_max",
                        &[("to", &to_label), ("port", &port_label)],
                    ),
                    i64::try_from(max).unwrap_or(i64::MAX),
                );
            }
        }
        reg.set_gauge(
            MetricId::plain("halted_total"),
            i64::try_from(self.halt_times.iter().flatten().count()).unwrap_or(i64::MAX),
        );
        reg.set_gauge(
            MetricId::plain("run_horizon"),
            i64::try_from(self.per_time_messages.len()).unwrap_or(i64::MAX),
        );
        for &count in &self.per_time_messages {
            reg.observe(MetricId::plain("messages_per_time"), count);
        }
        for &sent in &self.per_proc_sent {
            reg.observe(MetricId::plain("sent_per_proc"), sent);
        }
        reg
    }
}

impl Observer for Telemetry {
    fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Send(s) => {
                self.messages += 1;
                self.bits += s.bits as u64;
                self.per_proc_sent[s.from] += 1;
                self.per_proc_sent_bits[s.from] += s.bits as u64;
                self.note_time(s.cycle);
                self.per_time_messages[s.cycle as usize] += 1;
                self.grow_link(s.to, s.port);
                let link = s.port.index();
                self.inflight[s.to][link] += 1;
                self.max_inflight[s.to][link] =
                    self.max_inflight[s.to][link].max(self.inflight[s.to][link]);
                let stats = match s.span {
                    Some(span) => self.spans.entry(span).or_default(),
                    None => &mut self.unspanned,
                };
                stats.messages += 1;
                stats.bits += s.bits as u64;
            }
            TraceEvent::Deliver {
                time,
                to,
                port,
                seq: _,
                dropped,
            } => {
                self.note_time(time);
                self.grow_link(to, port);
                let link = port.index();
                self.inflight[to][link] = self.inflight[to][link].saturating_sub(1);
                if dropped {
                    self.drops += 1;
                } else {
                    self.deliveries += 1;
                    self.per_proc_received[to] += 1;
                }
            }
            TraceEvent::Halt { time, processor } => {
                self.note_time(time);
                self.halt_times[processor] = Some(time);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{json_escape, MetricId, SpanStats, Telemetry};
    use crate::port::PortId;
    use crate::runtime::{Observer, SendEvent, Span, TraceEvent};

    fn send(cycle: u64, from: usize, to: usize, port: PortId, bits: usize) -> TraceEvent {
        TraceEvent::Send(SendEvent {
            cycle,
            from,
            to,
            port,
            bits,
            seq: 0,
            lamport: 1,
            parent: None,
            span: None,
        })
    }

    #[test]
    fn tallies_follow_the_event_stream() {
        let mut t = Telemetry::new(3);
        t.on_event(&send(0, 0, 1, PortId::LEFT, 4));
        t.on_event(&send(0, 2, 1, PortId::RIGHT, 2));
        t.on_event(&TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: PortId::LEFT,
            seq: 0,
            dropped: false,
        });
        t.on_event(&TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: PortId::RIGHT,
            seq: 0,
            dropped: true,
        });
        t.on_event(&TraceEvent::Halt {
            time: 2,
            processor: 1,
        });
        assert_eq!(t.messages(), 2);
        assert_eq!(t.bits(), 6);
        assert_eq!(t.deliveries(), 1);
        assert_eq!(t.drops(), 1);
        assert_eq!(t.per_proc_sent(), &[1, 0, 1]);
        assert_eq!(t.per_time_messages(), &[2, 0, 0]);
        assert_eq!(t.halt_times()[1], Some(2));
        assert_eq!(
            t.unspanned(),
            SpanStats {
                messages: 2,
                bits: 6
            }
        );
    }

    #[test]
    fn queue_depth_peaks_per_directed_link() {
        let mut t = Telemetry::new(2);
        // Two sends land in proc 1's left-port queue before either is
        // consumed: the peak depth is 2 even though the final depth is 0.
        t.on_event(&send(0, 0, 1, PortId::LEFT, 1));
        t.on_event(&send(1, 0, 1, PortId::LEFT, 1));
        t.on_event(&TraceEvent::Deliver {
            time: 2,
            to: 1,
            port: PortId::LEFT,
            seq: 0,
            dropped: false,
        });
        t.on_event(&TraceEvent::Deliver {
            time: 3,
            to: 1,
            port: PortId::LEFT,
            seq: 0,
            dropped: false,
        });
        let reg = t.registry();
        let id = MetricId::with_labels("queue_depth_max", &[("to", "1"), ("port", "left")]);
        assert_eq!(reg.gauge(&id), Some(2));
        let other = MetricId::with_labels("queue_depth_max", &[("to", "0"), ("port", "left")]);
        assert_eq!(reg.gauge(&other), Some(0));
    }

    #[test]
    fn spans_aggregate_by_phase_and_round() {
        let mut t = Telemetry::new(2);
        for round in [1, 1, 2] {
            t.on_event(&TraceEvent::Send(SendEvent {
                cycle: round,
                from: 0,
                to: 1,
                port: PortId::LEFT,
                bits: 3,
                seq: 0,
                lamport: 1,
                parent: None,
                span: Some(Span::new("labels", round)),
            }));
        }
        t.on_event(&send(3, 1, 0, PortId::RIGHT, 1));
        let profile = t.phase_profile();
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].0, Span::new("labels", 1));
        assert_eq!(
            profile[0].1,
            SpanStats {
                messages: 2,
                bits: 6
            }
        );
        assert_eq!(t.phase_messages("labels"), 3);
        assert_eq!(t.phase_messages("collect"), 0);
        assert_eq!(t.unspanned().messages, 1);
    }

    #[test]
    fn registry_snapshot_reflects_totals() {
        let mut t = Telemetry::new(2);
        t.on_event(&send(0, 0, 1, PortId::LEFT, 5));
        t.on_event(&TraceEvent::Halt {
            time: 1,
            processor: 0,
        });
        let reg = t.registry();
        assert_eq!(reg.counter(&MetricId::plain("messages_total")), 1);
        assert_eq!(reg.counter(&MetricId::plain("bits_total")), 5);
        assert_eq!(
            reg.counter(&MetricId::with_labels("messages_total", &[("proc", "0")])),
            1
        );
        assert_eq!(
            reg.gauge(&MetricId::with_labels("halt_time", &[("proc", "0")])),
            Some(1)
        );
        assert_eq!(reg.gauge(&MetricId::plain("halted_total")), Some(1));
        let hist = reg
            .histogram(&MetricId::plain("messages_per_time"))
            .unwrap();
        assert_eq!(hist.count, 2); // horizon covers times 0 and 1
    }

    #[test]
    fn escape_covers_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
