//! The flight recorder: serializes the full [`TraceEvent`] stream to JSONL
//! and parses it back for offline replay.
//!
//! ## Format (version 2, pinned by a golden test)
//!
//! One JSON object per line, no external dependencies (hand-rolled like
//! `BENCH_sweep.json`). The first line is a `meta` record; every further
//! line is one event, in execution order:
//!
//! ```text
//! {"type":"meta","version":2,"n":4,"label":"E1 n=16","truncated":0}
//! {"type":"send","t":1,"from":0,"to":1,"port":"left","bits":2,"seq":0,"lam":1,"phase":"scatter","round":0}
//! {"type":"send","t":2,"from":1,"to":2,"port":"left","bits":2,"seq":1,"lam":3,"parent":0}
//! {"type":"deliver","t":1,"to":1,"port":"left","seq":0,"dropped":false}
//! {"type":"halt","t":3,"proc":2}
//! ```
//!
//! Version 2 adds the causal fields of [`crate::runtime::CausalClocks`]:
//! `seq` (global send sequence number, echoed by the matching deliver),
//! `lam` (sender's Lamport timestamp), and `parent` (the enabling send's
//! `seq`; omitted on spontaneous sends). `phase`/`round` appear only on
//! annotated sends. Keys are emitted in the fixed order shown, so parse →
//! re-serialize round-trips **byte identically** — the invariant that
//! keeps recorded artifacts diffable.
//!
//! The meta record may additionally carry an `engine` key (after `label`)
//! naming the producing driver — `"sim-sync"`, `"sim-async"` or `"net"`.
//! It is omitted when unset, so recordings made before the field existed
//! (and recorders that never call [`FlightRecorder::with_engine`])
//! serialize byte-identically to the pinned goldens.
//!
//! [`Recording::parse_jsonl`] still accepts version-1 recordings (causal
//! fields default to zero / absent) and re-serializes them as version 1,
//! preserving the byte-identity invariant for archived artifacts. On
//! untruncated version-2 input the parser *validates* the causal edges:
//! send `seq`s must strictly increase, a `parent` must name an earlier
//! send, and a deliver's `seq` must name a seen send — a malformed edge
//! reports its 1-based line number and snippet like any other parse error.
//!
//! ## Bounded memory
//!
//! [`FlightRecorder::bounded`] keeps only the most recent `capacity`
//! events in a ring buffer, counting evictions in the meta record's
//! `truncated` field — so recording an `O(n²)` run at large `n` costs
//! `O(capacity)` memory, not `O(messages)`.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::port::PortId;
use crate::runtime::{Observer, TraceEvent};
use crate::telemetry::json_escape;

/// Current serialization version; bump when the line format changes.
pub const RECORDING_VERSION: u64 = 2;

/// Oldest serialization version [`Recording::parse_jsonl`] still accepts.
pub const OLDEST_PARSEABLE_VERSION: u64 = 1;

/// Bit position of the shard tag in a sharded recording's send `seq`.
///
/// A cluster shard assigns its sequence numbers locally; to keep
/// cross-shard references (a deliver's `seq`, a send's `parent`)
/// unambiguous, every assigned seq carries the owning shard in its high
/// bits: `seq = shard << SHARD_SEQ_SHIFT | local_counter`. Single-process
/// recordings use shard 0 implicitly (tag bits all zero), so the format
/// is unchanged for them. 65 536 shards × 2⁴⁸ sends per shard.
pub const SHARD_SEQ_SHIFT: u32 = 48;

/// The shard that assigned a (possibly tagged) send sequence number.
#[must_use]
pub fn seq_shard(seq: u64) -> u64 {
    seq >> SHARD_SEQ_SHIFT
}

/// An owned mirror of [`TraceEvent`], as reconstructed by the replay
/// parser (phase names become owned strings — the `&'static str` of a
/// live [`crate::runtime::Span`] cannot survive serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A message was sent.
    Send {
        /// Send cycle (sync) or arrival epoch (async).
        time: u64,
        /// Sending processor.
        from: usize,
        /// Receiving processor.
        to: usize,
        /// Arrival port at the receiver.
        port: PortId,
        /// Encoded message length.
        bits: usize,
        /// Global send sequence number (0 on version-1 recordings).
        seq: u64,
        /// Sender's Lamport timestamp (0 on version-1 recordings).
        lamport: u64,
        /// `seq` of the enabling send (`None` when spontaneous, and on
        /// version-1 recordings).
        parent: Option<u64>,
        /// Phase annotation, if the emission carried one.
        phase: Option<String>,
        /// Round within the phase (present iff `phase` is).
        round: u64,
        /// Wall-clock microseconds since run start, stamped by real-time
        /// engines (`"engine":"net"`); absent on simulator recordings.
        wall_us: Option<u64>,
    },
    /// A message was consumed (or discarded) at its receiver.
    Deliver {
        /// Consumption time.
        time: u64,
        /// Receiving processor.
        to: usize,
        /// Local arrival port.
        port: PortId,
        /// `seq` of the consumed send (0 on version-1 recordings).
        seq: u64,
        /// True when the receiver had already halted.
        dropped: bool,
        /// Wall-clock microseconds since run start, stamped by real-time
        /// engines; absent on simulator recordings.
        wall_us: Option<u64>,
    },
    /// A processor halted.
    Halt {
        /// Halt time.
        time: u64,
        /// The halting processor.
        processor: usize,
    },
}

impl ReplayEvent {
    /// The event's time index.
    #[must_use]
    pub fn time(&self) -> u64 {
        match self {
            ReplayEvent::Send { time, .. }
            | ReplayEvent::Deliver { time, .. }
            | ReplayEvent::Halt { time, .. } => *time,
        }
    }

    fn from_trace(event: &TraceEvent) -> ReplayEvent {
        match *event {
            TraceEvent::Send(s) => ReplayEvent::Send {
                time: s.cycle,
                from: s.from,
                to: s.to,
                port: s.port,
                bits: s.bits,
                seq: s.seq,
                lamport: s.lamport,
                parent: s.parent,
                phase: s.span.map(|sp| sp.phase.to_string()),
                round: s.span.map_or(0, |sp| sp.round),
                wall_us: None,
            },
            TraceEvent::Deliver {
                time,
                to,
                port,
                seq,
                dropped,
            } => ReplayEvent::Deliver {
                time,
                to,
                port,
                seq,
                dropped,
                wall_us: None,
            },
            TraceEvent::Halt { time, processor } => ReplayEvent::Halt { time, processor },
        }
    }

    /// Writes one JSONL line in the given serialization `version` —
    /// version 1 omits the causal fields, so version-1 recordings keep
    /// round-tripping byte-identically.
    fn write_line(&self, out: &mut String, version: u64) {
        match self {
            ReplayEvent::Send {
                time,
                from,
                to,
                port,
                bits,
                seq,
                lamport,
                parent,
                phase,
                round,
                wall_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"send\",\"t\":{time},\"from\":{from},\"to\":{to},\
                     \"port\":\"{port}\",\"bits\":{bits}"
                );
                if version >= 2 {
                    let _ = write!(out, ",\"seq\":{seq},\"lam\":{lamport}");
                    if let Some(parent) = parent {
                        let _ = write!(out, ",\"parent\":{parent}");
                    }
                    if let Some(wall) = wall_us {
                        let _ = write!(out, ",\"wall\":{wall}");
                    }
                }
                if let Some(phase) = phase {
                    let _ = write!(
                        out,
                        ",\"phase\":\"{}\",\"round\":{round}",
                        json_escape(phase)
                    );
                }
                out.push_str("}\n");
            }
            ReplayEvent::Deliver {
                time,
                to,
                port,
                seq,
                dropped,
                wall_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"deliver\",\"t\":{time},\"to\":{to},\"port\":\"{port}\""
                );
                if version >= 2 {
                    let _ = write!(out, ",\"seq\":{seq}");
                    if let Some(wall) = wall_us {
                        let _ = write!(out, ",\"wall\":{wall}");
                    }
                }
                let _ = writeln!(out, ",\"dropped\":{dropped}}}");
            }
            ReplayEvent::Halt { time, processor } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"halt\",\"t\":{time},\"proc\":{processor}}}"
                );
            }
        }
    }
}

fn write_meta(
    out: &mut String,
    version: u64,
    n: usize,
    label: &str,
    engine: &str,
    shard: Option<(u64, u64)>,
    truncated: u64,
) {
    let _ = write!(
        out,
        "{{\"type\":\"meta\",\"version\":{version},\"n\":{n},\"label\":\"{}\"",
        json_escape(label)
    );
    if !engine.is_empty() {
        let _ = write!(out, ",\"engine\":\"{}\"", json_escape(engine));
    }
    if let Some((shard, shards)) = shard {
        let _ = write!(out, ",\"shard\":{shard},\"shards\":{shards}");
    }
    let _ = writeln!(out, ",\"truncated\":{truncated}}}");
}

/// Records every event of a run for JSONL export. Plug it into
/// `run_with_observer` (optionally through [`crate::runtime::FanOut`]).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    n: usize,
    label: String,
    engine: String,
    shard: Option<(u64, u64)>,
    events: VecDeque<ReplayEvent>,
    capacity: Option<usize>,
    truncated: u64,
}

impl FlightRecorder {
    /// An unbounded recorder for a ring of `n` processors; `label` names
    /// the run in the meta record (experiment id, workload, …).
    #[must_use]
    pub fn new(n: usize, label: impl Into<String>) -> FlightRecorder {
        FlightRecorder {
            n,
            label: label.into(),
            engine: String::new(),
            shard: None,
            events: VecDeque::new(),
            capacity: None,
            truncated: 0,
        }
    }

    /// Names the producing engine/driver in the meta record (`"sim-sync"`,
    /// `"sim-async"`, `"net"`, …). Unset recorders omit the key entirely,
    /// preserving byte-identity with pre-engine artifacts.
    #[must_use]
    pub fn with_engine(mut self, engine: impl Into<String>) -> FlightRecorder {
        self.engine = engine.into();
        self
    }

    /// Marks the recording as shard `shard` of a `shards`-shard cluster
    /// run. Sharded recordings carry shard-tagged seqs (see
    /// [`SHARD_SEQ_SHIFT`]); the causal checker then accepts references to
    /// sends owned by other shards, which `telemetry::merge` resolves.
    /// Unset recorders omit the keys, preserving byte-identity.
    #[must_use]
    pub fn with_shard(mut self, shard: u64, shards: u64) -> FlightRecorder {
        self.shard = Some((shard, shards));
        self
    }

    /// A bounded recorder keeping only the most recent `capacity` events
    /// (ring-buffer mode); evicted events are counted as `truncated`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn bounded(n: usize, label: impl Into<String>, capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "a zero-capacity recorder records nothing");
        FlightRecorder {
            n,
            label: label.into(),
            engine: String::new(),
            shard: None,
            events: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            truncated: 0,
        }
    }

    /// Events currently held (the most recent `capacity` in bounded mode).
    pub fn events(&self) -> impl Iterator<Item = &ReplayEvent> {
        self.events.iter()
    }

    /// Number of events evicted by the ring buffer.
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Serializes the recording (meta line + one line per event) in the
    /// current format version.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        write_meta(
            &mut out,
            RECORDING_VERSION,
            self.n,
            &self.label,
            &self.engine,
            self.shard,
            self.truncated,
        );
        for event in &self.events {
            event.write_line(&mut out, RECORDING_VERSION);
        }
        out
    }

    /// Converts into an owned [`Recording`] (e.g. to aggregate without
    /// going through serialization).
    #[must_use]
    pub fn into_recording(self) -> Recording {
        Recording {
            version: RECORDING_VERSION,
            n: self.n,
            label: self.label,
            engine: self.engine,
            shard: self.shard,
            truncated: self.truncated,
            events: self.events.into_iter().collect(),
        }
    }
}

impl Observer for FlightRecorder {
    fn on_event(&mut self, event: &TraceEvent) {
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.truncated += 1;
            }
        }
        self.events.push_back(ReplayEvent::from_trace(event));
    }
}

/// A parse failure, with the 1-based line it occurred on and a snippet of
/// the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The offending line, truncated to [`SNIPPET_MAX`] characters (empty
    /// when there is no line to show, e.g. an empty input).
    pub snippet: String,
}

/// Maximum characters of input quoted in a [`RecordingError`] snippet.
pub const SNIPPET_MAX: usize = 80;

/// Truncates `line` to [`SNIPPET_MAX`] characters, marking elision.
fn snippet_of(line: &str) -> String {
    if line.chars().count() <= SNIPPET_MAX {
        line.to_string()
    } else {
        let mut s: String = line.chars().take(SNIPPET_MAX).collect();
        s.push('…');
        s
    }
}

impl core::fmt::Display for RecordingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, " (in: {:?})", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for RecordingError {}

/// A parsed recording: what [`FlightRecorder::to_jsonl`] wrote, read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// Serialization version the recording was parsed from (and will
    /// re-serialize as — archived version-1 artifacts stay version 1).
    pub version: u64,
    /// Ring size of the recorded run.
    pub n: usize,
    /// Run label from the meta record.
    pub label: String,
    /// Producing engine/driver from the meta record (`"sim-sync"`,
    /// `"sim-async"`, `"net"`); empty when the recording predates the
    /// field or the recorder never set it.
    pub engine: String,
    /// `(shard, shards)` of a per-shard cluster recording; `None` for
    /// ordinary single-process recordings.
    pub shard: Option<(u64, u64)>,
    /// Events evicted by ring-buffer mode before serialization.
    pub truncated: u64,
    /// The recorded events, in execution order.
    pub events: Vec<ReplayEvent>,
}

impl Recording {
    /// Parses a JSONL recording. Strict: every line must parse, the first
    /// line must be a `meta` record of a supported version
    /// ([`OLDEST_PARSEABLE_VERSION`] ..= [`RECORDING_VERSION`]).
    ///
    /// # Errors
    ///
    /// Returns a [`RecordingError`] naming the offending line.
    pub fn parse_jsonl(input: &str) -> Result<Recording, RecordingError> {
        let mut lines = input.lines().enumerate();
        let (idx, meta_line) = lines.next().ok_or_else(|| RecordingError {
            line: 1,
            message: "empty recording".into(),
            snippet: String::new(),
        })?;
        let meta = JsonObject::parse(meta_line).map_err(|m| RecordingError {
            line: idx + 1,
            message: m,
            snippet: snippet_of(meta_line),
        })?;
        let err = |line: usize, message: String| RecordingError {
            line,
            message,
            snippet: snippet_of(meta_line),
        };
        if meta.string("type") != Some("meta") {
            return Err(err(1, "first line must be a meta record".into()));
        }
        let version = meta
            .number("version")
            .ok_or_else(|| err(1, "meta record missing \"version\"".into()))?;
        if !(OLDEST_PARSEABLE_VERSION..=RECORDING_VERSION).contains(&version) {
            return Err(err(1, format!("unsupported version {version}")));
        }
        let n = meta
            .number("n")
            .ok_or_else(|| err(1, "meta record missing \"n\"".into()))?;
        let shard = match (meta.number("shard"), meta.number("shards")) {
            (Some(shard), Some(shards)) if shard < shards => Some((shard, shards)),
            (None, None) => None,
            _ => return Err(err(1, "bad \"shard\"/\"shards\" pair".into())),
        };
        let mut recording = Recording {
            version,
            n: usize::try_from(n).map_err(|_| err(1, "n out of range".into()))?,
            label: meta.string("label").unwrap_or_default().to_string(),
            engine: meta.string("engine").unwrap_or_default().to_string(),
            shard,
            truncated: meta.number("truncated").unwrap_or(0),
            events: Vec::new(),
        };
        // Causal-edge validation only makes sense when the full prefix is
        // present: a ring-buffered recording may have evicted the parents.
        let mut causal = (version >= 2 && recording.truncated == 0)
            .then(|| CausalCheck::new(shard.map(|(shard, _)| shard)));
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let err = |message: String| RecordingError {
                line: lineno,
                message,
                snippet: snippet_of(line),
            };
            let obj = JsonObject::parse(line).map_err(&err)?;
            let time = obj
                .number("t")
                .ok_or_else(|| err("event missing \"t\"".into()))?;
            let field = |name: &str| -> Result<usize, RecordingError> {
                obj.number(name)
                    .and_then(|v| usize::try_from(v).ok())
                    .ok_or_else(|| err(format!("event missing \"{name}\"")))
            };
            let port = |obj: &JsonObject| -> Result<PortId, RecordingError> {
                match obj.string("port") {
                    Some("left") => Ok(PortId::LEFT),
                    Some("right") => Ok(PortId::RIGHT),
                    Some(p) => p
                        .strip_prefix('p')
                        .and_then(|k| k.parse::<u16>().ok())
                        .map(PortId::new)
                        .ok_or_else(|| err("bad \"port\"".into())),
                    None => Err(err("bad \"port\"".into())),
                }
            };
            let event = match obj.string("type") {
                Some("send") => {
                    let (seq, lamport) = if version >= 2 {
                        (
                            obj.number("seq")
                                .ok_or_else(|| err("send missing \"seq\"".into()))?,
                            obj.number("lam")
                                .ok_or_else(|| err("send missing \"lam\"".into()))?,
                        )
                    } else {
                        (0, 0)
                    };
                    let parent = (version >= 2).then(|| obj.number("parent")).flatten();
                    if let Some(check) = causal.as_mut() {
                        check.on_send(seq, parent).map_err(&err)?;
                    }
                    ReplayEvent::Send {
                        time,
                        from: field("from")?,
                        to: field("to")?,
                        port: port(&obj)?,
                        bits: field("bits")?,
                        seq,
                        lamport,
                        parent,
                        phase: obj.string("phase").map(str::to_string),
                        round: obj.number("round").unwrap_or(0),
                        wall_us: (version >= 2).then(|| obj.number("wall")).flatten(),
                    }
                }
                Some("deliver") => {
                    let seq = if version >= 2 {
                        obj.number("seq")
                            .ok_or_else(|| err("deliver missing \"seq\"".into()))?
                    } else {
                        0
                    };
                    if let Some(check) = causal.as_mut() {
                        check.on_deliver(seq).map_err(&err)?;
                    }
                    ReplayEvent::Deliver {
                        time,
                        to: field("to")?,
                        port: port(&obj)?,
                        seq,
                        dropped: obj
                            .boolean("dropped")
                            .ok_or_else(|| err("deliver missing \"dropped\"".into()))?,
                        wall_us: (version >= 2).then(|| obj.number("wall")).flatten(),
                    }
                }
                Some("halt") => ReplayEvent::Halt {
                    time,
                    processor: field("proc")?,
                },
                other => {
                    return Err(err(format!("unknown event type {other:?}")));
                }
            };
            recording.events.push(event);
        }
        Ok(recording)
    }

    /// Re-serializes exactly as [`FlightRecorder::to_jsonl`] would — parse
    /// followed by `to_jsonl` is byte-identical (the golden test pins it),
    /// in the version the recording was parsed from.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        write_meta(
            &mut out,
            self.version,
            self.n,
            &self.label,
            &self.engine,
            self.shard,
            self.truncated,
        );
        for event in &self.events {
            event.write_line(&mut out, self.version);
        }
        out
    }

    /// Stamps events with wall-clock microsecond offsets, one stamp per
    /// recorded event in order (the shape real-time engines hand back —
    /// their event log and stamp vector grow in the same critical
    /// section). Halt events take no stamp but still consume their slot.
    /// Extra stamps beyond the event count are ignored; missing stamps
    /// leave the tail unstamped.
    pub fn attach_wall_stamps(&mut self, stamps: &[u64]) {
        for (event, &stamp) in self.events.iter_mut().zip(stamps) {
            match event {
                ReplayEvent::Send { wall_us, .. } | ReplayEvent::Deliver { wall_us, .. } => {
                    *wall_us = Some(stamp);
                }
                ReplayEvent::Halt { .. } => {}
            }
        }
    }

    /// Total messages recorded.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Send { .. }))
            .count() as u64
    }

    /// Total bits recorded.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                ReplayEvent::Send { bits, .. } => *bits as u64,
                _ => 0,
            })
            .sum()
    }

    /// `(sends, delivers, drops, halts)` per time index; the vector covers
    /// `0 ..= max event time` even where all four are zero.
    #[must_use]
    pub fn per_time_activity(&self) -> Vec<(u64, u64, u64, u64)> {
        let horizon = self.events.iter().map(ReplayEvent::time).max();
        let mut rows = vec![(0u64, 0u64, 0u64, 0u64); horizon.map_or(0, |h| h as usize + 1)];
        for event in &self.events {
            let row = &mut rows[event.time() as usize];
            match event {
                ReplayEvent::Send { .. } => row.0 += 1,
                ReplayEvent::Deliver { dropped, .. } => {
                    row.1 += 1;
                    row.2 += u64::from(*dropped);
                }
                ReplayEvent::Halt { .. } => row.3 += 1,
            }
        }
        rows
    }

    /// `(phase, round) → (messages, bits)` over annotated sends, sorted;
    /// unannotated sends aggregate under the empty phase name.
    #[must_use]
    pub fn phase_profile(&self) -> Vec<((String, u64), (u64, u64))> {
        let mut map: std::collections::BTreeMap<(String, u64), (u64, u64)> =
            std::collections::BTreeMap::new();
        for event in &self.events {
            if let ReplayEvent::Send {
                bits, phase, round, ..
            } = event
            {
                let key = (phase.clone().unwrap_or_default(), *round);
                let entry = map.entry(key).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += *bits as u64;
            }
        }
        map.into_iter().collect()
    }
}

/// Streaming validator for the version-2 causal fields: send `seq`s must
/// strictly increase, a `parent` must name an earlier send, a deliver's
/// `seq` must name a seen send.
///
/// On a per-shard cluster recording (`shard: Some(k)`) a send's seq must
/// carry this shard's tag, while parents and delivered seqs tagged with
/// a *different* shard are references to sends recorded elsewhere — those
/// are exempt here and resolved by `telemetry::merge`, which re-checks
/// the full invariants on the merged stream.
struct CausalCheck {
    seen: std::collections::BTreeSet<u64>,
    last_seq: Option<u64>,
    shard: Option<u64>,
}

impl CausalCheck {
    fn new(shard: Option<u64>) -> CausalCheck {
        CausalCheck {
            seen: std::collections::BTreeSet::new(),
            last_seq: None,
            shard,
        }
    }

    /// Whether `seq` names a send this recording must itself contain.
    fn local(&self, seq: u64) -> bool {
        self.shard.is_none_or(|shard| seq_shard(seq) == shard)
    }

    fn on_send(&mut self, seq: u64, parent: Option<u64>) -> Result<(), String> {
        if !self.local(seq) {
            return Err(format!(
                "send \"seq\":{seq} carries a foreign shard tag (shard {})",
                seq_shard(seq)
            ));
        }
        if self.last_seq.is_some_and(|last| seq <= last) {
            return Err(format!("send \"seq\":{seq} out of order"));
        }
        if let Some(parent) = parent {
            if self.local(parent) && !self.seen.contains(&parent) {
                return Err(format!(
                    "causal edge \"parent\":{parent} does not name an earlier send"
                ));
            }
        }
        self.last_seq = Some(seq);
        self.seen.insert(seq);
        Ok(())
    }

    fn on_deliver(&mut self, seq: u64) -> Result<(), String> {
        if self.local(seq) && !self.seen.contains(&seq) {
            return Err(format!("deliver \"seq\":{seq} does not name a seen send"));
        }
        Ok(())
    }
}

/// A flat JSON object of string/number/bool values — the only shape the
/// recording format uses.
struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
}

impl JsonObject {
    fn string(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            JsonValue::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    fn number(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            JsonValue::Num(n) if k == key => Some(*n),
            _ => None,
        })
    }

    fn boolean(&self, key: &str) -> Option<bool> {
        self.fields.iter().find_map(|(k, v)| match v {
            JsonValue::Bool(b) if k == key => Some(*b),
            _ => None,
        })
    }

    fn parse(line: &str) -> Result<JsonObject, String> {
        let mut chars = line.char_indices().peekable();
        let mut fields = Vec::new();
        skip_ws(&mut chars);
        expect(&mut chars, '{')?;
        skip_ws(&mut chars);
        if matches!(chars.peek(), Some((_, '}'))) {
            chars.next();
            return Ok(JsonObject { fields });
        }
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            expect(&mut chars, ':')?;
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => JsonValue::Str(parse_string(&mut chars)?),
                Some((_, 't')) => {
                    expect_literal(&mut chars, "true")?;
                    JsonValue::Bool(true)
                }
                Some((_, 'f')) => {
                    expect_literal(&mut chars, "false")?;
                    JsonValue::Bool(false)
                }
                Some((_, c)) if c.is_ascii_digit() => {
                    let mut num = 0u64;
                    while let Some(&(_, c)) = chars.peek() {
                        let Some(d) = c.to_digit(10) else { break };
                        num = num
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(u64::from(d)))
                            .ok_or("number overflow")?;
                        chars.next();
                    }
                    JsonValue::Num(num)
                }
                other => return Err(format!("unexpected value start {other:?}")),
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        skip_ws(&mut chars);
        if let Some((_, c)) = chars.next() {
            return Err(format!("trailing content starting at {c:?}"));
        }
        Ok(JsonObject { fields })
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn expect_literal(chars: &mut Chars<'_>, literal: &str) -> Result<(), String> {
    for want in literal.chars() {
        expect(chars, want)?;
    }
    Ok(())
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + c.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{FlightRecorder, Recording, ReplayEvent};
    use crate::port::PortId;
    use crate::runtime::{Observer, SendEvent, Span, TraceEvent};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Send(SendEvent {
                cycle: 0,
                from: 0,
                to: 1,
                port: PortId::LEFT,
                bits: 3,
                seq: 0,
                lamport: 1,
                parent: None,
                span: Some(Span::new("labels", 1)),
            }),
            TraceEvent::Send(SendEvent {
                cycle: 0,
                from: 2,
                to: 1,
                port: PortId::RIGHT,
                bits: 2,
                seq: 1,
                lamport: 1,
                parent: Some(0),
                span: None,
            }),
            TraceEvent::Deliver {
                time: 1,
                to: 1,
                port: PortId::LEFT,
                seq: 0,
                dropped: false,
            },
            TraceEvent::Halt {
                time: 2,
                processor: 1,
            },
        ]
    }

    #[test]
    fn round_trips_through_the_parser_byte_identically() {
        let mut rec = FlightRecorder::new(3, "unit \"quoted\" label");
        for event in sample_events() {
            rec.on_event(&event);
        }
        let jsonl = rec.to_jsonl();
        let parsed = Recording::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.n, 3);
        assert_eq!(parsed.label, "unit \"quoted\" label");
        assert_eq!(parsed.events.len(), 4);
        assert_eq!(parsed.to_jsonl(), jsonl);
    }

    #[test]
    fn engine_field_round_trips_and_is_omitted_when_unset() {
        // Unset: the meta line must look exactly like the pre-engine format.
        let bare = FlightRecorder::new(2, "bare").to_jsonl();
        assert!(!bare.contains("engine"), "{bare}");
        let parsed = Recording::parse_jsonl(&bare).unwrap();
        assert_eq!(parsed.engine, "");
        assert_eq!(parsed.to_jsonl(), bare);

        // Set: the key appears after "label" and survives the round-trip.
        let mut rec = FlightRecorder::new(3, "net run").with_engine("net");
        for event in sample_events() {
            rec.on_event(&event);
        }
        let jsonl = rec.to_jsonl();
        assert!(
            jsonl.starts_with(
                "{\"type\":\"meta\",\"version\":2,\"n\":3,\
                 \"label\":\"net run\",\"engine\":\"net\",\"truncated\":0}"
            ),
            "{jsonl}"
        );
        let parsed = Recording::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.engine, "net");
        assert_eq!(parsed.to_jsonl(), jsonl, "byte-identical round-trip");
    }

    #[test]
    fn wall_stamps_round_trip_and_stay_optional() {
        let mut rec = FlightRecorder::new(3, "net run").with_engine("net");
        for event in sample_events() {
            rec.on_event(&event);
        }
        // Unstamped: no "wall" key anywhere (simulator recordings keep
        // their exact pre-wall byte shape).
        let bare = rec.to_jsonl();
        assert!(!bare.contains("\"wall\""), "{bare}");

        // Stamped: one stamp per event in order; the halt slot is
        // consumed but not written.
        let mut recording = rec.into_recording();
        recording.attach_wall_stamps(&[10, 20, 35, 41]);
        let jsonl = recording.to_jsonl();
        assert!(
            jsonl.contains(",\"seq\":0,\"lam\":1,\"wall\":10,\"phase\":\"labels\""),
            "{jsonl}"
        );
        assert!(jsonl.contains(",\"parent\":0,\"wall\":20}"), "{jsonl}");
        assert!(
            jsonl.contains("\"deliver\",\"t\":1,\"to\":1,\"port\":\"left\",\"seq\":0,\"wall\":35"),
            "{jsonl}"
        );
        assert!(
            !jsonl.contains("\"wall\":41"),
            "halt takes no stamp: {jsonl}"
        );
        let parsed = Recording::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, recording);
        assert_eq!(parsed.to_jsonl(), jsonl, "byte-identical round-trip");

        // Short stamp vectors leave the tail unstamped instead of panicking.
        let mut partial = Recording::parse_jsonl(&bare).unwrap();
        partial.attach_wall_stamps(&[7]);
        let out = partial.to_jsonl();
        assert_eq!(out.matches("\"wall\"").count(), 1, "{out}");
    }

    #[test]
    fn parse_errors_carry_line_numbers_and_snippets() {
        let mut rec = FlightRecorder::new(3, "malformed");
        for event in sample_events() {
            rec.on_event(&event);
        }
        let jsonl = rec.to_jsonl();

        // Corrupt the third line (1 meta + 4 events): the error must name
        // it by 1-based number and quote it.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines[2] = "{\"type\":\"send\",\"t\":oops}";
        let err = Recording::parse_jsonl(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.snippet, "{\"type\":\"send\",\"t\":oops}");
        let shown = err.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("oops"), "{shown}");

        // A bad meta line snippets line 1.
        let err = Recording::parse_jsonl("{\"type\":\"send\"}").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.snippet, "{\"type\":\"send\"}");

        // Empty input has nothing to quote.
        let err = Recording::parse_jsonl("").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.snippet, "");

        // Long lines are truncated to SNIPPET_MAX with an ellipsis.
        let long = format!("{{\"type\":\"meta\",\"junk\":\"{}\"}}", "x".repeat(200));
        let err = Recording::parse_jsonl(&long).unwrap_err();
        assert_eq!(err.snippet.chars().count(), super::SNIPPET_MAX + 1);
        assert!(err.snippet.ends_with('…'));
    }

    #[test]
    fn bounded_mode_keeps_the_most_recent_events() {
        let mut rec = FlightRecorder::bounded(3, "ring", 2);
        for event in sample_events() {
            rec.on_event(&event);
        }
        assert_eq!(rec.truncated(), 2);
        assert_eq!(rec.events().count(), 2);
        let recording = rec.into_recording();
        assert_eq!(recording.truncated, 2);
        assert!(matches!(recording.events[1], ReplayEvent::Halt { .. }));
        let reparsed = Recording::parse_jsonl(&recording.to_jsonl()).unwrap();
        assert_eq!(reparsed, recording);
    }

    #[test]
    fn aggregations_cover_sends_and_activity() {
        let mut rec = FlightRecorder::new(3, "agg");
        for event in sample_events() {
            rec.on_event(&event);
        }
        let recording = rec.into_recording();
        assert_eq!(recording.messages(), 2);
        assert_eq!(recording.bits(), 5);
        assert_eq!(
            recording.per_time_activity(),
            vec![(2, 0, 0, 0), (0, 1, 0, 0), (0, 0, 0, 1)]
        );
        let profile = recording.phase_profile();
        assert_eq!(
            profile,
            vec![
                ((String::new(), 0), (1, 2)),
                (("labels".to_string(), 1), (1, 3)),
            ]
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Recording::parse_jsonl("").is_err());
        assert!(Recording::parse_jsonl("{\"type\":\"send\"}").is_err());
        let bad_version =
            "{\"type\":\"meta\",\"version\":99,\"n\":2,\"label\":\"x\",\"truncated\":0}";
        let err = Recording::parse_jsonl(bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let bad_event = "{\"type\":\"meta\",\"version\":1,\"n\":2,\"label\":\"x\",\
                         \"truncated\":0}\n{\"type\":\"warp\",\"t\":0}";
        let err = Recording::parse_jsonl(bad_event).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
