//! A small, dependency-free metrics registry: counters, gauges and
//! histograms, each addressable by a static name plus a label set.
//!
//! The registry is the *export* surface of the telemetry layer: the
//! [`crate::telemetry::Telemetry`] observer keeps its hot tallies in plain
//! vectors and folds them into a registry snapshot on demand, so the
//! per-event path never allocates label strings. Storage is `BTreeMap`
//! keyed by `(name, labels)`, which makes iteration — and therefore the
//! JSON snapshot — deterministic, a property the golden tests pin.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A metric address: static name plus an ordered list of label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name (e.g. `"messages_total"`).
    pub name: &'static str,
    /// Label pairs, in the order given at registration.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricId {
    /// An unlabelled metric id.
    #[must_use]
    pub fn plain(name: &'static str) -> MetricId {
        MetricId {
            name,
            labels: Vec::new(),
        }
    }

    /// A labelled metric id.
    #[must_use]
    pub fn with_labels(name: &'static str, labels: &[(&'static str, &str)]) -> MetricId {
        MetricId {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        }
    }
}

impl core::fmt::Display for MetricId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                write!(f, "{}{k}={v}", if i > 0 { "," } else { "" })?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A power-of-two-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v` with `2^(i−1) ≤ v < 2^i` (bucket 0
/// counts zeros), so 65 buckets cover the whole `u64` range with no
/// configuration — adequate for message counts, bit lengths and queue
/// depths, whose interesting structure is their order of magnitude.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    pub(crate) fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let idx = Self::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// The mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound_exclusive, count)` per nonempty bucket, ascending.
    /// Bucket with upper bound `2^i` holds values in `[2^(i−1), 2^i)`.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64.checked_shl(i as u32).unwrap_or(u64::MAX), c))
            .collect()
    }

    /// Rebuilds a histogram from already-tallied parts — the bridge the
    /// lock-free profiler uses to turn its atomic bucket arrays into
    /// registry histograms at snapshot time. `buckets[i]` must count the
    /// observations [`Histogram::bucket_index`] would have routed to
    /// bucket `i`; `count`/`sum`/`min`/`max` must describe the same
    /// sample stream (an empty stream passes zeros).
    #[must_use]
    pub(crate) fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: Vec<u64>,
    ) -> Histogram {
        let mut buckets = buckets;
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// Folds `other` into `self` (count/sum add, min/max widen, buckets
    /// add index-wise). Merging is exact: the merged histogram equals the
    /// one that would have observed both sample streams directly, which
    /// is what lets per-worker shards be combined at scrape time.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`; 0 when empty).
    ///
    /// Rank-based with linear interpolation inside the containing
    /// power-of-two bucket: the target rank is `q · (count − 1)`, the
    /// bucket's bounds are tightened by the observed `min`/`max`, and the
    /// estimate interpolates linearly across the surplus rank within the
    /// bucket. For values spread uniformly over a bucket the estimate
    /// matches the exact linear-interpolation quantile (the unit test
    /// pins this on 1..=100).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if ((below + c - 1) as f64) >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
                let lo = lo.max(self.min) as f64;
                let hi = (hi.min(self.max.saturating_add(1)) as f64).max(lo);
                let est = lo + (hi - lo) * ((rank - below as f64) / c as f64);
                // Never report above the observed maximum (the half-open
                // bucket upper bound overshoots it by up to one).
                return est.min(self.max as f64);
            }
            below += c;
        }
        self.max as f64
    }
}

/// The registry: three kinds of metrics behind one deterministic map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, i64>,
    histograms: BTreeMap<MetricId, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `id`, creating it at zero.
    pub fn add_counter(&mut self, id: MetricId, delta: u64) {
        *self.counters.entry(id).or_insert(0) += delta;
    }

    /// Increments the counter `id` by one.
    pub fn inc_counter(&mut self, id: MetricId) {
        self.add_counter(id, 1);
    }

    /// Reads a counter (0 when never written).
    #[must_use]
    pub fn counter(&self, id: &MetricId) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Sets the gauge `id` to `value`.
    pub fn set_gauge(&mut self, id: MetricId, value: i64) {
        self.gauges.insert(id, value);
    }

    /// Reads a gauge, if ever set.
    #[must_use]
    pub fn gauge(&self, id: &MetricId) -> Option<i64> {
        self.gauges.get(id).copied()
    }

    /// Records `value` into the histogram `id`, creating it when absent.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        self.histograms.entry(id).or_default().observe(value);
    }

    /// Installs an already-built histogram under `id` (replacing any
    /// previous one) — used by the profiler snapshot, which tallies in
    /// atomic buckets and materializes [`Histogram`]s only at scrape time.
    pub(crate) fn put_histogram(&mut self, id: MetricId, histogram: Histogram) {
        self.histograms.insert(id, histogram);
    }

    /// Reads a histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, id: &MetricId) -> Option<&Histogram> {
        self.histograms.get(id)
    }

    /// Iterates counters in deterministic (name, labels) order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricId, u64)> {
        self.counters.iter().map(|(id, &v)| (id, v))
    }

    /// Iterates gauges in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricId, i64)> {
        self.gauges.iter().map(|(id, &v)| (id, v))
    }

    /// Iterates histograms in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricId, &Histogram)> {
        self.histograms.iter()
    }

    /// Folds `other` into `self`: counters add, gauges overwrite
    /// (last-write-wins — callers that need a sum should model the value
    /// as a counter), histograms merge exactly via [`Histogram::merge`].
    ///
    /// This is the shard-combine operation behind the serving plane:
    /// each `ringd` worker keeps a private registry on its hot path and
    /// a `metrics` scrape merges the shards into one snapshot, so no
    /// lock is shared between workers while jobs run.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (id, &v) in &other.counters {
            *self.counters.entry(id.clone()).or_insert(0) += v;
        }
        for (id, &v) in &other.gauges {
            self.gauges.insert(id.clone(), v);
        }
        for (id, h) in &other.histograms {
            self.histograms.entry(id.clone()).or_default().merge(h);
        }
    }

    /// A copy of the registry with `(key, value)` appended to every
    /// metric's label set. Ids already carrying `key` are left alone, so
    /// the operation is idempotent.
    ///
    /// This is how a cluster shard makes its scrape mergeable: labelling
    /// every series with `shard="k"` before exposition means two shards'
    /// expositions never collide on a Prometheus series.
    #[must_use]
    pub fn labelled(&self, key: &'static str, value: &str) -> MetricsRegistry {
        let relabel = |id: &MetricId| -> MetricId {
            if id.labels.iter().any(|(k, _)| *k == key) {
                return id.clone();
            }
            let mut labels = id.labels.clone();
            labels.push((key, value.to_string()));
            MetricId {
                name: id.name,
                labels,
            }
        };
        MetricsRegistry {
            counters: self
                .counters
                .iter()
                .map(|(id, &v)| (relabel(id), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(id, &v)| (relabel(id), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(id, h)| (relabel(id), h.clone()))
                .collect(),
        }
    }

    /// Serializes the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric name, one sample
    /// line per label set, histograms as cumulative `_bucket{le=...}`
    /// series plus `_sum` and `_count`. Deterministic because the
    /// underlying maps iterate in `(name, labels)` order.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn prom_escape(value: &str) -> String {
            let mut out = String::with_capacity(value.len());
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out
        }
        fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
            if labels.is_empty() && extra.is_none() {
                return String::new();
            }
            let mut out = String::from("{");
            let mut first = true;
            for (k, v) in labels {
                let _ = write!(
                    out,
                    "{}{k}=\"{}\"",
                    if first { "" } else { "," },
                    prom_escape(v)
                );
                first = false;
            }
            if let Some((k, v)) = extra {
                let _ = write!(out, "{}{k}=\"{v}\"", if first { "" } else { "," });
            }
            out.push('}');
            out
        }
        fn type_line(out: &mut String, last: &mut &'static str, name: &'static str, kind: &str) {
            if *last != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                *last = name;
            }
        }

        let mut out = String::new();
        let mut last = "";
        for (id, v) in &self.counters {
            type_line(&mut out, &mut last, id.name, "counter");
            let _ = writeln!(out, "{}{} {v}", id.name, label_block(&id.labels, None));
        }
        for (id, v) in &self.gauges {
            type_line(&mut out, &mut last, id.name, "gauge");
            let _ = writeln!(out, "{}{} {v}", id.name, label_block(&id.labels, None));
        }
        for (id, h) in &self.histograms {
            type_line(&mut out, &mut last, id.name, "histogram");
            let mut cumulative = 0u64;
            for (le, c) in h.buckets() {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    id.name,
                    label_block(&id.labels, Some(("le", &le.to_string())))
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                id.name,
                label_block(&id.labels, Some(("le", "+Inf"))),
                h.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                id.name,
                label_block(&id.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                id.name,
                label_block(&id.labels, None),
                h.count
            );
        }
        out
    }

    /// Serializes the whole registry as a deterministic JSON object —
    /// hand-rolled, like every artifact in this workspace (no external
    /// deps; see `BENCH_sweep.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn metric_entry(out: &mut String, id: &MetricId, body: &str, last: bool) {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\"",
                crate::telemetry::json_escape(id.name)
            );
            if !id.labels.is_empty() {
                out.push_str(", \"labels\": {");
                for (i, (k, v)) in id.labels.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}\"{}\": \"{}\"",
                        if i > 0 { ", " } else { "" },
                        crate::telemetry::json_escape(k),
                        crate::telemetry::json_escape(v)
                    );
                }
                out.push('}');
            }
            let _ = writeln!(out, ", {body}}}{}", if last { "" } else { "," });
        }

        let mut out = String::from("{\n  \"counters\": [\n");
        let total = self.counters.len();
        for (i, (id, v)) in self.counters.iter().enumerate() {
            metric_entry(&mut out, id, &format!("\"value\": {v}"), i + 1 == total);
        }
        out.push_str("  ],\n  \"gauges\": [\n");
        let total = self.gauges.len();
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            metric_entry(&mut out, id, &format!("\"value\": {v}"), i + 1 == total);
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        let total = self.histograms.len();
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            let mut body = format!(
                "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \
                 \"p999\": {:.3}, \"buckets\": [",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.quantile(0.999)
            );
            for (j, (le, c)) in h.buckets().iter().enumerate() {
                let _ = write!(
                    body,
                    "{}{{\"le\": {le}, \"count\": {c}}}",
                    if j > 0 { ", " } else { "" }
                );
            }
            body.push(']');
            metric_entry(&mut out, id, &body, i + 1 == total);
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{Histogram, MetricId, MetricsRegistry};

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut reg = MetricsRegistry::new();
        let total = MetricId::plain("messages_total");
        let p0 = MetricId::with_labels("messages_total", &[("proc", "0")]);
        let p1 = MetricId::with_labels("messages_total", &[("proc", "1")]);
        reg.inc_counter(total.clone());
        reg.add_counter(total.clone(), 2);
        reg.inc_counter(p0.clone());
        assert_eq!(reg.counter(&total), 3);
        assert_eq!(reg.counter(&p0), 1);
        assert_eq!(reg.counter(&p1), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        let id = MetricId::with_labels("queue_depth", &[("to", "3"), ("port", "left")]);
        assert_eq!(reg.gauge(&id), None);
        reg.set_gauge(id.clone(), 4);
        reg.set_gauge(id.clone(), 2);
        assert_eq!(reg.gauge(&id), Some(2));
        assert_eq!(id.to_string(), "queue_depth{to=3,port=left}");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1015);
        assert_eq!((h.min, h.max), (0, 1000));
        // 0 → bucket le 1; 1,1 → le 2; 2,3 → le 4; 8 → le 16; 1000 → le 1024.
        assert_eq!(
            h.buckets(),
            vec![(1, 1), (2, 2), (4, 2), (16, 1), (1024, 1)]
        );
        assert!((h.mean() - 1015.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_power_of_two_buckets() {
        // Known distribution: 1..=100, one observation each. Values fill
        // each power-of-two bucket contiguously, so the interpolated
        // estimates equal the exact linear-interpolation quantiles.
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-9, "{}", h.quantile(0.0));
        assert!(
            (h.quantile(0.50) - 50.5).abs() < 1e-9,
            "{}",
            h.quantile(0.50)
        );
        assert!(
            (h.quantile(0.95) - 95.05).abs() < 1e-9,
            "{}",
            h.quantile(0.95)
        );
        assert!(
            (h.quantile(0.99) - 99.01).abs() < 1e-9,
            "{}",
            h.quantile(0.99)
        );
        assert!(
            (h.quantile(1.0) - 100.0).abs() < 1e-9,
            "{}",
            h.quantile(1.0)
        );
        // Out-of-range q clamps; empty and degenerate histograms are total.
        assert!((h.quantile(7.0) - 100.0).abs() < 1e-9);
        assert!((Histogram::default().quantile(0.5) - 0.0).abs() < 1e-9);
        let mut zeros = Histogram::default();
        for _ in 0..10 {
            zeros.observe(0);
        }
        assert!((zeros.quantile(0.99) - 0.0).abs() < 1e-9);
        let mut single = Histogram::default();
        single.observe(1000);
        assert!((single.quantile(0.5) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_survive_the_unbounded_top_bucket() {
        // u64::MAX lands in the last bucket, whose upper bound would
        // overflow `1 << 64`; the estimator must clamp to the observed
        // max rather than wrap or report infinity.
        let mut h = Histogram::default();
        for _ in 0..5 {
            h.observe(u64::MAX);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est.is_finite(), "q={q}: {est}");
            assert!((est - u64::MAX as f64).abs() < 1.0, "q={q}: {est}");
        }
        // Mixed with a small value, estimates stay within [min, max].
        h.observe(1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!((1.0..=u64::MAX as f64).contains(&est), "q={q}: {est}");
        }
    }

    mod properties {
        use super::Histogram;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Quantile estimates never decrease in `q` and never leave
            /// the observed `[min, max]` envelope, for any sample set.
            #[test]
            fn quantiles_are_monotone_and_bounded(
                values in proptest::collection::vec(any::<u64>(), 1..=64),
            ) {
                let mut h = Histogram::default();
                for &v in &values {
                    h.observe(v);
                }
                let p50 = h.quantile(0.50);
                let p95 = h.quantile(0.95);
                let p99 = h.quantile(0.99);
                prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95} for {values:?}");
                prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99} for {values:?}");
                let lo = *values.iter().min().expect("nonempty") as f64;
                let hi = *values.iter().max().expect("nonempty") as f64;
                prop_assert!(h.quantile(0.0) >= lo, "p0 {} < min {lo}", h.quantile(0.0));
                prop_assert!(p99 <= hi, "p99 {p99} > max {hi}");
                prop_assert!(h.quantile(1.0) <= hi, "p100 {} > max {hi}", h.quantile(1.0));
            }
        }
    }

    #[test]
    fn json_snapshot_carries_quantiles() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            reg.observe(MetricId::plain("message_bits"), v);
            h.observe(v);
        }
        let json = reg.to_json();
        let expected = format!(
            "\"mean\": 50.500, \"p50\": 50.500, \"p95\": 95.050, \"p99\": 99.010, \
             \"p999\": {:.3}",
            h.quantile(0.999)
        );
        assert!(json.contains(&expected), "{json}");
        // The tail quantile sits between p99 and the max.
        assert!(h.quantile(0.999) >= h.quantile(0.99));
        assert!(h.quantile(0.999) <= h.max as f64);
    }

    #[test]
    fn from_parts_round_trips_an_observed_histogram() {
        let mut h = Histogram::default();
        let mut raw = vec![0u64; 65];
        for v in [0u64, 1, 3, 8, 1000, u64::MAX] {
            h.observe(v);
            raw[Histogram::bucket_index(v)] += 1;
        }
        let rebuilt = Histogram::from_parts(h.count, h.sum, h.min, h.max, raw);
        assert_eq!(rebuilt, h);
        let empty = Histogram::from_parts(0, 0, 0, 0, vec![0u64; 65]);
        assert_eq!(empty, Histogram::default());
    }

    #[test]
    fn histogram_merge_equals_direct_observation() {
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        let mut both = Histogram::default();
        for v in [0u64, 1, 7, 100, 5000] {
            left.observe(v);
            both.observe(v);
        }
        for v in [3u64, 3, 900, u64::MAX] {
            right.observe(v);
            both.observe(v);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, both);
        // Merging an empty histogram is a no-op; merging into empty copies.
        merged.merge(&Histogram::default());
        assert_eq!(merged, both);
        let mut fresh = Histogram::default();
        fresh.merge(&both);
        assert_eq!(fresh, both);
    }

    #[test]
    fn registry_merge_combines_shards() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add_counter(MetricId::plain("jobs_total"), 3);
        b.add_counter(MetricId::plain("jobs_total"), 4);
        b.add_counter(MetricId::with_labels("jobs_total", &[("worker", "1")]), 1);
        a.set_gauge(MetricId::plain("queue_depth"), 5);
        b.set_gauge(MetricId::plain("queue_depth"), 2);
        a.observe(MetricId::plain("latency_us"), 10);
        b.observe(MetricId::plain("latency_us"), 1000);
        a.merge(&b);
        assert_eq!(a.counter(&MetricId::plain("jobs_total")), 7);
        assert_eq!(
            a.counter(&MetricId::with_labels("jobs_total", &[("worker", "1")])),
            1
        );
        assert_eq!(a.gauge(&MetricId::plain("queue_depth")), Some(2));
        let h = a.histogram(&MetricId::plain("latency_us")).expect("merged");
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1010, 10, 1000));
    }

    #[test]
    fn prometheus_exposition_format() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter(MetricId::plain("jobs_completed_total"), 4);
        reg.add_counter(
            MetricId::with_labels("jobs_completed_total", &[("algorithm", "sync_and")]),
            2,
        );
        reg.set_gauge(MetricId::plain("queue_depth"), 3);
        let mut h = MetricsRegistry::new();
        for v in [1u64, 2, 2, 900] {
            h.observe(
                MetricId::with_labels("latency_us", &[("phase", "execute")]),
                v,
            );
        }
        reg.merge(&h);
        let text = reg.to_prometheus();
        let expected = "# TYPE jobs_completed_total counter\n\
                        jobs_completed_total 4\n\
                        jobs_completed_total{algorithm=\"sync_and\"} 2\n\
                        # TYPE queue_depth gauge\n\
                        queue_depth 3\n\
                        # TYPE latency_us histogram\n\
                        latency_us_bucket{phase=\"execute\",le=\"2\"} 1\n\
                        latency_us_bucket{phase=\"execute\",le=\"4\"} 3\n\
                        latency_us_bucket{phase=\"execute\",le=\"1024\"} 4\n\
                        latency_us_bucket{phase=\"execute\",le=\"+Inf\"} 4\n\
                        latency_us_sum{phase=\"execute\"} 905\n\
                        latency_us_count{phase=\"execute\"} 4\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter(MetricId::with_labels(
            "errors_total",
            &[("detail", "a\"b\\c\nd")],
        ));
        let text = reg.to_prometheus();
        assert!(
            text.contains("errors_total{detail=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn json_snapshot_is_deterministic_and_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter(MetricId::plain("bits_total"), 7);
        reg.add_counter(MetricId::with_labels("messages_total", &[("proc", "0")]), 2);
        reg.set_gauge(MetricId::plain("halt_time_max"), 5);
        reg.observe(MetricId::plain("message_bits"), 3);
        let a = reg.to_json();
        let b = reg.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"name\": \"bits_total\", \"value\": 7"));
        assert!(a.contains("\"labels\": {\"proc\": \"0\"}"));
        assert!(a.contains("\"histograms\""));
    }
}
