//! The causal DAG of a run and its critical path.
//!
//! Every version-2 send carries a Lamport timestamp and a *parent edge* —
//! the `seq` of the send whose delivery causally enabled it (see
//! [`crate::runtime::CausalClocks`]). This module rebuilds that structure
//! from either a live [`TraceEvent`] stream or a parsed [`Recording`],
//! and answers the questions the paper's lower-bound arguments reason
//! about: how long is the longest chain of causally-dependent deliveries
//! (the *critical path*), how many bits does it carry, and which `Span`
//! phases it spends its length in.
//!
//! With one parent per send the "DAG" is a forest: every spontaneous send
//! roots a tree, and each message extends the chain of the strongest
//! (highest-Lamport) message its sender had consumed. Under the
//! synchronizing adversary of Theorem 5.1 the critical-path hop count
//! equals the run's epoch count — a consistency invariant the bench suite
//! pins — so causal depth *is* the paper's time measure, while weighting
//! the same chains by bits exposes the bit-budget tradeoffs of §4.2.

use std::collections::BTreeMap;

use crate::runtime::TraceEvent;
use crate::telemetry::recorder::{Recording, ReplayEvent};
use crate::telemetry::{json_escape, SpanStats};

/// One send in the causal DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalNode {
    /// Global send sequence number (the node's identity).
    pub seq: u64,
    /// `seq` of the enabling send, or `None` for a root (spontaneous
    /// send, or a send whose parent was evicted by a bounded recorder).
    pub parent: Option<u64>,
    /// Sender's Lamport timestamp at the send.
    pub lamport: u64,
    /// Send time (cycle / arrival epoch).
    pub time: u64,
    /// Sending processor.
    pub from: usize,
    /// Receiving processor.
    pub to: usize,
    /// Encoded message length.
    pub bits: u64,
    /// Phase annotation of the emission, if any.
    pub phase: Option<String>,
    /// Round within the phase (0 when unannotated).
    pub round: u64,
}

/// Why a causal DAG could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalityError {
    /// The recording predates the causal fields (format version 1): there
    /// are no Lamport timestamps or parent edges to rebuild from.
    UncausalRecording {
        /// The recording's serialization version.
        version: u64,
    },
}

impl core::fmt::Display for CausalityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CausalityError::UncausalRecording { version } => write!(
                f,
                "recording is format version {version}, which predates causal \
                 stamps (version 2); re-record to analyse causality"
            ),
        }
    }
}

impl std::error::Error for CausalityError {}

/// Which edge weight the critical path maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathWeight {
    /// Longest chain by hop count — the paper's causal time measure.
    Hops,
    /// Longest chain by elapsed time (`leaf time − root time`).
    Time,
    /// Heaviest chain by total bits carried.
    Bits,
}

/// The extracted critical path: one maximal causal chain, root → leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The chain's sends, root first.
    pub seqs: Vec<u64>,
    /// Number of sends on the chain.
    pub hops: u64,
    /// Total bits carried along the chain.
    pub bits: u64,
    /// Send time of the chain's root.
    pub start_time: u64,
    /// Send time of the chain's leaf.
    pub end_time: u64,
    /// Per-phase attribution of the chain's sends, sorted by phase name;
    /// unannotated sends aggregate under the empty name.
    pub per_phase: Vec<(String, SpanStats)>,
}

impl CriticalPath {
    /// Elapsed time the chain spans (`end_time − start_time`).
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.end_time - self.start_time
    }
}

/// The causal DAG (a forest, with one parent edge per send) of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalDag {
    nodes: Vec<CausalNode>,
    /// `seq` → position in `nodes`.
    index: BTreeMap<u64, usize>,
}

impl CausalDag {
    /// Builds the DAG from a live event stream (as collected by an
    /// observer during `run_with_observer`).
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> CausalDag {
        Self::build(events.iter().filter_map(|event| match *event {
            TraceEvent::Send(s) => Some(CausalNode {
                seq: s.seq,
                parent: s.parent,
                lamport: s.lamport,
                time: s.cycle,
                from: s.from,
                to: s.to,
                bits: s.bits as u64,
                phase: s.span.map(|sp| sp.phase.to_string()),
                round: s.span.map_or(0, |sp| sp.round),
            }),
            _ => None,
        }))
    }

    /// Builds the DAG from a parsed recording.
    ///
    /// A truncated (ring-buffered) recording still builds: sends whose
    /// parents were evicted become roots, so chain lengths are lower
    /// bounds.
    ///
    /// # Errors
    ///
    /// [`CausalityError::UncausalRecording`] when the recording is format
    /// version 1 (no causal fields).
    pub fn from_recording(recording: &Recording) -> Result<CausalDag, CausalityError> {
        if recording.version < 2 {
            return Err(CausalityError::UncausalRecording {
                version: recording.version,
            });
        }
        Ok(Self::build(recording.events.iter().filter_map(
            |event| match event {
                ReplayEvent::Send {
                    time,
                    from,
                    to,
                    bits,
                    seq,
                    lamport,
                    parent,
                    phase,
                    round,
                    ..
                } => Some(CausalNode {
                    seq: *seq,
                    parent: *parent,
                    lamport: *lamport,
                    time: *time,
                    from: *from,
                    to: *to,
                    bits: *bits as u64,
                    phase: phase.clone(),
                    round: *round,
                }),
                _ => None,
            },
        )))
    }

    fn build(nodes: impl Iterator<Item = CausalNode>) -> CausalDag {
        let nodes: Vec<CausalNode> = nodes.collect();
        let index = nodes
            .iter()
            .enumerate()
            .map(|(pos, node)| (node.seq, pos))
            .collect();
        CausalDag { nodes, index }
    }

    /// Number of sends in the DAG.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no sends.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sends, in stream order.
    #[must_use]
    pub fn nodes(&self) -> &[CausalNode] {
        &self.nodes
    }

    /// Number of roots (spontaneous sends).
    #[must_use]
    pub fn roots(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| self.parent_pos(n).is_none())
            .count()
    }

    /// Resolves a node's parent to its position, if the parent is present
    /// in the DAG (it may have been evicted by a bounded recorder).
    fn parent_pos(&self, node: &CausalNode) -> Option<usize> {
        node.parent.and_then(|p| self.index.get(&p).copied())
    }

    /// Extracts the critical path — the causal chain maximising `weight`
    /// (ties broken toward the smallest leaf `seq`, so the choice is
    /// deterministic). Returns `None` on an empty DAG.
    #[must_use]
    pub fn critical_path(&self, weight: PathWeight) -> Option<CriticalPath> {
        // One DP pass in stream order: every parent edge points at an
        // earlier send, so chain aggregates for the parent are final by
        // the time a child needs them.
        let mut hops = vec![0u64; self.nodes.len()];
        let mut bits = vec![0u64; self.nodes.len()];
        let mut root_time = vec![0u64; self.nodes.len()];
        let mut best: Option<(u64, usize)> = None;
        for (pos, node) in self.nodes.iter().enumerate() {
            match self.parent_pos(node) {
                Some(p) => {
                    hops[pos] = hops[p] + 1;
                    bits[pos] = bits[p] + node.bits;
                    root_time[pos] = root_time[p];
                }
                None => {
                    hops[pos] = 1;
                    bits[pos] = node.bits;
                    root_time[pos] = node.time;
                }
            }
            let w = match weight {
                PathWeight::Hops => hops[pos],
                PathWeight::Time => node.time.saturating_sub(root_time[pos]),
                PathWeight::Bits => bits[pos],
            };
            if best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, pos));
            }
        }
        let (_, leaf) = best?;

        let mut seqs = Vec::new();
        let mut phase_map: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut pos = leaf;
        loop {
            let node = &self.nodes[pos];
            seqs.push(node.seq);
            let stats = phase_map
                .entry(node.phase.clone().unwrap_or_default())
                .or_default();
            stats.messages += 1;
            stats.bits += node.bits;
            match self.parent_pos(node) {
                Some(p) => pos = p,
                None => break,
            }
        }
        seqs.reverse();
        Some(CriticalPath {
            hops: hops[leaf],
            bits: bits[leaf],
            start_time: root_time[leaf],
            end_time: self.nodes[leaf].time,
            per_phase: phase_map.into_iter().collect(),
            seqs,
        })
    }

    /// Exports the DAG in Graphviz DOT syntax. When `highlight` is given,
    /// its chain's nodes and edges are drawn bold red.
    #[must_use]
    pub fn to_dot(&self, highlight: Option<&CriticalPath>) -> String {
        use std::fmt::Write as _;
        // A parent always has a smaller seq than its child, so the
        // root-first chain is sorted and binary-searchable.
        let on_path =
            |seq: u64| highlight.is_some_and(|path| path.seqs.binary_search(&seq).is_ok());
        let mut out = String::from("digraph causal {\n  rankdir=LR;\n  node [shape=box];\n");
        for node in &self.nodes {
            let label = match &node.phase {
                Some(phase) => format!(
                    "#{} p{}→p{} t{} b{} {}#{}",
                    node.seq,
                    node.from,
                    node.to,
                    node.time,
                    node.bits,
                    json_escape(phase),
                    node.round
                ),
                None => format!(
                    "#{} p{}→p{} t{} b{}",
                    node.seq, node.from, node.to, node.time, node.bits
                ),
            };
            let style = if on_path(node.seq) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(out, "  s{} [label=\"{label}\"{style}];", node.seq);
        }
        for node in &self.nodes {
            if let Some(parent) = node.parent {
                if self.index.contains_key(&parent) {
                    let style = if on_path(parent) && on_path(node.seq) {
                        " [color=red, penwidth=2]"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "  s{parent} -> s{}{style};", node.seq);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{CausalDag, CausalityError, PathWeight};
    use crate::port::PortId;
    use crate::runtime::{SendEvent, Span, TraceEvent};
    use crate::telemetry::Recording;

    fn send(
        seq: u64,
        parent: Option<u64>,
        time: u64,
        bits: usize,
        phase: Option<&'static str>,
    ) -> TraceEvent {
        TraceEvent::Send(SendEvent {
            cycle: time,
            from: (seq % 3) as usize,
            to: ((seq + 1) % 3) as usize,
            port: PortId::LEFT,
            bits,
            seq,
            lamport: time,
            parent,
            span: phase.map(|p| Span::new(p, 0)),
        })
    }

    /// Two chains: 0→1→2 (3 hops, light) and 3→4 (2 hops, heavy bits).
    fn forest() -> CausalDag {
        CausalDag::from_events(&[
            send(0, None, 1, 1, Some("scatter")),
            send(3, None, 1, 100, None),
            send(1, Some(0), 2, 1, Some("scatter")),
            send(4, Some(3), 2, 100, None),
            send(2, Some(1), 3, 1, Some("gather")),
        ])
    }

    #[test]
    fn hops_and_bits_pick_different_chains() {
        let dag = forest();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.roots(), 2);

        let by_hops = dag.critical_path(PathWeight::Hops).unwrap();
        assert_eq!(by_hops.seqs, vec![0, 1, 2]);
        assert_eq!(by_hops.hops, 3);
        assert_eq!(by_hops.bits, 3);
        assert_eq!((by_hops.start_time, by_hops.end_time), (1, 3));
        assert_eq!(by_hops.elapsed(), 2);
        assert_eq!(by_hops.per_phase.len(), 2, "scatter and gather");
        assert_eq!(by_hops.per_phase[0].0, "gather");
        assert_eq!(by_hops.per_phase[0].1.messages, 1);
        assert_eq!(by_hops.per_phase[1].1.messages, 2);

        let by_bits = dag.critical_path(PathWeight::Bits).unwrap();
        assert_eq!(by_bits.seqs, vec![3, 4]);
        assert_eq!(by_bits.bits, 200);
    }

    #[test]
    fn empty_dag_has_no_critical_path() {
        let dag = CausalDag::from_events(&[]);
        assert!(dag.is_empty());
        assert!(dag.critical_path(PathWeight::Hops).is_none());
    }

    #[test]
    fn version_1_recordings_are_rejected() {
        let v1 = "{\"type\":\"meta\",\"version\":1,\"n\":2,\"label\":\"old\",\"truncated\":0}\n\
                  {\"type\":\"send\",\"t\":1,\"from\":0,\"to\":1,\"port\":\"left\",\"bits\":2}\n";
        let rec = Recording::parse_jsonl(v1).unwrap();
        assert_eq!(
            CausalDag::from_recording(&rec),
            Err(CausalityError::UncausalRecording { version: 1 })
        );
        let shown = CausalityError::UncausalRecording { version: 1 }.to_string();
        assert!(shown.contains("version 1"), "{shown}");
    }

    #[test]
    fn recordings_and_live_streams_build_the_same_dag() {
        let events = [
            send(0, None, 1, 2, Some("probe")),
            send(1, Some(0), 2, 3, None),
        ];
        let mut recorder = crate::telemetry::FlightRecorder::new(3, "dag");
        for event in &events {
            use crate::runtime::Observer as _;
            recorder.on_event(event);
        }
        let recording = Recording::parse_jsonl(&recorder.to_jsonl()).unwrap();
        let from_rec = CausalDag::from_recording(&recording).unwrap();
        let from_live = CausalDag::from_events(&events);
        assert_eq!(from_rec, from_live);
    }

    #[test]
    fn dot_export_highlights_the_critical_path() {
        let dag = forest();
        let path = dag.critical_path(PathWeight::Hops).unwrap();
        let dot = dag.to_dot(Some(&path));
        assert!(dot.starts_with("digraph causal {"), "{dot}");
        assert!(dot.contains("s0 -> s1 [color=red, penwidth=2];"), "{dot}");
        assert!(dot.contains("s3 -> s4;"), "{dot}");
        assert!(dot.contains("scatter#0"), "{dot}");
        let plain = dag.to_dot(None);
        assert!(!plain.contains("penwidth"), "{plain}");
    }

    #[test]
    fn truncated_chains_treat_evicted_parents_as_roots() {
        // Parent seq 10 was never recorded: node 11 becomes a root.
        let dag = CausalDag::from_events(&[
            send(11, Some(10), 5, 2, None),
            send(12, Some(11), 6, 2, None),
        ]);
        assert_eq!(dag.roots(), 1);
        let path = dag.critical_path(PathWeight::Hops).unwrap();
        assert_eq!(path.seqs, vec![11, 12]);
        assert_eq!(path.hops, 2);
    }
}
