//! Deterministic merge of per-shard cluster recordings (S27).
//!
//! A cluster run produces one version-2 recording per shard: each shard's
//! `ShardHub` assigns its own sequence numbers (tagged with the shard id
//! in the high bits, see [`SHARD_SEQ_SHIFT`]) and its own wall stamps,
//! while Lamport timestamps travel on cross-shard frames and therefore
//! stay globally consistent. [`merge`] interleaves the shard streams into
//! one canonical recording that satisfies the S21 causal invariants and
//! carries freshly renumbered global seqs, so every downstream consumer
//! (`tracer`, `CausalDag`, conformance totals) reads it like a
//! single-process recording.
//!
//! ## Why the canonical order is well-defined
//!
//! Sort key of a send: `(lamport, sender)`.
//!
//! * **Unique.** A processor's Lamport clock ticks on every send
//!   (`CausalClocks::stamp_send`), so two sends by the same sender never
//!   share a timestamp; `(lamport, sender)` is injective over any honest
//!   run.
//! * **Parents come first.** A send's causal parent is a message its
//!   sender consumed earlier; consumption advances the clock to at least
//!   `parent.lamport + 1` and the send ticks once more, so
//!   `child.lamport ≥ parent.lamport + 2`. Sorting by Lamport therefore
//!   puts every parent strictly before its children, which is exactly the
//!   parent-before-child file invariant the recording parser enforces.
//! * **Sharding-independent.** Neither component depends on how the ring
//!   was cut into shards — merging 2, 3 or 4 shard recordings of the same
//!   execution yields byte-identical output (a property test pins this).
//!
//! A deliver sorts immediately after the send it consumes (same
//! `(lamport, sender)` key, deliver after send), which preserves
//! send-before-deliver. Halts close the file in processor order. Wall
//! stamps are stripped: per-shard stamps come from different host clocks
//! and are only meaningful inside their own shard recording.
//!
//! The merge order is the ISSUE's "(Lamport, shard id, seq)" refined to
//! stay deterministic: shards own contiguous processor ranges, so
//! ordering equal-Lamport sends by *global sender index* agrees with
//! shard-id order between shards while replacing the racy within-shard
//! seq-assignment order with a schedule-independent tiebreak.

use std::collections::BTreeMap;
use std::fmt;

use crate::telemetry::recorder::{seq_shard, Recording, ReplayEvent, SHARD_SEQ_SHIFT};

/// Why a set of shard recordings could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No recordings were given.
    NoShards,
    /// Input `index` carries no `shard`/`shards` meta — it is not a
    /// per-shard cluster recording.
    NotSharded {
        /// Position in the input slice.
        index: usize,
    },
    /// The manifest promised `shards` recordings but shard `shard` never
    /// arrived — the verdict names the absent shard.
    MissingShard {
        /// The absent shard id.
        shard: u64,
        /// The declared cluster size.
        shards: u64,
    },
    /// Two inputs claim the same shard id.
    DuplicateShard {
        /// The doubly-claimed shard id.
        shard: u64,
    },
    /// The inputs disagree on a meta field (`"shards"`, `"n"`,
    /// `"version"`, `"engine"`).
    MetaMismatch {
        /// Which meta field disagrees.
        what: &'static str,
        /// The shard that disagrees with shard 0's value.
        shard: u64,
    },
    /// Shard `shard` is ring-buffer truncated; its causal prefix is gone.
    Truncated {
        /// The truncated shard id.
        shard: u64,
    },
    /// Shard `shard` recorded a send whose seq carries a different
    /// shard's tag.
    ForeignSeq {
        /// The recording shard.
        shard: u64,
        /// The offending tagged seq.
        seq: u64,
    },
    /// A deliver or parent edge references a send no shard recorded.
    UnknownSend {
        /// The dangling tagged seq.
        seq: u64,
    },
    /// Two sends share `(lamport, sender)` — impossible in an honest run,
    /// so the inputs are not shards of one execution.
    AmbiguousSend {
        /// The shared Lamport timestamp.
        lamport: u64,
        /// The shared sender.
        from: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "merge verdict: no shard recordings given"),
            MergeError::NotSharded { index } => write!(
                f,
                "merge verdict: input {index} carries no shard meta (not a cluster recording)"
            ),
            MergeError::MissingShard { shard, shards } => write!(
                f,
                "merge verdict: shard {shard} of {shards} is missing from the inputs"
            ),
            MergeError::DuplicateShard { shard } => {
                write!(f, "merge verdict: shard {shard} appears more than once")
            }
            MergeError::MetaMismatch { what, shard } => write!(
                f,
                "merge verdict: shard {shard} disagrees with shard 0 on \"{what}\""
            ),
            MergeError::Truncated { shard } => write!(
                f,
                "merge verdict: shard {shard} is truncated; its causal prefix is gone"
            ),
            MergeError::ForeignSeq { shard, seq } => write!(
                f,
                "merge verdict: shard {shard} recorded send seq {seq} tagged for shard {}",
                seq_shard(*seq)
            ),
            MergeError::UnknownSend { seq } => write!(
                f,
                "merge verdict: seq {seq} (shard {}) is referenced but never sent",
                seq_shard(*seq)
            ),
            MergeError::AmbiguousSend { lamport, from } => write!(
                f,
                "merge verdict: two sends by processor {from} share lamport {lamport}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Canonical position of one event in the merged stream. Sends and the
/// delivers that consume them share `(lamport, from)`; `kind` breaks the
/// tie (send, then its deliver); halts sort after all traffic.
type SortKey = (u64, usize, u8);

fn send_key(lamport: u64, from: usize) -> SortKey {
    (lamport, from, 0)
}

fn deliver_key(lamport: u64, from: usize) -> SortKey {
    (lamport, from, 1)
}

fn halt_key(processor: usize) -> SortKey {
    (u64::MAX, processor, 2)
}

/// Merges per-shard cluster recordings into one canonical recording.
///
/// Inputs may arrive in any order; every shard `0 .. shards` declared by
/// the meta records must be present exactly once. The output is an
/// ordinary (unsharded) recording: events in canonical `(Lamport, sender)`
/// order, seqs renumbered `0..` in file order, parent edges and delivered
/// seqs remapped accordingly, wall stamps stripped. Label and engine are
/// taken from shard 0.
///
/// # Errors
///
/// See [`MergeError`]; a missing shard is reported by id.
pub fn merge(shards: &[Recording]) -> Result<Recording, MergeError> {
    if shards.is_empty() {
        return Err(MergeError::NoShards);
    }
    let mut ordered: Vec<Option<&Recording>> = Vec::new();
    let mut declared = 0u64;
    for (index, rec) in shards.iter().enumerate() {
        let (shard, count) = rec.shard.ok_or(MergeError::NotSharded { index })?;
        if index == 0 {
            declared = count;
            ordered = vec![None; usize::try_from(count).unwrap_or(0)];
        } else if count != declared {
            return Err(MergeError::MetaMismatch {
                what: "shards",
                shard,
            });
        }
        let slot = usize::try_from(shard)
            .ok()
            .filter(|&s| s < ordered.len())
            .ok_or(MergeError::MetaMismatch {
                what: "shards",
                shard,
            })?;
        if ordered[slot].is_some() {
            return Err(MergeError::DuplicateShard { shard });
        }
        ordered[slot] = Some(rec);
    }
    for (slot, entry) in ordered.iter().enumerate() {
        if entry.is_none() {
            return Err(MergeError::MissingShard {
                shard: slot as u64,
                shards: declared,
            });
        }
    }
    let ordered: Vec<&Recording> = ordered.into_iter().flatten().collect();
    let first = ordered[0];
    for rec in &ordered {
        let shard = rec.shard.map(|(s, _)| s).unwrap_or_default();
        if rec.version != first.version || rec.version < 2 {
            return Err(MergeError::MetaMismatch {
                what: "version",
                shard,
            });
        }
        if rec.n != first.n {
            return Err(MergeError::MetaMismatch { what: "n", shard });
        }
        if rec.engine != first.engine {
            return Err(MergeError::MetaMismatch {
                what: "engine",
                shard,
            });
        }
        if rec.truncated != 0 {
            return Err(MergeError::Truncated { shard });
        }
    }

    // Pass 1: index every send by its tagged seq and give it a canonical
    // key; reject tag/uniqueness violations that would make the merged
    // order ill-defined.
    let mut by_seq: BTreeMap<u64, SortKey> = BTreeMap::new();
    let mut by_key: BTreeMap<SortKey, u64> = BTreeMap::new();
    for rec in &ordered {
        let shard = rec.shard.map(|(s, _)| s).unwrap_or_default();
        for event in &rec.events {
            if let ReplayEvent::Send {
                seq, lamport, from, ..
            } = event
            {
                if seq_shard(*seq) != shard {
                    return Err(MergeError::ForeignSeq { shard, seq: *seq });
                }
                let key = send_key(*lamport, *from);
                if by_key.insert(key, *seq).is_some() {
                    return Err(MergeError::AmbiguousSend {
                        lamport: *lamport,
                        from: *from,
                    });
                }
                by_seq.insert(*seq, key);
            }
        }
    }

    // Pass 2: canonical global seqs are the ranks of the canonical send
    // order (`by_key` iterates in key order).
    let renumbered: BTreeMap<u64, u64> = by_key
        .values()
        .enumerate()
        .map(|(rank, &seq)| (seq, rank as u64))
        .collect();
    let resolve = |seq: u64| -> Result<(SortKey, u64), MergeError> {
        let key = *by_seq.get(&seq).ok_or(MergeError::UnknownSend { seq })?;
        let new_seq = *renumbered
            .get(&seq)
            .ok_or(MergeError::UnknownSend { seq })?;
        Ok((key, new_seq))
    };

    // Pass 3: rewrite every event with its canonical key and renumbered
    // references, then sort. Wall stamps are per-host; drop them.
    let mut keyed: Vec<(SortKey, ReplayEvent)> = Vec::new();
    for rec in &ordered {
        for event in &rec.events {
            let (key, event) = match event.clone() {
                ReplayEvent::Send {
                    time,
                    from,
                    to,
                    port,
                    bits,
                    seq,
                    lamport,
                    parent,
                    phase,
                    round,
                    wall_us: _,
                } => {
                    let (key, new_seq) = resolve(seq)?;
                    let parent = match parent {
                        Some(parent) => Some(resolve(parent)?.1),
                        None => None,
                    };
                    (
                        key,
                        ReplayEvent::Send {
                            time,
                            from,
                            to,
                            port,
                            bits,
                            seq: new_seq,
                            lamport,
                            parent,
                            phase,
                            round,
                            wall_us: None,
                        },
                    )
                }
                ReplayEvent::Deliver {
                    time,
                    to,
                    port,
                    seq,
                    dropped,
                    wall_us: _,
                } => {
                    let (send_key, new_seq) = resolve(seq)?;
                    (
                        deliver_key(send_key.0, send_key.1),
                        ReplayEvent::Deliver {
                            time,
                            to,
                            port,
                            seq: new_seq,
                            dropped,
                            wall_us: None,
                        },
                    )
                }
                ReplayEvent::Halt { time, processor } => {
                    (halt_key(processor), ReplayEvent::Halt { time, processor })
                }
            };
            keyed.push((key, event));
        }
    }
    keyed.sort_by_key(|(key, _)| *key);

    Ok(Recording {
        version: first.version,
        n: first.n,
        label: first.label.clone(),
        engine: first.engine.clone(),
        shard: None,
        truncated: 0,
        events: keyed.into_iter().map(|(_, event)| event).collect(),
    })
}

/// Rewrites a single-process recording into the canonical merge order —
/// exactly what [`merge`] would return for any sharding of the same
/// execution. Use it to compare a single-process run against a merged
/// cluster run byte for byte.
///
/// # Errors
///
/// See [`MergeError`] (the input must be untruncated version ≥ 2 with no
/// shard meta).
pub fn canonicalize(recording: &Recording) -> Result<Recording, MergeError> {
    if recording.shard.is_some() {
        return Err(MergeError::NotSharded { index: 0 });
    }
    // A single-process recording is the degenerate one-shard cluster:
    // every seq already carries shard tag 0.
    let mut solo = recording.clone();
    solo.shard = Some((0, 1));
    merge(std::slice::from_ref(&solo))
}

/// Splits a single-process recording into per-shard recordings, as if the
/// run had executed on a cluster whose shard `k` owns processors
/// `starts[k] .. starts[k+1]` (the last shard runs to `n`). Sends belong
/// to the sender's shard, delivers to the receiver's, halts to the
/// halting processor's; seqs are re-tagged per shard in file order with
/// parent/deliver references following. The inverse of [`merge`] up to
/// canonical order — the S27 property test round-trips through it.
///
/// # Errors
///
/// [`MergeError::NotSharded`] when the input already carries shard meta;
/// [`MergeError::NoShards`] when `starts` is empty, does not begin at 0,
/// is not strictly increasing, or reaches past `n`.
pub fn split(recording: &Recording, starts: &[usize]) -> Result<Vec<Recording>, MergeError> {
    if recording.shard.is_some() {
        return Err(MergeError::NotSharded { index: 0 });
    }
    let n = recording.n;
    let valid = starts.first() == Some(&0)
        && starts.windows(2).all(|w| w[0] < w[1])
        && starts.last().is_some_and(|&last| last < n.max(1));
    if !valid {
        return Err(MergeError::NoShards);
    }
    let shards = starts.len() as u64;
    let owner = |proc: usize| -> usize {
        starts
            .iter()
            .rposition(|&start| start <= proc)
            .unwrap_or_default()
    };
    let mut out: Vec<Recording> = (0..starts.len())
        .map(|k| Recording {
            version: recording.version,
            n,
            label: recording.label.clone(),
            engine: recording.engine.clone(),
            shard: Some((k as u64, shards)),
            truncated: 0,
            events: Vec::new(),
        })
        .collect();
    // Re-tag seqs per owning shard, in file order — the same local
    // counters a per-shard hub would have assigned.
    let mut counters = vec![0u64; starts.len()];
    let mut retag: BTreeMap<u64, u64> = BTreeMap::new();
    for event in &recording.events {
        if let ReplayEvent::Send { seq, from, .. } = event {
            let shard = owner(*from);
            let tagged = ((shard as u64) << SHARD_SEQ_SHIFT) | counters[shard];
            counters[shard] += 1;
            retag.insert(*seq, tagged);
        }
    }
    let lookup = |seq: u64| -> Result<u64, MergeError> {
        retag
            .get(&seq)
            .copied()
            .ok_or(MergeError::UnknownSend { seq })
    };
    for event in &recording.events {
        match event.clone() {
            ReplayEvent::Send {
                time,
                from,
                to,
                port,
                bits,
                seq,
                lamport,
                parent,
                phase,
                round,
                wall_us,
            } => {
                let parent = match parent {
                    Some(parent) => Some(lookup(parent)?),
                    None => None,
                };
                out[owner(from)].events.push(ReplayEvent::Send {
                    time,
                    from,
                    to,
                    port,
                    bits,
                    seq: lookup(seq)?,
                    lamport,
                    parent,
                    phase,
                    round,
                    wall_us,
                });
            }
            ReplayEvent::Deliver {
                time,
                to,
                port,
                seq,
                dropped,
                wall_us,
            } => {
                out[owner(to)].events.push(ReplayEvent::Deliver {
                    time,
                    to,
                    port,
                    seq: lookup(seq)?,
                    dropped,
                    wall_us,
                });
            }
            ReplayEvent::Halt { time, processor } => {
                out[owner(processor)]
                    .events
                    .push(ReplayEvent::Halt { time, processor });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::{canonicalize, merge, split, MergeError};
    use crate::port::PortId;
    use crate::telemetry::recorder::{Recording, ReplayEvent, SHARD_SEQ_SHIFT};

    /// A hand-built two-processor exchange: 0 sends (lamport 1), 1
    /// delivers it, 1 replies (lamport 3, parent = the first send), 0
    /// delivers the reply, both halt.
    fn exchange() -> Recording {
        Recording {
            version: 2,
            n: 2,
            label: "exchange".into(),
            engine: "net".into(),
            shard: None,
            truncated: 0,
            events: vec![
                ReplayEvent::Send {
                    time: 1,
                    from: 0,
                    to: 1,
                    port: PortId::LEFT,
                    bits: 1,
                    seq: 0,
                    lamport: 1,
                    parent: None,
                    phase: None,
                    round: 0,
                    wall_us: None,
                },
                ReplayEvent::Deliver {
                    time: 1,
                    to: 1,
                    port: PortId::LEFT,
                    seq: 0,
                    dropped: false,
                    wall_us: None,
                },
                ReplayEvent::Send {
                    time: 2,
                    from: 1,
                    to: 0,
                    port: PortId::RIGHT,
                    bits: 1,
                    seq: 1,
                    lamport: 3,
                    parent: Some(0),
                    phase: None,
                    round: 0,
                    wall_us: None,
                },
                ReplayEvent::Deliver {
                    time: 2,
                    to: 0,
                    port: PortId::RIGHT,
                    seq: 1,
                    dropped: false,
                    wall_us: None,
                },
                ReplayEvent::Halt {
                    time: 2,
                    processor: 0,
                },
                ReplayEvent::Halt {
                    time: 2,
                    processor: 1,
                },
            ],
        }
    }

    #[test]
    fn split_then_merge_reproduces_the_canonical_recording() {
        let rec = exchange();
        let canonical = canonicalize(&rec).expect("canonicalize");
        let shards = split(&rec, &[0, 1]).expect("split");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].shard, Some((0, 2)));
        // The reply's seq carries shard 1's tag in the split.
        let tagged = shards[1].events.iter().any(
            |e| matches!(e, ReplayEvent::Send { seq, .. } if *seq == (1u64 << SHARD_SEQ_SHIFT)),
        );
        assert!(tagged, "shard 1's send is tagged with its shard id");
        let merged = merge(&shards).expect("merge");
        assert_eq!(merged, canonical);
        assert_eq!(merged.to_jsonl(), canonical.to_jsonl());
    }

    #[test]
    fn merge_accepts_shards_in_any_order() {
        let rec = exchange();
        let mut shards = split(&rec, &[0, 1]).expect("split");
        shards.reverse();
        assert_eq!(
            merge(&shards).expect("merge"),
            canonicalize(&rec).expect("canonicalize")
        );
    }

    #[test]
    fn a_missing_shard_is_named() {
        let rec = exchange();
        let shards = split(&rec, &[0, 1]).expect("split");
        let err = merge(&shards[..1]).expect_err("shard 1 missing");
        assert_eq!(
            err,
            MergeError::MissingShard {
                shard: 1,
                shards: 2
            }
        );
        assert!(err.to_string().contains("shard 1 of 2 is missing"));
    }

    #[test]
    fn merged_output_parses_with_the_causal_checker() {
        let rec = exchange();
        let shards = split(&rec, &[0, 1]).expect("split");
        let merged = merge(&shards).expect("merge");
        let reparsed = Recording::parse_jsonl(&merged.to_jsonl()).expect("causally valid");
        assert_eq!(reparsed, merged);
    }

    #[test]
    fn duplicate_and_unsharded_inputs_are_rejected() {
        let rec = exchange();
        let shards = split(&rec, &[0, 1]).expect("split");
        let twice = vec![shards[0].clone(), shards[0].clone()];
        assert_eq!(
            merge(&twice).expect_err("duplicate"),
            MergeError::DuplicateShard { shard: 0 }
        );
        assert_eq!(
            merge(std::slice::from_ref(&rec)).expect_err("unsharded"),
            MergeError::NotSharded { index: 0 }
        );
    }
}
