//! Ports and processor orientations.

use std::fmt;

/// One of the two communication ports of a ring processor.
///
/// Ports are *local* labels: which physical neighbour a port reaches depends
/// on the processor's [`Orientation`]. Algorithms for anonymous rings may
/// only ever speak in terms of their own `Left`/`Right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// The processor's local "left" channel.
    Left,
    /// The processor's local "right" channel.
    Right,
}

impl Port {
    /// The other port.
    ///
    /// ```
    /// use anonring_sim::Port;
    /// assert_eq!(Port::Left.opposite(), Port::Right);
    /// ```
    #[must_use]
    pub fn opposite(self) -> Port {
        match self {
            Port::Left => Port::Right,
            Port::Right => Port::Left,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Left => write!(f, "left"),
            Port::Right => write!(f, "right"),
        }
    }
}

/// A local port label on a processor of an arbitrary port-labelled
/// topology.
///
/// Ports are numbered `0..ports(i)` per processor. On a ring the two ports
/// keep their historical names: `PortId(0)` *is* [`Port::Left`] and
/// `PortId(1)` *is* [`Port::Right`], and they render identically
/// (`"left"`/`"right"`), so every ring-era artifact — flight-recorder
/// JSONL, telemetry tallies, wire frames — is byte-for-byte unchanged.
/// Ports `2..` render as `"p2"`, `"p3"`, …
///
/// ```
/// use anonring_sim::{Port, PortId};
/// assert_eq!(PortId::from(Port::Right), PortId::new(1));
/// assert_eq!(PortId::new(0).to_string(), "left");
/// assert_eq!(PortId::new(5).to_string(), "p5");
/// assert_eq!(PortId::new(1).as_ring(), Some(Port::Right));
/// assert_eq!(PortId::new(2).as_ring(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(u16);

impl PortId {
    /// The ring's left port, as a general port label.
    pub const LEFT: PortId = PortId(0);
    /// The ring's right port, as a general port label.
    pub const RIGHT: PortId = PortId(1);

    /// Port number `k` as a label.
    #[must_use]
    pub const fn new(k: u16) -> PortId {
        PortId(k)
    }

    /// The port number, usable as a vector index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The ring-port view of this label, when it has one (`0` ↦ `Left`,
    /// `1` ↦ `Right`). Ports `2..` have no ring equivalent.
    #[must_use]
    pub fn as_ring(self) -> Option<Port> {
        match self.0 {
            0 => Some(Port::Left),
            1 => Some(Port::Right),
            _ => None,
        }
    }
}

impl From<Port> for PortId {
    fn from(port: Port) -> PortId {
        match port {
            Port::Left => PortId::LEFT,
            Port::Right => PortId::RIGHT,
        }
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "left"),
            1 => write!(f, "right"),
            k => write!(f, "p{k}"),
        }
    }
}

/// The orientation `D(i)` of a processor (paper §2).
///
/// `Clockwise` is the paper's `D(i) = 1` (`right(i) = i + 1`);
/// `Counterclockwise` is `D(i) = 0` (`right(i) = i - 1`).
/// Processors do **not** know their own orientation — it is part of the ring
/// configuration, not of the algorithm's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Orientation {
    /// `D(i) = 1`: the processor's right port points towards `i + 1`.
    Clockwise,
    /// `D(i) = 0`: the processor's right port points towards `i - 1`.
    Counterclockwise,
}

impl Orientation {
    /// The reverse orientation.
    ///
    /// ```
    /// use anonring_sim::Orientation;
    /// assert_eq!(Orientation::Clockwise.flipped(), Orientation::Counterclockwise);
    /// ```
    #[must_use]
    pub fn flipped(self) -> Orientation {
        match self {
            Orientation::Clockwise => Orientation::Counterclockwise,
            Orientation::Counterclockwise => Orientation::Clockwise,
        }
    }

    /// The paper's bit encoding: `1` for clockwise, `0` for counterclockwise.
    #[must_use]
    pub fn bit(self) -> u8 {
        match self {
            Orientation::Clockwise => 1,
            Orientation::Counterclockwise => 0,
        }
    }

    /// Inverse of [`Orientation::bit`]: any non-zero value is clockwise.
    #[must_use]
    pub fn from_bit(bit: u8) -> Orientation {
        if bit != 0 {
            Orientation::Clockwise
        } else {
            Orientation::Counterclockwise
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Clockwise => write!(f, "clockwise"),
            Orientation::Counterclockwise => write!(f, "counterclockwise"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        assert_eq!(Port::Left.opposite().opposite(), Port::Left);
        assert_eq!(Port::Right.opposite(), Port::Left);
    }

    #[test]
    fn flip_is_involution() {
        for o in [Orientation::Clockwise, Orientation::Counterclockwise] {
            assert_eq!(o.flipped().flipped(), o);
            assert_ne!(o.flipped(), o);
        }
    }

    #[test]
    fn bit_round_trip() {
        assert_eq!(Orientation::from_bit(1), Orientation::Clockwise);
        assert_eq!(Orientation::from_bit(0), Orientation::Counterclockwise);
        for o in [Orientation::Clockwise, Orientation::Counterclockwise] {
            assert_eq!(Orientation::from_bit(o.bit()), o);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Port::Left.to_string(), "left");
        assert_eq!(Orientation::Clockwise.to_string(), "clockwise");
    }

    #[test]
    fn port_ids_extend_ring_ports() {
        assert_eq!(PortId::from(Port::Left), PortId::LEFT);
        assert_eq!(PortId::from(Port::Right), PortId::RIGHT);
        assert_eq!(PortId::LEFT.as_ring(), Some(Port::Left));
        assert_eq!(PortId::new(7).as_ring(), None);
        assert_eq!(PortId::new(3).index(), 3);
        // Ring ports keep their historical rendering; higher ports are
        // numbered.
        assert_eq!(PortId::LEFT.to_string(), Port::Left.to_string());
        assert_eq!(PortId::RIGHT.to_string(), Port::Right.to_string());
        assert_eq!(PortId::new(2).to_string(), "p2");
        // Ordering matches the ring convention (left before right).
        assert!(PortId::LEFT < PortId::RIGHT);
    }
}
