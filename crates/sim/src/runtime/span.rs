//! Phase spans: algorithm-level annotations on the event stream.
//!
//! The paper's bounds are *per-phase* statements — `O(n)` messages per
//! Figure 2 elimination round, `≤ 4n` per Hirschberg–Sinclair phase,
//! `n(n−1)` for the single §4.1 distribution wave — so the telemetry layer
//! needs to know which phase each send belongs to. Algorithms attach a
//! [`Span`] to an emission via [`crate::runtime::Emit::in_span`]; the
//! engines stamp it onto every [`crate::runtime::SendEvent`] that emission
//! produces, and [`crate::telemetry::Telemetry`] aggregates
//! messages-per-(phase, round) from the stream.
//!
//! Spans are deliberately tiny (`&'static str` + `u64`, `Copy`): attaching
//! one costs nothing on the send path and nothing at all when no observer
//! cares.

/// A phase/round annotation carried by an emission and stamped onto each
/// of its sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Algorithm phase name (e.g. `"labels"`, `"collect"`, `"probe"`).
    /// Static so emissions stay `Copy`-friendly and allocation-free.
    pub phase: &'static str,
    /// Round/iteration index within the phase (0-based).
    pub round: u64,
}

impl Span {
    /// A span for round `round` of `phase`.
    #[must_use]
    pub const fn new(phase: &'static str, round: u64) -> Span {
        Span { phase, round }
    }
}

impl core::fmt::Display for Span {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}#{}", self.phase, self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::Span;

    #[test]
    fn spans_are_ordered_by_phase_then_round() {
        let a = Span::new("collect", 0);
        let b = Span::new("collect", 3);
        let c = Span::new("labels", 0);
        assert!(a < b && b < c);
        assert_eq!(b.to_string(), "collect#3");
    }
}
