//! The unified message substrate: per-directed-link FIFO queues and the
//! single send path both engines use.

use std::collections::VecDeque;

use crate::message::Message;
use crate::port::Port;
use crate::runtime::meter::CostMeter;
use crate::runtime::observer::{Observer, SendEvent, TraceEvent};
use crate::runtime::span::Span;
use crate::topology::RingTopology;

/// The messages a processor received at the start of a cycle (sent by its
/// neighbours in the previous cycle). At most one message per port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<M> {
    /// Message that arrived on the local left port, if any.
    pub from_left: Option<M>,
    /// Message that arrived on the local right port, if any.
    pub from_right: Option<M>,
}

impl<M> Received<M> {
    /// A reception with no messages.
    #[must_use]
    pub fn empty() -> Received<M> {
        Received {
            from_left: None,
            from_right: None,
        }
    }

    /// Whether no message arrived this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.from_left.is_none() && self.from_right.is_none()
    }

    /// Iterates over the (port, message) pairs that arrived.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &M)> {
        self.from_left
            .iter()
            .map(|m| (Port::Left, m))
            .chain(self.from_right.iter().map(|m| (Port::Right, m)))
    }

    /// The message that arrived on `port`, if any.
    #[must_use]
    pub fn on(&self, port: Port) -> Option<&M> {
        match port {
            Port::Left => self.from_left.as_ref(),
            Port::Right => self.from_right.as_ref(),
        }
    }
}

impl<M> Default for Received<M> {
    fn default() -> Self {
        Received::empty()
    }
}

/// A deliverable message the scheduler may choose: the head of one directed
/// link's FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Receiving processor.
    pub to: usize,
    /// Arrival port at the receiver.
    pub port: Port,
    /// The message's epoch (delivery "cycle" under the synchronizing
    /// adversary: sender's event epoch + 1).
    pub epoch: u64,
    /// Global send sequence number (total order of sends).
    pub seq: u64,
    pub(crate) queue: usize,
}

/// One queued message.
#[derive(Debug, Clone)]
struct InFlight<M> {
    msg: M,
    /// Due time at the receiver: arrival cycle (sync) or epoch (async).
    time: u64,
    /// Global send sequence number.
    seq: u64,
}

/// A message popped from the fabric, with its timing metadata.
#[derive(Debug, Clone)]
pub(crate) struct Popped<M> {
    /// The message itself.
    pub msg: M,
    /// Its due time (arrival cycle / epoch).
    pub time: u64,
}

/// The `2n` directed-link FIFO queues of a ring, plus the one send path:
/// route via the topology, meter the cost, notify observers, enqueue.
///
/// Queue `to * 2 + (port == Right)` holds messages awaiting consumption by
/// processor `to` on local port `port`, in FIFO order — the model invariant
/// every paper argument assumes. Constructed per run; the topology is
/// borrowed from the engine.
#[derive(Debug)]
pub struct LinkFabric<'t, M> {
    topology: &'t RingTopology,
    queues: Vec<VecDeque<InFlight<M>>>,
    seq: u64,
}

impl<'t, M: Message> LinkFabric<'t, M> {
    /// Empty fabric over `topology`.
    #[must_use]
    pub fn new(topology: &'t RingTopology) -> LinkFabric<'t, M> {
        LinkFabric {
            topology,
            queues: (0..2 * topology.n()).map(|_| VecDeque::new()).collect(),
            seq: 0,
        }
    }

    fn queue_index(to: usize, port: Port) -> usize {
        to * 2 + usize::from(port == Port::Right)
    }

    /// Sends `msg` from processor `from` on its local `port`: routes it via
    /// the topology, accounts it on `meter` at time `send_time`, emits a
    /// [`TraceEvent::Send`] (stamped with the emission's `span`, if any),
    /// and enqueues it due at `due_time`.
    ///
    /// In the sync model `send_time` is the send cycle and `due_time` the
    /// arrival cycle (`send + 1`: one hop per cycle); in the async model
    /// both are the arrival epoch (event epoch + 1, Theorem 5.1).
    #[allow(clippy::too_many_arguments)] // THE send path: every parameter is load-bearing
    pub fn send(
        &mut self,
        from: usize,
        port: Port,
        msg: M,
        send_time: u64,
        due_time: u64,
        span: Option<Span>,
        meter: &mut CostMeter,
        observer: &mut impl Observer,
    ) {
        let bits = msg.bit_len();
        let (to, arrival) = self.topology.neighbor(from, port);
        meter.record_send(send_time, bits);
        observer.on_event(&TraceEvent::Send(SendEvent {
            cycle: send_time,
            from,
            to,
            port: arrival,
            bits,
            span,
        }));
        self.queues[Self::queue_index(to, arrival)].push_back(InFlight {
            msg,
            time: due_time,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Whether processor `to` has a message due at or before time `now`.
    #[must_use]
    pub fn has_due(&self, to: usize, now: u64) -> bool {
        [Port::Left, Port::Right].iter().any(|&port| {
            self.queues[Self::queue_index(to, port)]
                .front()
                .is_some_and(|m| m.time <= now)
        })
    }

    /// Removes and returns the messages due for processor `to` at time
    /// `now` — the sync model's per-cycle reception (at most one message
    /// per port: senders emit at most one per port per cycle, and nothing
    /// is released before it is due).
    pub fn take_due(&mut self, to: usize, now: u64) -> Received<M> {
        let mut take = |port| {
            let q = &mut self.queues[Self::queue_index(to, port)];
            let due = q.front().is_some_and(|m| m.time <= now);
            let popped = due.then(|| q.pop_front().expect("checked front"));
            debug_assert!(
                q.front().is_none_or(|m| m.time > now),
                "one message per port per cycle"
            );
            popped.map(|m| m.msg)
        };
        Received {
            from_left: take(Port::Left),
            from_right: take(Port::Right),
        }
    }

    /// Collects the current queue heads as scheduler candidates — the async
    /// model's delivery choices. Clears and refills `out`.
    pub fn candidates(&self, out: &mut Vec<Candidate>) {
        out.clear();
        for to in 0..self.topology.n() {
            for port in [Port::Left, Port::Right] {
                let q = Self::queue_index(to, port);
                if let Some(head) = self.queues[q].front() {
                    out.push(Candidate {
                        to,
                        port,
                        epoch: head.time,
                        seq: head.seq,
                        queue: q,
                    });
                }
            }
        }
    }

    /// Pops the head of the queue `candidate` points at.
    pub(crate) fn pop_candidate(&mut self, candidate: &Candidate) -> Popped<M> {
        let head = self.queues[candidate.queue]
            .pop_front()
            .expect("candidate refers to a nonempty queue head");
        Popped {
            msg: head.msg,
            time: head.time,
        }
    }

    /// Discards everything still queued, returning the count — the sync
    /// engine's end-of-run accounting of in-flight messages to halted
    /// processors.
    pub fn drain_remaining(&mut self) -> u64 {
        self.queues
            .iter_mut()
            .map(|q| {
                let len = q.len() as u64;
                q.clear();
                len
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::{Candidate, LinkFabric, Received};
    use crate::port::Port;
    use crate::runtime::meter::CostMeter;
    use crate::runtime::observer::NullObserver;
    use crate::topology::RingTopology;

    #[test]
    fn received_accessors_cover_both_ports() {
        let rx = Received {
            from_left: Some(1u8),
            from_right: None,
        };
        assert!(!rx.is_empty());
        assert_eq!(rx.on(Port::Left), Some(&1));
        assert_eq!(rx.on(Port::Right), None);
        assert_eq!(rx.iter().count(), 1);
        assert!(Received::<u8>::empty().is_empty());
    }

    #[test]
    fn messages_are_not_released_before_their_due_time() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        // Sent at cycle 0, due at cycle 1 — one hop per cycle.
        fabric.send(0, Port::Right, 7, 0, 1, None, &mut meter, &mut obs);
        assert!(!fabric.has_due(1, 0));
        assert!(fabric.take_due(1, 0).is_empty());
        assert!(fabric.has_due(1, 1));
        assert_eq!(fabric.take_due(1, 1).from_left, Some(7));
        assert_eq!(meter.messages, 1);
        assert_eq!(meter.bits, 8);
    }

    #[test]
    fn routing_respects_per_processor_orientation() {
        use crate::port::Orientation;
        // Processor 1 is counterclockwise: 0's rightward message arrives
        // on 1's *right* port.
        let topo = RingTopology::new(vec![
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Clockwise,
        ])
        .unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        fabric.send(0, Port::Right, 42, 0, 1, None, &mut meter, &mut obs);
        let rx = fabric.take_due(1, 1);
        assert_eq!(rx.from_right, Some(42));
        assert_eq!(rx.from_left, None);
    }

    #[test]
    fn candidates_expose_fifo_heads_in_seq_order() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        fabric.send(0, Port::Right, 1, 1, 1, None, &mut meter, &mut obs);
        fabric.send(0, Port::Right, 2, 1, 1, None, &mut meter, &mut obs);
        fabric.send(1, Port::Right, 3, 1, 1, None, &mut meter, &mut obs);
        let mut cands: Vec<Candidate> = Vec::new();
        fabric.candidates(&mut cands);
        assert_eq!(cands.len(), 2, "one head per nonempty directed link");
        let first = cands.iter().find(|c| c.to == 1).unwrap();
        let popped = fabric.pop_candidate(first);
        assert_eq!(popped.msg, 1, "per-link FIFO: first send pops first");
        fabric.candidates(&mut cands);
        assert_eq!(cands.iter().find(|c| c.to == 1).unwrap().seq, 1);
        assert_eq!(fabric.drain_remaining(), 2);
        fabric.candidates(&mut cands);
        assert!(cands.is_empty());
    }
}
