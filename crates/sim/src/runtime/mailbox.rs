//! The unified message substrate: per-directed-link FIFO queues and the
//! single send path both engines use.

use std::collections::VecDeque;
use std::time::Instant;

use crate::message::Message;
use crate::port::{Port, PortId};
use crate::profile;
use crate::runtime::causal::CausalStamp;
use crate::runtime::meter::CostMeter;
use crate::runtime::observer::{Observer, SendEvent, TraceEvent};
use crate::runtime::span::Span;
use crate::topology::Topology;

/// Everything the engine stamps onto one send besides the routing: timing,
/// phase annotation, and the causal fields from
/// [`crate::runtime::CausalClocks`]. Bundled so the send path keeps one
/// signature as the stamp grows.
#[derive(Debug, Clone, Copy)]
pub struct SendMeta {
    /// Time of the send: cycle (sync) or arrival epoch (async).
    pub send_time: u64,
    /// Due time at the receiver: arrival cycle (sync) or epoch (async).
    pub due_time: u64,
    /// Phase annotation of the emission, if any.
    pub span: Option<Span>,
    /// Sender's Lamport timestamp at the send.
    pub lamport: u64,
    /// `seq` of the send whose delivery causally enabled this one.
    pub parent: Option<u64>,
}

/// The messages a processor received at the start of a cycle (sent by its
/// neighbours in the previous cycle). At most one message per port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<M> {
    /// Message that arrived on the local left port, if any.
    pub from_left: Option<M>,
    /// Message that arrived on the local right port, if any.
    pub from_right: Option<M>,
}

impl<M> Received<M> {
    /// A reception with no messages.
    #[must_use]
    pub fn empty() -> Received<M> {
        Received {
            from_left: None,
            from_right: None,
        }
    }

    /// Whether no message arrived this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.from_left.is_none() && self.from_right.is_none()
    }

    /// Iterates over the (port, message) pairs that arrived.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &M)> {
        self.from_left
            .iter()
            .map(|m| (Port::Left, m))
            .chain(self.from_right.iter().map(|m| (Port::Right, m)))
    }

    /// The message that arrived on `port`, if any.
    #[must_use]
    pub fn on(&self, port: Port) -> Option<&M> {
        match port {
            Port::Left => self.from_left.as_ref(),
            Port::Right => self.from_right.as_ref(),
        }
    }
}

impl<M> Default for Received<M> {
    fn default() -> Self {
        Received::empty()
    }
}

/// The messages a processor received in one step of a general-topology
/// run: one optional slot per local port. The port-vector analogue of the
/// ring's [`Received`], which it lowers to via [`PortRx::into_ring`] for
/// two-port processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortRx<M> {
    slots: Vec<Option<M>>,
}

impl<M> PortRx<M> {
    /// An empty reception for a processor with `ports` local ports.
    #[must_use]
    pub fn with_ports(ports: usize) -> PortRx<M> {
        PortRx {
            slots: (0..ports).map(|_| None).collect(),
        }
    }

    /// The processor's local port count — the only topology knowledge an
    /// anonymous process is entitled to.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.slots.len()
    }

    /// Whether no message arrived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The message that arrived on `port`, if any.
    #[must_use]
    pub fn get(&self, port: PortId) -> Option<&M> {
        self.slots.get(port.index()).and_then(Option::as_ref)
    }

    /// Removes and returns the message that arrived on `port`.
    pub fn take(&mut self, port: PortId) -> Option<M> {
        self.slots.get_mut(port.index()).and_then(Option::take)
    }

    /// Fills `port`'s slot.
    pub fn put(&mut self, port: PortId, msg: M) {
        self.slots[port.index()] = Some(msg);
    }

    /// Iterates over the (port, message) pairs that arrived, in port
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (PortId, &M)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (PortId::new(p as u16), m)))
    }

    /// Lowers a two-port reception to the ring's [`Received`] view.
    ///
    /// # Panics
    ///
    /// Panics if the processor has more than two ports — a ring-era
    /// process cannot run on a higher-degree topology.
    #[must_use]
    pub fn into_ring(mut self) -> Received<M> {
        assert!(
            self.slots.len() <= 2,
            "two-port process on a {}-port topology",
            self.slots.len()
        );
        Received {
            from_left: self.take(PortId::LEFT),
            from_right: self.take(PortId::RIGHT),
        }
    }
}

/// A deliverable message the scheduler may choose: the head of one directed
/// link's FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Receiving processor.
    pub to: usize,
    /// Arrival port at the receiver.
    pub port: PortId,
    /// The message's epoch (delivery "cycle" under the synchronizing
    /// adversary: sender's event epoch + 1).
    pub epoch: u64,
    /// Global send sequence number (total order of sends).
    pub seq: u64,
    pub(crate) queue: usize,
}

/// One queued message.
#[derive(Debug, Clone)]
struct InFlight<M> {
    msg: M,
    /// Due time at the receiver: arrival cycle (sync) or epoch (async).
    time: u64,
    /// The send's causal identity (seq, Lamport timestamp, parent edge).
    stamp: CausalStamp,
    /// Enqueue wall stamp, present only while the S26 profiler is
    /// enabled — consumed at dequeue to record queue dwell.
    enqueued: Option<Instant>,
}

/// A message popped from the fabric, with its timing metadata.
#[derive(Debug, Clone)]
pub(crate) struct Popped<M> {
    /// The message itself.
    pub msg: M,
    /// Its due time (arrival cycle / epoch).
    pub time: u64,
    /// The causal stamp it was sent with.
    pub stamp: CausalStamp,
}

/// The per-directed-link FIFO queues of a topology, plus the one send
/// path: route via the topology, meter the cost, notify observers,
/// enqueue.
///
/// One queue per `(processor, local port)` pair holds the messages
/// awaiting consumption there, in FIFO order — the model invariant every
/// paper argument assumes. On a ring this is exactly the historical `2n`
/// queues. Constructed per run; the topology is borrowed from the engine.
pub struct LinkFabric<'t, M> {
    topology: &'t dyn Topology,
    /// `offsets[i]` = index of processor `i`'s port-0 queue; queues for
    /// `i`'s ports are contiguous.
    offsets: Vec<usize>,
    queues: Vec<VecDeque<InFlight<M>>>,
    seq: u64,
}

impl<M> core::fmt::Debug for LinkFabric<'_, M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LinkFabric")
            .field("n", &self.topology.n())
            .field("queues", &self.queues.len())
            .field("seq", &self.seq)
            .finish()
    }
}

impl<'t, M: Message> LinkFabric<'t, M> {
    /// Empty fabric over `topology`.
    #[must_use]
    pub fn new(topology: &'t dyn Topology) -> LinkFabric<'t, M> {
        let mut offsets = Vec::with_capacity(topology.n());
        let mut total = 0;
        for i in 0..topology.n() {
            offsets.push(total);
            total += topology.ports(i);
        }
        LinkFabric {
            topology,
            offsets,
            queues: (0..total).map(|_| VecDeque::new()).collect(),
            seq: 0,
        }
    }

    fn queue_index(&self, to: usize, port: PortId) -> usize {
        debug_assert!(port.index() < self.topology.ports(to), "port out of range");
        self.offsets[to] + port.index()
    }

    /// Sends `msg` from processor `from` on its local `port`: routes it via
    /// the topology, accounts it on `meter` at time `meta.send_time`, emits
    /// a [`TraceEvent::Send`] carrying the causal stamp, and enqueues it
    /// due at `meta.due_time`.
    ///
    /// In the sync model `send_time` is the send cycle and `due_time` the
    /// arrival cycle (`send + 1`: one hop per cycle); in the async model
    /// both are the arrival epoch (event epoch + 1, Theorem 5.1).
    pub fn send(
        &mut self,
        from: usize,
        port: PortId,
        msg: M,
        meta: SendMeta,
        meter: &mut CostMeter,
        observer: &mut impl Observer,
    ) {
        let bits = msg.bit_len();
        let (to, arrival) = self.topology.neighbor_port(from, port);
        let stamp = CausalStamp {
            seq: self.seq,
            lamport: meta.lamport,
            parent: meta.parent,
        };
        meter.record_send(meta.send_time, bits);
        observer.on_event(&TraceEvent::Send(SendEvent {
            cycle: meta.send_time,
            from,
            to,
            port: arrival,
            bits,
            seq: stamp.seq,
            lamport: stamp.lamport,
            parent: stamp.parent,
            span: meta.span,
        }));
        let queue = self.queue_index(to, arrival);
        self.queues[queue].push_back(InFlight {
            msg,
            time: meta.due_time,
            stamp,
            enqueued: profile::stamp(),
        });
        self.seq += 1;
    }

    /// Whether processor `to` has a message due at or before time `now`.
    #[must_use]
    pub fn has_due(&self, to: usize, now: u64) -> bool {
        (0..self.topology.ports(to)).any(|p| {
            self.queues[self.queue_index(to, PortId::new(p as u16))]
                .front()
                .is_some_and(|m| m.time <= now)
        })
    }

    /// Removes and returns the messages due for processor `to` at time
    /// `now` — the sync model's per-cycle reception (at most one message
    /// per port: senders emit at most one per port per cycle, and nothing
    /// is released before it is due). The second component carries the
    /// causal stamps of the taken messages, port for port, so the engine
    /// can account the consumptions on its [`crate::runtime::CausalClocks`]
    /// and emit seq-carrying [`TraceEvent::Deliver`]s.
    pub fn take_due(&mut self, to: usize, now: u64) -> (PortRx<M>, PortRx<CausalStamp>) {
        let ports = self.topology.ports(to);
        let mut rx = PortRx::with_ports(ports);
        let mut stamps = PortRx::with_ports(ports);
        for p in 0..ports {
            let port = PortId::new(p as u16);
            let q = &mut self.queues[self.offsets[to] + p];
            let due = q.front().is_some_and(|m| m.time <= now);
            if due {
                let m = q.pop_front().expect("checked front");
                profile::record_queue_dwell(profile::QueueKind::Fabric, p, m.enqueued);
                rx.put(port, m.msg);
                stamps.put(port, m.stamp);
            }
            debug_assert!(
                q.front().is_none_or(|m| m.time > now),
                "one message per port per cycle"
            );
        }
        (rx, stamps)
    }

    /// Collects the current queue heads as scheduler candidates — the async
    /// model's delivery choices. Clears and refills `out`.
    pub fn candidates(&self, out: &mut Vec<Candidate>) {
        out.clear();
        for to in 0..self.topology.n() {
            for p in 0..self.topology.ports(to) {
                let q = self.offsets[to] + p;
                if let Some(head) = self.queues[q].front() {
                    out.push(Candidate {
                        to,
                        port: PortId::new(p as u16),
                        epoch: head.time,
                        seq: head.stamp.seq,
                        queue: q,
                    });
                }
            }
        }
    }

    /// Pops the head of the queue `candidate` points at.
    pub(crate) fn pop_candidate(&mut self, candidate: &Candidate) -> Popped<M> {
        let head = self.queues[candidate.queue]
            .pop_front()
            .expect("candidate refers to a nonempty queue head");
        profile::record_queue_dwell(
            profile::QueueKind::Fabric,
            candidate.port.index(),
            head.enqueued,
        );
        Popped {
            msg: head.msg,
            time: head.time,
            stamp: head.stamp,
        }
    }

    /// Discards everything still queued, returning the count — the sync
    /// engine's end-of-run accounting of in-flight messages to halted
    /// processors.
    pub fn drain_remaining(&mut self) -> u64 {
        self.queues
            .iter_mut()
            .map(|q| {
                let len = q.len() as u64;
                q.clear();
                len
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::{Candidate, LinkFabric, PortRx, Received, SendMeta};
    use crate::graph::GraphTopology;
    use crate::port::{Port, PortId};
    use crate::runtime::meter::CostMeter;
    use crate::runtime::observer::NullObserver;
    use crate::topology::RingTopology;

    fn meta(send_time: u64, due_time: u64) -> SendMeta {
        SendMeta {
            send_time,
            due_time,
            span: None,
            lamport: 1,
            parent: None,
        }
    }

    #[test]
    fn received_accessors_cover_both_ports() {
        let rx = Received {
            from_left: Some(1u8),
            from_right: None,
        };
        assert!(!rx.is_empty());
        assert_eq!(rx.on(Port::Left), Some(&1));
        assert_eq!(rx.on(Port::Right), None);
        assert_eq!(rx.iter().count(), 1);
        assert!(Received::<u8>::empty().is_empty());
    }

    #[test]
    fn messages_are_not_released_before_their_due_time() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        // Sent at cycle 0, due at cycle 1 — one hop per cycle.
        fabric.send(0, PortId::RIGHT, 7, meta(0, 1), &mut meter, &mut obs);
        assert!(!fabric.has_due(1, 0));
        assert!(fabric.take_due(1, 0).0.is_empty());
        assert!(fabric.has_due(1, 1));
        let (rx, stamps) = fabric.take_due(1, 1);
        let rx = rx.into_ring();
        assert_eq!(rx.from_left, Some(7));
        let stamp = stamps
            .get(PortId::LEFT)
            .expect("stamp travels with the message");
        assert_eq!((stamp.seq, stamp.lamport, stamp.parent), (0, 1, None));
        assert_eq!(meter.messages, 1);
        assert_eq!(meter.bits, 8);
    }

    #[test]
    fn routing_respects_per_processor_orientation() {
        use crate::port::Orientation;
        // Processor 1 is counterclockwise: 0's rightward message arrives
        // on 1's *right* port.
        let topo = RingTopology::new(vec![
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Clockwise,
        ])
        .unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        fabric.send(0, PortId::RIGHT, 42, meta(0, 1), &mut meter, &mut obs);
        let (rx, _) = fabric.take_due(1, 1);
        let rx = rx.into_ring();
        assert_eq!(rx.from_right, Some(42));
        assert_eq!(rx.from_left, None);
    }

    #[test]
    fn candidates_expose_fifo_heads_in_seq_order() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        fabric.send(0, PortId::RIGHT, 1, meta(1, 1), &mut meter, &mut obs);
        fabric.send(0, PortId::RIGHT, 2, meta(1, 1), &mut meter, &mut obs);
        fabric.send(1, PortId::RIGHT, 3, meta(1, 1), &mut meter, &mut obs);
        let mut cands: Vec<Candidate> = Vec::new();
        fabric.candidates(&mut cands);
        assert_eq!(cands.len(), 2, "one head per nonempty directed link");
        let first = cands.iter().find(|c| c.to == 1).unwrap();
        let popped = fabric.pop_candidate(first);
        assert_eq!(popped.msg, 1, "per-link FIFO: first send pops first");
        fabric.candidates(&mut cands);
        assert_eq!(cands.iter().find(|c| c.to == 1).unwrap().seq, 1);
        assert_eq!(fabric.drain_remaining(), 2);
        fabric.candidates(&mut cands);
        assert!(cands.is_empty());
    }

    #[test]
    fn port_rx_covers_the_port_vector() {
        let mut rx: PortRx<u8> = PortRx::with_ports(3);
        assert_eq!(rx.ports(), 3);
        assert!(rx.is_empty());
        rx.put(PortId::new(2), 9);
        assert!(!rx.is_empty());
        assert_eq!(rx.get(PortId::new(2)), Some(&9));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![(PortId::new(2), &9)]);
        assert_eq!(rx.take(PortId::new(2)), Some(9));
        assert_eq!(rx.take(PortId::new(2)), None);
        // Out-of-range lookups are None, not panics (a two-port ring
        // reception probed at port 5).
        assert_eq!(rx.get(PortId::new(5)), None);
    }

    #[test]
    fn fabric_routes_over_general_graphs() {
        // A star: processor 0 is the hub with three ports.
        let topo = GraphTopology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut fabric: LinkFabric<u8> = LinkFabric::new(&topo);
        let (mut meter, mut obs) = (CostMeter::new(), NullObserver);
        for p in 0..3u16 {
            fabric.send(0, PortId::new(p), p as u8, meta(0, 1), &mut meter, &mut obs);
        }
        for leaf in 1..4usize {
            let (rx, _) = fabric.take_due(leaf, 1);
            assert_eq!(rx.ports(), 1, "leaves have one port");
            assert_eq!(rx.get(PortId::new(0)), Some(&(leaf as u8 - 1)));
        }
        // Replies land on the hub's distinct ports.
        for leaf in 1..4usize {
            fabric.send(
                leaf,
                PortId::new(0),
                10 + leaf as u8,
                meta(1, 2),
                &mut meter,
                &mut obs,
            );
        }
        let (rx, _) = fabric.take_due(0, 2);
        assert_eq!(rx.ports(), 3);
        assert_eq!(
            rx.iter().map(|(_, &m)| m).collect::<Vec<_>>(),
            vec![11, 12, 13]
        );
        assert_eq!(meter.messages, 6);
    }
}
