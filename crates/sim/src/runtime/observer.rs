//! The unified trace-event stream.
//!
//! Both engines emit the same [`TraceEvent`]s through an [`Observer`], so
//! tooling written against the stream — the space-time
//! [`crate::trace::Trace`], test probes, future structured logging — works
//! for either model without knowing which engine produced the run.

use crate::port::Port;

/// One message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// Time of the send: the global cycle in the synchronous model, the
    /// arrival epoch in the asynchronous model.
    pub cycle: u64,
    /// Sending processor.
    pub from: usize,
    /// Receiving processor.
    pub to: usize,
    /// Encoded length of the message.
    pub bits: usize,
}

/// One event of a run, as emitted by either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was sent.
    Send(SendEvent),
    /// A message was consumed at (or discarded by) its receiver.
    Deliver {
        /// Consumption time: cycle (sync) or delivery epoch (async).
        time: u64,
        /// Receiving processor.
        to: usize,
        /// Local arrival port.
        port: Port,
        /// True when the receiver had already halted and the message was
        /// discarded.
        dropped: bool,
    },
    /// A processor halted.
    Halt {
        /// Halt time: cycle (sync) or event epoch (async).
        time: u64,
        /// The halting processor.
        processor: usize,
    },
}

/// A sink for [`TraceEvent`]s.
pub trait Observer {
    /// Receives one event, in execution order.
    fn on_event(&mut self, event: &TraceEvent);
}

/// Discards every event; the observer behind the plain `run` entry points.
/// Engines are generic over the observer, so this compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &TraceEvent) {}
}

impl<F: FnMut(&TraceEvent)> Observer for F {
    fn on_event(&mut self, event: &TraceEvent) {
        self(event);
    }
}

#[cfg(test)]
mod tests {
    use super::{NullObserver, Observer, SendEvent, TraceEvent};

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs = |ev: &TraceEvent| seen.push(*ev);
            obs.on_event(&TraceEvent::Halt {
                time: 1,
                processor: 0,
            });
            obs.on_event(&TraceEvent::Send(SendEvent {
                cycle: 0,
                from: 0,
                to: 1,
                bits: 4,
            }));
        }
        assert_eq!(seen.len(), 2);
        NullObserver.on_event(&seen[0]);
    }
}
