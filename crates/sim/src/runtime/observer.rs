//! The unified trace-event stream.
//!
//! Both engines emit the same [`TraceEvent`]s through an [`Observer`], so
//! tooling written against the stream — the space-time
//! [`crate::trace::Trace`], the [`crate::telemetry`] metrics and flight
//! recorder, test probes — works for either model without knowing which
//! engine produced the run. [`FanOut`] composes several observers over one
//! run, so a single execution can feed a trace, a metrics registry and a
//! recorder simultaneously.

use crate::port::PortId;
use crate::runtime::span::Span;

/// One message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// Time of the send: the global cycle in the synchronous model, the
    /// arrival epoch in the asynchronous model.
    pub cycle: u64,
    /// Sending processor.
    pub from: usize,
    /// Receiving processor.
    pub to: usize,
    /// Local port at the *receiver* on which the message will arrive —
    /// identifies the directed link, so queue-depth accounting can match
    /// this send with its [`TraceEvent::Deliver`].
    pub port: PortId,
    /// Encoded length of the message.
    pub bits: usize,
    /// Global send sequence number — unique per run, assigned in send
    /// order, and echoed by the matching [`TraceEvent::Deliver`].
    pub seq: u64,
    /// Sender's Lamport timestamp at the send.
    pub lamport: u64,
    /// `seq` of the send whose delivery causally enabled this one, or
    /// `None` for a spontaneous send (see
    /// [`crate::runtime::CausalClocks`]).
    pub parent: Option<u64>,
    /// Phase annotation of the emission that produced this send, if the
    /// algorithm attached one (see [`crate::runtime::Emit::in_span`]).
    pub span: Option<Span>,
}

/// One event of a run, as emitted by either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was sent.
    Send(SendEvent),
    /// A message was consumed at (or discarded by) its receiver.
    Deliver {
        /// Consumption time: cycle (sync) or delivery epoch (async).
        time: u64,
        /// Receiving processor.
        to: usize,
        /// Local arrival port.
        port: PortId,
        /// `seq` of the [`SendEvent`] this delivery consumes.
        seq: u64,
        /// True when the receiver had already halted and the message was
        /// discarded.
        dropped: bool,
    },
    /// A processor halted.
    Halt {
        /// Halt time: cycle (sync) or event epoch (async).
        time: u64,
        /// The halting processor.
        processor: usize,
    },
}

impl TraceEvent {
    /// The event's time index (cycle in the sync model, epoch in the
    /// async model).
    #[must_use]
    pub fn time(&self) -> u64 {
        match self {
            TraceEvent::Send(send) => send.cycle,
            TraceEvent::Deliver { time, .. } | TraceEvent::Halt { time, .. } => *time,
        }
    }
}

/// A sink for [`TraceEvent`]s.
pub trait Observer {
    /// Receives one event, in execution order.
    fn on_event(&mut self, event: &TraceEvent);
}

/// Discards every event; the observer behind the plain `run` entry points.
/// Engines are generic over the observer, so this compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &TraceEvent) {}
}

impl<F: FnMut(&TraceEvent)> Observer for F {
    fn on_event(&mut self, event: &TraceEvent) {
        self(event);
    }
}

/// Broadcasts each event to every registered observer, in registration
/// order — so one run can feed a [`crate::trace::Trace`], a
/// [`crate::telemetry::Telemetry`] registry and a
/// [`crate::telemetry::FlightRecorder`] without bespoke glue:
///
/// ```
/// use anonring_sim::runtime::{FanOut, Observer, TraceEvent};
/// use anonring_sim::telemetry::{FlightRecorder, Telemetry};
/// use anonring_sim::trace::Trace;
///
/// let mut trace = Trace::new(3);
/// let mut telemetry = Telemetry::new(3);
/// let mut recorder = FlightRecorder::new(3, "demo");
/// let mut fan = FanOut::new()
///     .with(&mut trace)
///     .with(&mut telemetry)
///     .with(&mut recorder);
/// fan.on_event(&TraceEvent::Halt { time: 0, processor: 1 });
/// ```
#[derive(Default)]
pub struct FanOut<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl<'a> FanOut<'a> {
    /// An empty fan-out (a no-op observer until sinks are added).
    #[must_use]
    pub fn new() -> FanOut<'a> {
        FanOut { sinks: Vec::new() }
    }

    /// Adds a sink, builder style.
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn Observer) -> FanOut<'a> {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink in place.
    pub fn push(&mut self, sink: &'a mut dyn Observer) {
        self.sinks.push(sink);
    }

    /// Number of registered sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl core::fmt::Debug for FanOut<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FanOut")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Observer for FanOut<'_> {
    fn on_event(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{FanOut, NullObserver, Observer, SendEvent, TraceEvent};
    use crate::port::PortId;

    fn send_event() -> TraceEvent {
        TraceEvent::Send(SendEvent {
            cycle: 0,
            from: 0,
            to: 1,
            port: PortId::LEFT,
            bits: 4,
            seq: 0,
            lamport: 1,
            parent: None,
            span: None,
        })
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs = |ev: &TraceEvent| seen.push(*ev);
            obs.on_event(&TraceEvent::Halt {
                time: 1,
                processor: 0,
            });
            obs.on_event(&send_event());
        }
        assert_eq!(seen.len(), 2);
        NullObserver.on_event(&seen[0]);
    }

    #[test]
    fn fan_out_broadcasts_to_every_sink_in_order() {
        let mut a = Vec::new();
        let mut b = 0u64;
        {
            let mut collect = |ev: &TraceEvent| a.push(*ev);
            let mut count = |_: &TraceEvent| b += 1;
            let mut fan = FanOut::new().with(&mut collect).with(&mut count);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.on_event(&send_event());
            fan.on_event(&TraceEvent::Halt {
                time: 2,
                processor: 1,
            });
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b, 2);
    }

    #[test]
    fn empty_fan_out_is_a_no_op() {
        let mut fan = FanOut::new();
        assert!(fan.is_empty());
        fan.on_event(&send_event());
    }

    #[test]
    fn event_time_covers_all_variants() {
        assert_eq!(send_event().time(), 0);
        assert_eq!(
            TraceEvent::Deliver {
                time: 3,
                to: 0,
                port: PortId::RIGHT,
                seq: 0,
                dropped: false
            }
            .time(),
            3
        );
        assert_eq!(
            TraceEvent::Halt {
                time: 7,
                processor: 0
            }
            .time(),
            7
        );
    }
}
