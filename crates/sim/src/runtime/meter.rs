//! The single cost-accounting layer.
//!
//! Every number in `SyncReport` and `AsyncReport` — and therefore every
//! EXPERIMENTS table — comes from one `CostMeter`, so the paper's message,
//! bit and time complexities are defined in exactly one place.

/// Accumulates the costs of one run.
///
/// "Time" is the model's notion of it: the **send cycle** in the
/// synchronous model, the **arrival epoch** (sender's event epoch + 1,
/// Theorem 5.1's bookkeeping) in the asynchronous model. The engine passes
/// the appropriate value to [`CostMeter::record_send`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Total messages sent (the paper's message complexity).
    pub messages: u64,
    /// Total bits sent (the paper's bit complexity), summing
    /// [`crate::Message::bit_len`] over every send.
    pub bits: u64,
    /// Deliveries performed (async model only; includes drops).
    pub deliveries: u64,
    /// Messages that reached an already-halted processor and were
    /// discarded.
    pub dropped: u64,
    /// Highest time index of any send.
    pub max_time: u64,
    /// Messages per time index (send cycle / arrival epoch).
    pub per_time_messages: Vec<u64>,
}

impl CostMeter {
    /// A zeroed meter.
    #[must_use]
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Accounts one sent message of `bits` length at time index `time`.
    pub fn record_send(&mut self, time: u64, bits: usize) {
        self.messages += 1;
        self.bits += bits as u64;
        self.max_time = self.max_time.max(time);
        let slot = usize::try_from(time).expect("time index fits usize");
        if self.per_time_messages.len() <= slot {
            self.per_time_messages.resize(slot + 1, 0);
        }
        self.per_time_messages[slot] += 1;
    }

    /// Accounts one delivery (async model; called for drops too).
    pub fn record_delivery(&mut self) {
        self.deliveries += 1;
    }

    /// Accounts one message discarded at a halted processor.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Marks time index `time` as executed, so the per-time histogram has
    /// a (possibly zero) slot for it. The sync engine calls this each
    /// cycle: quiet cycles appear as explicit zeros, and
    /// `per_cycle_messages.len()` equals the cycle count.
    pub fn close_time(&mut self, time: u64) {
        let want = usize::try_from(time).expect("time index fits usize") + 1;
        if self.per_time_messages.len() < want {
            self.per_time_messages.resize(want, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::CostMeter;

    #[test]
    fn sends_fill_the_per_time_histogram() {
        let mut m = CostMeter::new();
        m.record_send(1, 8);
        m.record_send(1, 8);
        m.record_send(3, 2);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 18);
        assert_eq!(m.max_time, 3);
        assert_eq!(m.per_time_messages, vec![0, 2, 0, 1]);
    }

    #[test]
    fn close_time_pads_quiet_cycles_without_overwriting() {
        let mut m = CostMeter::new();
        m.record_send(0, 1);
        m.close_time(0);
        m.close_time(1);
        m.close_time(2);
        assert_eq!(m.per_time_messages, vec![1, 0, 0]);
        assert_eq!(m.max_time, 0, "close_time does not move max send time");
    }

    #[test]
    fn drops_and_deliveries_are_independent_tallies() {
        let mut m = CostMeter::new();
        m.record_delivery();
        m.record_drop();
        m.record_delivery();
        assert_eq!((m.deliveries, m.dropped), (2, 1));
        assert_eq!(m.messages, 0);
    }
}
