//! Lamport clocks and causal parent edges for the trace-event stream.
//!
//! Both engines stamp every send with a Lamport timestamp and a *parent
//! edge*: the delivery that causally enabled the send. The paper's lower
//! bounds (§5–§6) reason about chains of causally-dependent deliveries;
//! these stamps make that chain structure observable, so
//! [`crate::telemetry::causality`] can rebuild the causal DAG of a run
//! and extract its critical path.

/// Causal identity of one sent message, as stamped at the send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalStamp {
    /// Global send sequence number — unique per run, assigned in send
    /// order by the [`crate::runtime::LinkFabric`].
    pub seq: u64,
    /// Sender's Lamport timestamp at the send (first send of a run is 1).
    pub lamport: u64,
    /// `seq` of the send whose delivery causally enabled this one, or
    /// `None` for a spontaneous send (nothing consumed yet).
    pub parent: Option<u64>,
}

/// The consumed message a processor remembers as the cause of its
/// subsequent sends.
#[derive(Debug, Clone, Copy)]
struct Cause {
    seq: u64,
    lamport: u64,
}

/// Per-processor Lamport clocks plus the causal-parent bookkeeping.
///
/// Engines own one of these per run. On every consumption they call
/// [`CausalClocks::consume`]; before every send they call
/// [`CausalClocks::stamp_send`] to obtain the `(lamport, parent)` pair the
/// fabric stamps onto the outgoing message.
///
/// The parent of a send is the highest-Lamport message its sender has
/// consumed so far (ties broken by `seq`). Any consumed message
/// happened-before the send, so the edge is causally sound; picking the
/// maximal timestamp extends the longest chain, which is what the critical
/// path measures. The choice is deterministic, so recordings replay
/// byte-identically.
#[derive(Debug, Clone)]
pub struct CausalClocks {
    clocks: Vec<u64>,
    cause: Vec<Option<Cause>>,
}

impl CausalClocks {
    /// Fresh clocks (all zero) for `n` processors.
    #[must_use]
    pub fn new(n: usize) -> CausalClocks {
        CausalClocks {
            clocks: vec![0; n],
            cause: vec![None; n],
        }
    }

    /// Accounts the consumption of a message carrying `stamp` by processor
    /// `to`: advances `to`'s clock past the sender's, and remembers the
    /// highest-Lamport consumed message as the causal parent of `to`'s
    /// subsequent sends.
    pub fn consume(&mut self, to: usize, stamp: CausalStamp) {
        self.clocks[to] = self.clocks[to].max(stamp.lamport) + 1;
        let stronger =
            self.cause[to].is_none_or(|held| (held.lamport, held.seq) < (stamp.lamport, stamp.seq));
        if stronger {
            self.cause[to] = Some(Cause {
                seq: stamp.seq,
                lamport: stamp.lamport,
            });
        }
    }

    /// Stamps a new send by processor `from`: ticks its clock and returns
    /// the `(lamport, parent)` pair for the outgoing message.
    pub fn stamp_send(&mut self, from: usize) -> (u64, Option<u64>) {
        self.clocks[from] += 1;
        (self.clocks[from], self.cause[from].map(|c| c.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::{CausalClocks, CausalStamp};

    #[test]
    fn spontaneous_sends_have_no_parent_and_tick_the_clock() {
        let mut clocks = CausalClocks::new(2);
        assert_eq!(clocks.stamp_send(0), (1, None));
        assert_eq!(clocks.stamp_send(0), (2, None));
        assert_eq!(clocks.stamp_send(1), (1, None), "clocks are per-processor");
    }

    #[test]
    fn consumption_advances_past_the_sender_and_sets_the_parent() {
        let mut clocks = CausalClocks::new(2);
        clocks.consume(
            1,
            CausalStamp {
                seq: 0,
                lamport: 5,
                parent: None,
            },
        );
        // max(0, 5) + 1 = 6, then the send ticks to 7.
        assert_eq!(clocks.stamp_send(1), (7, Some(0)));
    }

    #[test]
    fn the_parent_is_the_highest_lamport_consumed_message() {
        let mut clocks = CausalClocks::new(1);
        clocks.consume(
            0,
            CausalStamp {
                seq: 3,
                lamport: 9,
                parent: None,
            },
        );
        clocks.consume(
            0,
            CausalStamp {
                seq: 7,
                lamport: 2,
                parent: None,
            },
        );
        let (_, parent) = clocks.stamp_send(0);
        assert_eq!(parent, Some(3), "lamport 9 beats lamport 2");
        // Equal lamports: the higher seq wins the tie.
        let mut clocks = CausalClocks::new(1);
        for seq in [4, 8] {
            clocks.consume(
                0,
                CausalStamp {
                    seq,
                    lamport: 6,
                    parent: None,
                },
            );
        }
        assert_eq!(clocks.stamp_send(0).1, Some(8));
    }
}
