//! The shared execution substrate both engines drive.
//!
//! The synchronous ([`crate::sync::SyncEngine`]) and asynchronous
//! ([`crate::r#async::AsyncEngine`]) models of the paper differ only in *who
//! decides when a message is consumed*: the global clock, or an adversarial
//! scheduler. Everything else — per-directed-link FIFO queues, message/bit
//! accounting, halt bookkeeping, trace emission, and the send-helper
//! constructors algorithms use — is model-independent and lives here, with
//! exactly one implementation:
//!
//! * [`LinkFabric`] — the `2n` directed-link FIFO queues plus the single
//!   send path (route via the topology, meter, notify observers, enqueue).
//!   The sync engine consumes messages due at the current cycle; the async
//!   engine exposes the queue heads to a scheduler.
//! * [`CostMeter`] — messages, bits, deliveries, drops and the per-time
//!   histogram behind both `SyncReport` and `AsyncReport`.
//! * [`Emit`] — the send/halt constructor vocabulary (`send`, `send_both`,
//!   `and_send`, `halt`, `idle`, …) shared by [`Step`] and [`Actions`].
//! * [`Observer`]/[`TraceEvent`] — a pluggable event stream; the space-time
//!   [`crate::trace::Trace`] is one observer, the [`crate::telemetry`]
//!   metrics registry and flight recorder are others, and [`FanOut`]
//!   composes any number of them over a single run. Both engines emit the
//!   same events.
//! * [`Span`] — the phase/round annotation algorithms attach to emissions
//!   (via [`Emit::in_span`]); engines stamp it onto each [`SendEvent`], so
//!   telemetry can report messages-per-phase against the paper's
//!   per-phase budgets.
//!
//! ## Cost-model invariants
//!
//! The runtime pins down the semantics every experiment and lower-bound
//! argument relies on:
//!
//! * **One hop per cycle (sync):** a message sent at cycle `t` is consumed
//!   at cycle `t + 1`, never earlier — information travels exactly one hop
//!   per cycle (Lemma 3.1). [`LinkFabric::send`] tags the message with its
//!   due time and [`LinkFabric::take_due`] refuses to release it early.
//! * **FIFO links (async):** delivery order within one directed link is
//!   fixed; the scheduler only chooses *between* links, structurally
//!   enforced by handing it queue heads ([`LinkFabric::candidates`]).
//! * **Meter semantics:** a message is counted (messages, bits, per-time
//!   slot) exactly once, at its send; `bits` adds
//!   [`crate::Message::bit_len`]. The per-time histogram indexes *send
//!   cycle* in the sync model and *arrival epoch* (the sender's event
//!   epoch plus one) in the async model — the paper's Theorem 5.1
//!   bookkeeping. Deliveries to halted processors count as drops; in the
//!   async model they also count as deliveries.
//! * **Causal stamps:** every send carries a global sequence number, a
//!   Lamport timestamp, and a parent edge naming the delivery that
//!   causally enabled it ([`CausalClocks`]); the matching
//!   [`TraceEvent::Deliver`] echoes the seq. The stamps are derived
//!   deterministically from the execution, so identical schedules produce
//!   identical causal DAGs (see [`crate::telemetry::causality`]).

mod actions;
mod causal;
mod mailbox;
mod meter;
mod observer;
mod span;

pub use actions::{Actions, Emit, PortActions, Step};
pub use causal::{CausalClocks, CausalStamp};
pub use mailbox::{Candidate, LinkFabric, PortRx, Received, SendMeta};
pub use meter::CostMeter;
pub use observer::{FanOut, NullObserver, Observer, SendEvent, TraceEvent};
pub use span::Span;
