//! The shared send/halt vocabulary: one [`Emit`] trait providing the
//! constructor helpers, implemented by the sync model's [`Step`] and the
//! async model's [`Actions`]; [`PortActions`] is the general-topology
//! emission both engines execute internally.

use crate::port::{Port, PortId};
use crate::runtime::span::Span;

/// What a synchronous processor does in one cycle: at most one message per
/// port, and possibly halting with an output. Messages emitted in the
/// halting step are still delivered (the paper's AND algorithm "forwards it
/// and halts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step<M, O> {
    /// Message to send on the local left port.
    pub to_left: Option<M>,
    /// Message to send on the local right port.
    pub to_right: Option<M>,
    /// `Some(output)` to halt at the end of this cycle.
    pub halt: Option<O>,
    /// Phase annotation stamped onto this cycle's sends (telemetry only;
    /// no effect on execution).
    pub span: Option<Span>,
}

/// What an asynchronous processor does in response to an event: any number
/// of sends plus an optional halt. Sends are delivered in the order listed
/// (per link).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actions<M, O> {
    /// Messages to send, in order.
    pub sends: Vec<(Port, M)>,
    /// `Some(output)` to halt after this event.
    pub halt: Option<O>,
    /// Phase annotation stamped onto this event's sends (telemetry only;
    /// no effect on execution).
    pub span: Option<Span>,
}

/// What a general-topology processor does in response to one step or
/// event: sends addressed by [`PortId`], plus an optional halt and span.
///
/// Both engines execute this form internally; the ring-era [`Step`] and
/// [`Actions`] convert into it losslessly (`Left` ↦ port 0, `Right` ↦
/// port 1), so ring algorithms compile to exactly the emissions they
/// always produced. Processors written directly against the general API
/// (for example the dynamic-broadcast family) construct it with the
/// inherent builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortActions<M, O> {
    /// Messages to send, in order, addressed by local port.
    pub sends: Vec<(PortId, M)>,
    /// `Some(output)` to halt after this emission.
    pub halt: Option<O>,
    /// Phase annotation stamped onto this emission's sends (telemetry
    /// only; no effect on execution).
    pub span: Option<Span>,
}

impl<M, O> PortActions<M, O> {
    /// Do nothing: no sends, keep running.
    #[must_use]
    pub fn idle() -> Self {
        PortActions {
            sends: Vec::new(),
            halt: None,
            span: None,
        }
    }

    /// Send `msg` on local port `port`.
    #[must_use]
    pub fn send(port: PortId, msg: M) -> Self {
        Self::idle().and_send(port, msg)
    }

    /// Send a copy of `msg` on every port in `ports`, in order.
    #[must_use]
    pub fn send_each(ports: &[PortId], msg: M) -> Self
    where
        M: Clone,
    {
        let mut this = Self::idle();
        crate::profile::record_fanout_clones(ports.len() as u64);
        for &port in ports {
            this.sends.push((port, msg.clone()));
        }
        this
    }

    /// Halt with `output`, sending nothing.
    #[must_use]
    pub fn halt(output: O) -> Self {
        let mut this = Self::idle();
        this.halt = Some(output);
        this
    }

    /// Adds a send to this emission.
    #[must_use]
    pub fn and_send(mut self, port: PortId, msg: M) -> Self {
        self.sends.push((port, msg));
        self
    }

    /// Adds a halt to this emission (sends still happen).
    #[must_use]
    pub fn and_halt(mut self, output: O) -> Self {
        self.halt = Some(output);
        self
    }

    /// Annotates this emission's sends as belonging to round `round` of
    /// `phase`.
    #[must_use]
    pub fn in_span(mut self, phase: &'static str, round: u64) -> Self {
        self.span = Some(Span::new(phase, round));
        self
    }
}

impl<M, O> From<Step<M, O>> for PortActions<M, O> {
    fn from(step: Step<M, O>) -> PortActions<M, O> {
        let mut sends = Vec::new();
        if let Some(m) = step.to_left {
            sends.push((PortId::LEFT, m));
        }
        if let Some(m) = step.to_right {
            sends.push((PortId::RIGHT, m));
        }
        PortActions {
            sends,
            halt: step.halt,
            span: step.span,
        }
    }
}

impl<M, O> From<Actions<M, O>> for PortActions<M, O> {
    fn from(actions: Actions<M, O>) -> PortActions<M, O> {
        PortActions {
            sends: actions
                .sends
                .into_iter()
                .map(|(port, m)| (PortId::from(port), m))
                .collect(),
            halt: actions.halt,
            span: actions.span,
        }
    }
}

/// Constructors shared by every emission type ([`Step`], [`Actions`]).
///
/// Implementors provide the three primitives ([`Emit::idle`],
/// [`Emit::push_send`], [`Emit::set_halt`]); the builder vocabulary the
/// algorithms use is defined once on top of them.
pub trait Emit<M, O>: Sized {
    /// Do nothing: no sends, keep running.
    #[must_use]
    fn idle() -> Self;

    /// Appends a send of `msg` on `port`.
    ///
    /// For [`Step`] this fills the per-port slot (at most one message per
    /// port per cycle — the synchronous model's constraint); for
    /// [`Actions`] it appends to the ordered send list.
    fn push_send(&mut self, port: Port, msg: M);

    /// Marks this emission as halting with `output`.
    fn set_halt(&mut self, output: O);

    /// Attaches a phase [`Span`] to this emission; the engines stamp it
    /// onto every send the emission produces. Purely observational.
    fn set_span(&mut self, span: Span);

    /// Send `msg` on `port`.
    #[must_use]
    fn send(port: Port, msg: M) -> Self {
        Self::idle().and_send(port, msg)
    }

    /// Send `msg` on the left port only.
    #[must_use]
    fn send_left(msg: M) -> Self {
        Self::send(Port::Left, msg)
    }

    /// Send `msg` on the right port only.
    #[must_use]
    fn send_right(msg: M) -> Self {
        Self::send(Port::Right, msg)
    }

    /// Send on both ports (left first).
    #[must_use]
    fn send_both(left: M, right: M) -> Self {
        Self::send(Port::Left, left).and_send(Port::Right, right)
    }

    /// Halt with `output`, sending nothing.
    #[must_use]
    fn halt(output: O) -> Self {
        let mut this = Self::idle();
        this.set_halt(output);
        this
    }

    /// Adds a send to this emission.
    #[must_use]
    fn and_send(mut self, port: Port, msg: M) -> Self {
        self.push_send(port, msg);
        self
    }

    /// Adds a halt to this emission (sends still happen).
    #[must_use]
    fn and_halt(mut self, output: O) -> Self {
        self.set_halt(output);
        self
    }

    /// Annotates this emission's sends as belonging to round `round` of
    /// `phase` — the telemetry layer's messages-per-phase accounting hook.
    #[must_use]
    fn in_span(mut self, phase: &'static str, round: u64) -> Self {
        self.set_span(Span::new(phase, round));
        self
    }
}

impl<M, O> Emit<M, O> for Step<M, O> {
    fn idle() -> Self {
        Step {
            to_left: None,
            to_right: None,
            halt: None,
            span: None,
        }
    }

    fn push_send(&mut self, port: Port, msg: M) {
        let slot = match port {
            Port::Left => &mut self.to_left,
            Port::Right => &mut self.to_right,
        };
        debug_assert!(
            slot.is_none(),
            "synchronous step: at most one message per port per cycle"
        );
        *slot = Some(msg);
    }

    fn set_halt(&mut self, output: O) {
        self.halt = Some(output);
    }

    fn set_span(&mut self, span: Span) {
        self.span = Some(span);
    }
}

impl<M, O> Emit<M, O> for Actions<M, O> {
    fn idle() -> Self {
        Actions {
            sends: Vec::new(),
            halt: None,
            span: None,
        }
    }

    fn push_send(&mut self, port: Port, msg: M) {
        self.sends.push((port, msg));
    }

    fn set_halt(&mut self, output: O) {
        self.halt = Some(output);
    }

    fn set_span(&mut self, span: Span) {
        self.span = Some(span);
    }
}

#[cfg(test)]
mod tests {
    use super::{Actions, Emit, Step};
    use crate::port::Port;

    #[test]
    fn step_and_actions_share_the_constructor_vocabulary() {
        let step: Step<u8, ()> = Step::send_both(1, 2);
        assert_eq!(step.to_left, Some(1));
        assert_eq!(step.to_right, Some(2));
        assert!(step.halt.is_none());

        let actions: Actions<u8, ()> = Actions::send_both(1, 2);
        assert_eq!(actions.sends, vec![(Port::Left, 1), (Port::Right, 2)]);
        assert!(actions.halt.is_none());
    }

    #[test]
    fn halting_composes_with_sends() {
        let step: Step<u8, u8> = Step::send_left(3).and_halt(9);
        assert_eq!(
            (step.to_left, step.to_right, step.halt),
            (Some(3), None, Some(9))
        );

        let actions: Actions<u8, u8> = Actions::halt(9).and_send(Port::Right, 3);
        assert_eq!(actions.sends, vec![(Port::Right, 3)]);
        assert_eq!(actions.halt, Some(9));
    }

    #[test]
    fn spans_attach_to_both_emission_types() {
        use crate::runtime::span::Span;
        let step: Step<u8, ()> = Step::send_left(1).in_span("labels", 2);
        assert_eq!(step.span, Some(Span::new("labels", 2)));
        let actions: Actions<u8, ()> = Actions::idle().in_span("probe", 0);
        assert_eq!(actions.span, Some(Span::new("probe", 0)));
        let plain: Step<u8, ()> = Step::idle();
        assert_eq!(plain.span, None);
    }

    #[test]
    fn ring_emissions_lower_to_port_actions() {
        use crate::port::PortId;
        use crate::runtime::actions::PortActions;

        let step: Step<u8, u8> = Step::send_both(1, 2).and_halt(9);
        let lowered = PortActions::from(step);
        assert_eq!(lowered.sends, vec![(PortId::LEFT, 1), (PortId::RIGHT, 2)]);
        assert_eq!(lowered.halt, Some(9));

        let actions: Actions<u8, ()> = Actions::send(Port::Right, 7).and_send(Port::Left, 8);
        let lowered = PortActions::from(actions);
        assert_eq!(lowered.sends, vec![(PortId::RIGHT, 7), (PortId::LEFT, 8)]);

        let general: PortActions<u8, u8> =
            PortActions::send_each(&[PortId::new(0), PortId::new(2)], 5).and_halt(1);
        assert_eq!(
            general.sends,
            vec![(PortId::new(0), 5), (PortId::new(2), 5)]
        );
        assert_eq!(PortActions::<u8, u8>::halt(3).halt, Some(3));
        assert!(PortActions::<u8, ()>::idle().sends.is_empty());
        let spanned: PortActions<u8, ()> = PortActions::idle().in_span("flood", 2);
        assert!(spanned.span.is_some());
    }

    #[test]
    fn actions_preserve_send_order_across_repeated_ports() {
        let actions: Actions<u8, ()> = Actions::send(Port::Right, 1)
            .and_send(Port::Right, 2)
            .and_send(Port::Left, 3);
        assert_eq!(
            actions.sends,
            vec![(Port::Right, 1), (Port::Right, 2), (Port::Left, 3)]
        );
    }
}
