//! Static general-graph topologies: arbitrary port-labelled wirings
//! beyond the ring.
//!
//! A [`GraphTopology`] is built from an undirected edge list. Each edge
//! `{i, j}` consumes the next free port at both endpoints, so port labels
//! are a *local* artifact of insertion order — processors remain
//! anonymous, and nothing global leaks through the labels. Multi-edges
//! are allowed (they get distinct ports, exactly like the `n = 2` ring's
//! two channels); self-loops are rejected at construction.

use crate::error::SimError;
use crate::port::PortId;
use crate::topology::Topology;

/// One endpoint of an explicitly port-labelled edge: `(processor, port)`.
pub type PortEnd = (usize, u16);

/// An arbitrary static port-labelled topology over `n ≥ 2` processors.
///
/// ```
/// use anonring_sim::{GraphTopology, PortId, Topology};
///
/// // A triangle with a pendant vertex.
/// let g = GraphTopology::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// assert_eq!(g.ports(2), 3);
/// assert_eq!(g.ports(3), 1);
/// let (j, q) = g.neighbor_port(3, PortId::new(0));
/// assert_eq!(g.neighbor_port(j, q), (3, PortId::new(0)));
/// assert_eq!(g.components(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTopology {
    /// `wires[i][p] = (j, q)`: the fixed far end of processor `i`'s port
    /// `p`.
    wires: Vec<Vec<(usize, PortId)>>,
    /// `edge_ids[i][p]`: index of the undirected edge behind `(i, p)` in
    /// the constructing edge list — the key dynamic schedules use.
    edge_ids: Vec<Vec<usize>>,
    edges: usize,
}

impl GraphTopology {
    /// Builds a topology from an undirected edge list over processors
    /// `0..n`. Edge `k` of the list takes the next free port at each of
    /// its endpoints and gets edge id `k`.
    ///
    /// # Errors
    ///
    /// * [`SimError::RingTooSmall`] when `n < 2` (a lone processor has
    ///   nobody to compute with);
    /// * [`SimError::SelfLoop`] when an edge joins a processor to itself;
    /// * [`SimError::EdgeOutOfRange`] when an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<GraphTopology, SimError> {
        if n < 2 {
            return Err(SimError::RingTooSmall { n });
        }
        let mut wires: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); n];
        let mut edge_ids: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &(a, b)) in edges.iter().enumerate() {
            if a == b {
                return Err(SimError::SelfLoop { processor: a });
            }
            for end in [a, b] {
                if end >= n {
                    return Err(SimError::EdgeOutOfRange { processor: end, n });
                }
            }
            let pa = PortId::new(wires[a].len() as u16);
            let pb = PortId::new(wires[b].len() as u16);
            wires[a].push((b, pb));
            wires[b].push((a, pa));
            edge_ids[a].push(k);
            edge_ids[b].push(k);
        }
        Ok(GraphTopology {
            wires,
            edge_ids,
            edges: edges.len(),
        })
    }

    /// Builds a topology from an undirected edge list with **explicit**
    /// port assignments: edge `k` of the list wires processor `a`'s port
    /// `pa` to processor `b`'s port `pb` and gets edge id `k`. Use this
    /// when a wiring's port labels carry meaning [`from_edges`]'s
    /// insertion order cannot express — e.g. re-expressing an oriented
    /// ring, whose every processor must see its left channel on port 0.
    ///
    /// [`from_edges`]: GraphTopology::from_edges
    ///
    /// # Errors
    ///
    /// * [`SimError::RingTooSmall`] when `n < 2`;
    /// * [`SimError::SelfLoop`] when an edge joins a processor to itself;
    /// * [`SimError::EdgeOutOfRange`] when an endpoint is `≥ n`;
    /// * [`SimError::PortClash`] when a port is assigned twice, or a
    ///   processor's ports are not the gap-free range `0..ports(i)`.
    pub fn from_port_edges(
        n: usize,
        edges: &[(PortEnd, PortEnd)],
    ) -> Result<GraphTopology, SimError> {
        if n < 2 {
            return Err(SimError::RingTooSmall { n });
        }
        let mut wires: Vec<Vec<Option<(usize, PortId)>>> = vec![Vec::new(); n];
        let mut edge_ids: Vec<Vec<Option<usize>>> = vec![Vec::new(); n];
        for (k, &((a, pa), (b, pb))) in edges.iter().enumerate() {
            if a == b {
                return Err(SimError::SelfLoop { processor: a });
            }
            for end in [a, b] {
                if end >= n {
                    return Err(SimError::EdgeOutOfRange { processor: end, n });
                }
            }
            for ((node, port), far) in [((a, pa), (b, pb)), ((b, pb), (a, pa))] {
                let slot = port as usize;
                if wires[node].len() <= slot {
                    wires[node].resize(slot + 1, None);
                    edge_ids[node].resize(slot + 1, None);
                }
                if wires[node][slot].is_some() {
                    return Err(SimError::PortClash {
                        processor: node,
                        port,
                    });
                }
                wires[node][slot] = Some((far.0, PortId::new(far.1)));
                edge_ids[node][slot] = Some(k);
            }
        }
        // Every declared slot must be wired: a gap would leave a port
        // that sends into nowhere.
        let mut full_wires = Vec::with_capacity(n);
        let mut full_ids = Vec::with_capacity(n);
        for (i, (w, ids)) in wires.into_iter().zip(edge_ids).enumerate() {
            let mut fw = Vec::with_capacity(w.len());
            let mut fi = Vec::with_capacity(ids.len());
            for (p, (wire, id)) in w.into_iter().zip(ids).enumerate() {
                match (wire, id) {
                    (Some(wire), Some(id)) => {
                        fw.push(wire);
                        fi.push(id);
                    }
                    _ => {
                        return Err(SimError::PortClash {
                            processor: i,
                            port: p as u16,
                        })
                    }
                }
            }
            full_wires.push(fw);
            full_ids.push(fi);
        }
        Ok(GraphTopology {
            wires: full_wires,
            edge_ids: full_ids,
            edges: edges.len(),
        })
    }

    /// The complete graph `K_n`: every pair of processors shares one
    /// edge. The usual *footprint* (potential-neighbour port space) for
    /// dynamic topologies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] when `n < 2`.
    pub fn complete(n: usize) -> Result<GraphTopology, SimError> {
        let mut edges = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        GraphTopology::from_edges(n, &edges)
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The edge id (index into the constructing edge list) behind
    /// `(i, port)`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n` or `port ≥ ports(i)`.
    #[must_use]
    pub fn edge_id(&self, i: usize, port: PortId) -> usize {
        self.edge_ids[i][port.index()]
    }

    /// Whether the wiring is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.components() == 1
    }
}

impl Topology for GraphTopology {
    fn n(&self) -> usize {
        self.wires.len()
    }

    fn ports(&self, i: usize) -> usize {
        self.wires[i].len()
    }

    fn neighbor_port(&self, i: usize, port: PortId) -> (usize, PortId) {
        self.wires[i][port.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_are_rejected() {
        assert!(matches!(
            GraphTopology::from_edges(3, &[(0, 1), (2, 2)]),
            Err(SimError::SelfLoop { processor: 2 })
        ));
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        assert!(matches!(
            GraphTopology::from_edges(3, &[(0, 5)]),
            Err(SimError::EdgeOutOfRange { processor: 5, n: 3 })
        ));
        assert!(matches!(
            GraphTopology::from_edges(1, &[]),
            Err(SimError::RingTooSmall { n: 1 })
        ));
    }

    #[test]
    fn wiring_is_an_involution() {
        let g = GraphTopology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
            .unwrap();
        for i in 0..g.n() {
            for p in 0..g.ports(i) {
                let p = PortId::new(p as u16);
                let (j, q) = g.neighbor_port(i, p);
                assert_ne!(j, i, "no self-loops");
                assert_eq!(g.neighbor_port(j, q), (i, p), "round trip from {i}/{p}");
            }
        }
    }

    #[test]
    fn multi_edges_get_distinct_ports() {
        // Two processors joined by two distinct channels — the general
        // analogue of the n = 2 ring.
        let g = GraphTopology::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.ports(0), 2);
        assert_eq!(g.edge_id(0, PortId::new(0)), 0);
        assert_eq!(g.edge_id(0, PortId::new(1)), 1);
        assert_ne!(
            g.neighbor_port(0, PortId::new(0)).1,
            g.neighbor_port(0, PortId::new(1)).1
        );
    }

    #[test]
    fn components_and_connectivity() {
        let disconnected = GraphTopology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(disconnected.components(), 2);
        assert!(!disconnected.is_connected());
        let complete = GraphTopology::complete(4).unwrap();
        assert_eq!(complete.edge_count(), 6);
        assert!(complete.is_connected());
        assert_eq!(complete.ports(0), 3);
        // An isolated processor is its own component.
        let isolated = GraphTopology::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(isolated.components(), 2);
    }

    #[test]
    fn explicit_port_edges_express_any_labelling() {
        // The oriented 3-ring: every processor's port 0 faces its left
        // neighbour — a labelling from_edges insertion order cannot
        // produce.
        let g = GraphTopology::from_port_edges(
            3,
            &[((0, 1), (1, 0)), ((1, 1), (2, 0)), ((2, 1), (0, 0))],
        )
        .unwrap();
        for i in 0..3 {
            assert_eq!(
                g.neighbor_port(i, PortId::new(1)),
                ((i + 1) % 3, PortId::new(0))
            );
            assert_eq!(
                g.neighbor_port(i, PortId::new(0)),
                ((i + 2) % 3, PortId::new(1))
            );
        }
        assert_eq!(g.edge_id(0, PortId::new(1)), 0);

        // A reused port clashes…
        assert!(matches!(
            GraphTopology::from_port_edges(3, &[((0, 0), (1, 0)), ((0, 0), (2, 0))]),
            Err(SimError::PortClash {
                processor: 0,
                port: 0
            })
        ));
        // …and so does a gap in the port space.
        assert!(matches!(
            GraphTopology::from_port_edges(3, &[((0, 1), (1, 0)), ((1, 1), (2, 0))]),
            Err(SimError::PortClash {
                processor: 0,
                port: 0
            })
        ));
        // Self-loops and range checks match from_edges.
        assert!(matches!(
            GraphTopology::from_port_edges(2, &[((0, 0), (0, 1))]),
            Err(SimError::SelfLoop { processor: 0 })
        ));
    }

    #[test]
    fn digests_distinguish_wirings() {
        let a = GraphTopology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = GraphTopology::from_edges(4, &[(0, 1), (1, 3), (3, 2)]).unwrap();
        assert_ne!(a.wiring_digest(), b.wiring_digest());
        assert_eq!(a.wiring_digest(), a.clone().wiring_digest());
    }
}
