//! Dynamic topologies: a fixed port space whose *active* edge set is
//! swapped between rounds.
//!
//! Following the dynamic-network model (1-interval connectivity), the
//! wiring itself — which port pairs are joined — never changes; what
//! changes per round is which of those wires carry messages. A
//! [`DynamicTopology`] pairs a static [`GraphTopology`] footprint with a
//! per-round edge schedule, keyed by the footprint's edge ids so activity
//! is symmetric by construction: a wire is active at both ends or
//! neither.
//!
//! [`DynamicTopology::adversarial`] is the deterministic seeded adversary
//! used by the dynamic-broadcast family: each round it activates a random
//! Hamiltonian path (so every round's graph is connected — the
//! 1-interval-connectivity guarantee dissemination needs) plus a few
//! extra random edges for density.

use crate::error::SimError;
use crate::graph::GraphTopology;
use crate::port::PortId;
use crate::topology::Topology;

/// A per-round schedule over a static footprint.
///
/// Rounds beyond the schedule clamp to its last entry, so a finite
/// schedule describes an eventually-stable network.
///
/// ```
/// use anonring_sim::{DynamicTopology, GraphTopology, PortId, Topology};
///
/// let base = GraphTopology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// // Round 0 activates only edge {0,1}; round 1 only edge {1,2}.
/// let dyn_topo = DynamicTopology::new(
///     base,
///     vec![vec![true, false, false], vec![false, true, false]],
/// )
/// .unwrap();
/// assert!(dyn_topo.is_dynamic());
/// assert!(dyn_topo.is_active(0, 0, PortId::new(0)));
/// assert!(!dyn_topo.is_active(1, 0, PortId::new(0)));
/// // Rounds past the schedule repeat the final edge set.
/// assert!(dyn_topo.is_active(9, 1, PortId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicTopology {
    base: GraphTopology,
    /// `schedule[round][edge_id]`: whether the footprint edge carries
    /// messages in `round`.
    schedule: Vec<Vec<bool>>,
}

impl DynamicTopology {
    /// Pairs a footprint with a per-round, per-edge activity schedule.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptySchedule`] when no rounds are given;
    /// * [`SimError::LengthMismatch`] when a round's mask length differs
    ///   from the footprint's edge count.
    pub fn new(base: GraphTopology, schedule: Vec<Vec<bool>>) -> Result<DynamicTopology, SimError> {
        if schedule.is_empty() {
            return Err(SimError::EmptySchedule);
        }
        for round in &schedule {
            if round.len() != base.edge_count() {
                return Err(SimError::LengthMismatch {
                    expected: base.edge_count(),
                    actual: round.len(),
                });
            }
        }
        Ok(DynamicTopology { base, schedule })
    }

    /// The deterministic connectivity adversary over the complete
    /// footprint `K_n`: for each of `rounds` rounds, a random Hamiltonian
    /// path (keeping the round's graph connected) plus `⌊n/4⌋` extra
    /// random edges. Fully determined by `(n, rounds, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] when `n < 2` or
    /// [`SimError::EmptySchedule`] when `rounds == 0`.
    pub fn adversarial(n: usize, rounds: usize, seed: u64) -> Result<DynamicTopology, SimError> {
        let base = GraphTopology::complete(n)?;
        if rounds == 0 {
            return Err(SimError::EmptySchedule);
        }
        let mut rng = SplitMix64::new(seed);
        let mut schedule = Vec::with_capacity(rounds);
        let mut perm: Vec<usize> = (0..n).collect();
        for _ in 0..rounds {
            let mut active = vec![false; base.edge_count()];
            // Fisher–Yates: a fresh random path through all processors.
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            for pair in perm.windows(2) {
                active[complete_edge_id(n, pair[0], pair[1])] = true;
            }
            for _ in 0..n / 4 {
                let a = (rng.next_u64() % n as u64) as usize;
                let b = (rng.next_u64() % n as u64) as usize;
                if a != b {
                    active[complete_edge_id(n, a, b)] = true;
                }
            }
            schedule.push(active);
        }
        DynamicTopology::new(base, schedule)
    }

    /// The static footprint.
    #[must_use]
    pub fn footprint(&self) -> &GraphTopology {
        &self.base
    }

    /// Number of scheduled rounds (activity clamps to the last one
    /// afterwards).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.schedule.len()
    }

    /// Number of active edges in `round`.
    #[must_use]
    pub fn active_edges(&self, round: u64) -> usize {
        self.round_mask(round).iter().filter(|&&a| a).count()
    }

    /// Whether every scheduled round's active graph is connected over all
    /// `n` processors — the 1-interval-connectivity property.
    #[must_use]
    pub fn always_connected(&self) -> bool {
        (0..self.schedule.len()).all(|r| self.round_is_connected(r as u64))
    }

    /// Whether `round`'s active graph is connected.
    #[must_use]
    pub fn round_is_connected(&self, round: u64) -> bool {
        let n = self.base.n();
        let mask = self.round_mask(round);
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for p in 0..self.base.ports(i) {
                let port = PortId::new(p as u16);
                if !mask[self.base.edge_id(i, port)] {
                    continue;
                }
                let (j, _) = self.base.neighbor_port(i, port);
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Processor `i`'s *local* view of the schedule: for each round, the
    /// set of its ports that are active. This is per-edge knowledge of a
    /// processor's own links only — handing it to a process reveals
    /// neither identities nor global shape, so it is the legitimate way
    /// to compile a dynamic algorithm onto an asynchronous substrate.
    #[must_use]
    pub fn local_schedule(&self, i: usize) -> Vec<Vec<PortId>> {
        (0..self.schedule.len() as u64)
            .map(|round| {
                let mask = self.round_mask(round);
                (0..self.base.ports(i))
                    .map(|p| PortId::new(p as u16))
                    .filter(|&p| mask[self.base.edge_id(i, p)])
                    .collect()
            })
            .collect()
    }

    fn round_mask(&self, round: u64) -> &[bool] {
        let last = self.schedule.len() - 1;
        let idx = usize::try_from(round).map_or(last, |r| r.min(last));
        &self.schedule[idx]
    }
}

impl Topology for DynamicTopology {
    fn n(&self) -> usize {
        self.base.n()
    }

    fn ports(&self, i: usize) -> usize {
        self.base.ports(i)
    }

    fn neighbor_port(&self, i: usize, port: PortId) -> (usize, PortId) {
        self.base.neighbor_port(i, port)
    }

    fn is_active(&self, round: u64, i: usize, port: PortId) -> bool {
        self.round_mask(round)[self.base.edge_id(i, port)]
    }

    fn is_dynamic(&self) -> bool {
        true
    }
}

/// Edge id of `{a, b}` in [`GraphTopology::complete`]'s edge ordering
/// (`(i, j)` for `i < j`, lexicographic).
fn complete_edge_id(n: usize, a: usize, b: usize) -> usize {
    let (i, j) = if a < b { (a, b) } else { (b, a) };
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// SplitMix64 — tiny, high-quality, dependency-free; same generator the
/// random scheduler uses.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_edge_ids_enumerate_pairs() {
        let n = 5;
        let g = GraphTopology::complete(n).unwrap();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(complete_edge_id(n, i, j), k);
                assert_eq!(complete_edge_id(n, j, i), k);
                k += 1;
            }
        }
        assert_eq!(k, g.edge_count());
    }

    #[test]
    fn schedules_are_validated() {
        let base = GraphTopology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(matches!(
            DynamicTopology::new(base.clone(), vec![]),
            Err(SimError::EmptySchedule)
        ));
        assert!(matches!(
            DynamicTopology::new(base, vec![vec![true]]),
            Err(SimError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn activity_is_symmetric_across_each_wire() {
        let t = DynamicTopology::adversarial(8, 7, 42).unwrap();
        for round in 0..7u64 {
            for i in 0..t.n() {
                for p in 0..t.ports(i) {
                    let p = PortId::new(p as u16);
                    let (j, q) = t.neighbor_port(i, p);
                    assert_eq!(
                        t.is_active(round, i, p),
                        t.is_active(round, j, q),
                        "round {round}, wire {i}/{p}"
                    );
                }
            }
        }
    }

    #[test]
    fn adversary_keeps_every_round_connected() {
        for n in [2usize, 3, 5, 9, 16] {
            let t = DynamicTopology::adversarial(n, n - 1, 0xA5).unwrap();
            assert!(t.always_connected(), "n = {n}");
            for round in 0..(n as u64 - 1) {
                assert!(t.active_edges(round) >= n - 1, "n = {n}, round {round}");
            }
        }
    }

    #[test]
    fn adversary_is_deterministic_and_seed_sensitive() {
        let a = DynamicTopology::adversarial(6, 5, 1).unwrap();
        let b = DynamicTopology::adversarial(6, 5, 1).unwrap();
        let c = DynamicTopology::adversarial(6, 5, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.round_digest(0), b.round_digest(0));
        assert_ne!(
            a.round_digest(0),
            a.round_digest(1),
            "edge sets swap per round"
        );
        assert_ne!(a.round_digest(1), c.round_digest(1));
    }

    #[test]
    fn local_schedules_mirror_the_global_mask() {
        let t = DynamicTopology::adversarial(5, 4, 7).unwrap();
        for i in 0..t.n() {
            let local = t.local_schedule(i);
            assert_eq!(local.len(), 4);
            for (round, active) in local.iter().enumerate() {
                for p in 0..t.ports(i) {
                    let p = PortId::new(p as u16);
                    assert_eq!(
                        active.contains(&p),
                        t.is_active(round as u64, i, p),
                        "proc {i}, round {round}, port {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn rounds_clamp_to_the_last_entry() {
        let t = DynamicTopology::adversarial(4, 2, 9).unwrap();
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.active_edges(1), t.active_edges(100));
        assert_eq!(t.round_digest(1), t.round_digest(100));
        assert_eq!(t.footprint().edge_count(), 6);
    }
}
