//! Initial ring configurations `R = ⟨D(1), I(1), …, D(n), I(n)⟩`.

use crate::error::SimError;
use crate::port::Orientation;
use crate::topology::RingTopology;

/// An initial ring configuration (paper §2): per-processor inputs `I(i)`
/// together with the ring wiring (orientations `D(i)`).
///
/// `V` is the input alphabet — `u8` bits for Boolean problems, `u64` for
/// SUM or labelled rings, `()` for pure-orientation problems.
///
/// ```
/// use anonring_sim::RingConfig;
///
/// let r = RingConfig::oriented_bits("1101").unwrap();
/// assert_eq!(r.n(), 4);
/// assert_eq!(r.inputs(), &[1, 1, 0, 1]);
/// assert!(r.topology().is_oriented());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingConfig<V> {
    inputs: Vec<V>,
    topology: RingTopology,
}

impl<V> RingConfig<V> {
    /// Builds a configuration from inputs and explicit orientations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if the two vectors disagree in
    /// length, or [`SimError::RingTooSmall`] for rings of fewer than two
    /// processors.
    pub fn new(inputs: Vec<V>, orientations: Vec<Orientation>) -> Result<RingConfig<V>, SimError> {
        if inputs.len() != orientations.len() {
            return Err(SimError::LengthMismatch {
                expected: inputs.len(),
                actual: orientations.len(),
            });
        }
        Ok(RingConfig {
            inputs,
            topology: RingTopology::new(orientations)?,
        })
    }

    /// Builds a configuration from inputs and a prebuilt topology.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if the input vector does not
    /// match the topology size.
    pub fn with_topology(
        inputs: Vec<V>,
        topology: RingTopology,
    ) -> Result<RingConfig<V>, SimError> {
        if inputs.len() != topology.n() {
            return Err(SimError::LengthMismatch {
                expected: topology.n(),
                actual: inputs.len(),
            });
        }
        Ok(RingConfig { inputs, topology })
    }

    /// Builds a clockwise-oriented configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given (use [`RingConfig::new`]
    /// for a fallible constructor).
    #[must_use]
    pub fn oriented(inputs: Vec<V>) -> RingConfig<V> {
        let n = inputs.len();
        RingConfig::new(inputs, vec![Orientation::Clockwise; n])
            .expect("oriented ring construction")
    }

    /// Ring size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// The ring input `I`.
    #[must_use]
    pub fn inputs(&self) -> &[V] {
        &self.inputs
    }

    /// The input `I(i)` of processor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    #[must_use]
    pub fn input(&self, i: usize) -> &V {
        &self.inputs[i]
    }

    /// The ring wiring.
    #[must_use]
    pub fn topology(&self) -> &RingTopology {
        &self.topology
    }

    /// Decomposes the configuration into inputs and topology.
    #[must_use]
    pub fn into_parts(self) -> (Vec<V>, RingTopology) {
        (self.inputs, self.topology)
    }
}

impl<V: Clone> RingConfig<V> {
    /// The configuration rotated so that processor `k` becomes processor 0
    /// (a cyclic shift of both inputs and orientations).
    #[must_use]
    pub fn rotated(&self, k: usize) -> RingConfig<V> {
        let n = self.n();
        let k = k % n;
        let inputs = (0..n).map(|i| self.inputs[(i + k) % n].clone()).collect();
        let orientations = (0..n)
            .map(|i| self.topology.orientation((i + k) % n))
            .collect();
        RingConfig::new(inputs, orientations).expect("rotation preserves validity")
    }

    /// The mirror image of the configuration: processor order reversed and
    /// every orientation flipped. A mirrored ring is *physically
    /// indistinguishable* from the original (same channels, relabelled).
    #[must_use]
    pub fn mirrored(&self) -> RingConfig<V> {
        let n = self.n();
        let inputs = (0..n).map(|i| self.inputs[n - 1 - i].clone()).collect();
        let orientations = (0..n)
            .map(|i| self.topology.orientation(n - 1 - i).flipped())
            .collect();
        RingConfig::new(inputs, orientations).expect("mirror preserves validity")
    }
}

impl RingConfig<u8> {
    /// Builds a clockwise-oriented configuration from a `{0,1}` string,
    /// e.g. `"0110"`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] if the string has fewer than two
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `'0'` and `'1'`.
    pub fn oriented_bits(bits: &str) -> Result<RingConfig<u8>, SimError> {
        let inputs: Vec<u8> = bits
            .chars()
            .map(|c| match c {
                '0' => 0,
                '1' => 1,
                other => panic!("invalid bit character {other:?}"),
            })
            .collect();
        let n = inputs.len();
        RingConfig::new(inputs, vec![Orientation::Clockwise; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Orientation::{Clockwise as CW, Counterclockwise as CCW};

    #[test]
    fn length_mismatch_is_rejected() {
        let err = RingConfig::new(vec![1u8, 0], vec![CW]).unwrap_err();
        assert!(matches!(err, SimError::LengthMismatch { .. }));
    }

    #[test]
    fn rotation_cycles_inputs_and_orientations() {
        let r = RingConfig::new(vec![0u8, 1, 2, 3], vec![CW, CCW, CW, CW]).unwrap();
        let s = r.rotated(1);
        assert_eq!(s.inputs(), &[1, 2, 3, 0]);
        assert_eq!(s.topology().orientation(0), CCW);
        // Rotating n times is the identity.
        assert_eq!(r.rotated(4), r);
    }

    #[test]
    fn mirror_is_involution() {
        let r = RingConfig::new(vec![0u8, 1, 2], vec![CW, CCW, CW]).unwrap();
        assert_eq!(r.mirrored().mirrored(), r);
        // Mirroring flips every orientation.
        assert_eq!(r.mirrored().topology().orientation(0), CCW);
    }

    #[test]
    fn bit_string_constructor() {
        let r = RingConfig::oriented_bits("10").unwrap();
        assert_eq!(r.inputs(), &[1, 0]);
        assert!(RingConfig::oriented_bits("1").is_err());
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn bit_string_rejects_garbage() {
        let _ = RingConfig::oriented_bits("10x");
    }
}
