//! Exhaustive schedule exploration: a DPOR-lite certifier for §5.
//!
//! The paper's asynchronous results quantify over *every* legal schedule:
//! an algorithm is correct only if its outputs — and, for the cost
//! theorems, its metered message counts — do not depend on the adversary's
//! delivery choices. The stock test suite runs a handful of adversaries
//! ([`crate::r#async::SynchronizingScheduler`] and friends); this module
//! instead enumerates **all inequivalent delivery interleavings** for
//! small rings and certifies schedule independence, or produces a
//! counterexample pair of witness traces.
//!
//! # The equivalence relation
//!
//! A schedule is a sequence of *moves*; a move `(to, port)` delivers the
//! head of one directed link queue (per-link FIFO is structural, so the
//! head is the only deliverable message of a link). Two moves are
//! **independent** iff they deliver to different processors:
//!
//! * they pop distinct queues (each directed link has one receiver),
//! * their reactions mutate distinct processor states and halt flags,
//! * their sends append to distinct queues (a processor sends only on its
//!   own outgoing links),
//! * and the cost meter's totals are order-insensitive.
//!
//! Swapping adjacent independent moves therefore yields an execution that
//! is indistinguishable to every processor (a Mazurkiewicz trace
//! equivalence). The explorer does a depth-first search over schedules
//! with **sleep sets** over this relation, visiting at least one
//! representative of every equivalence class — so a property certified
//! over the reduced set holds over all interleavings. Setting
//! [`Explorer::reduction`]`(false)` disables the pruning and enumerates
//! every interleaving, which is what the interleaving-count tests pin.
//!
//! # Certification
//!
//! Every complete execution is reduced to a [`Fingerprint`]: the output
//! vector, total messages and bits, and a digest of the wiring the run
//! actually executed over (for dynamic topologies, the per-round active
//! edge sets — two runs with the same outputs over different wiring are
//! distinct observations). Delivery counts, drops and epoch histograms
//! legitimately vary across schedules; the paper's claims are about
//! outputs and message costs. The first execution is canonical;
//! any later execution with a different fingerprint is a **schedule
//! race**, reported with both schedules replayed under a
//! [`FlightRecorder`] so the divergence ships as two witness JSONL
//! recordings.
//!
//! ```
//! use anonring_sim::explore::Explorer;
//! use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, Emit};
//! use anonring_sim::{Port, RingTopology};
//!
//! /// Forward one token and halt: schedule independent by design.
//! #[derive(Debug)]
//! struct Relay;
//! impl AsyncProcess for Relay {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn on_start(&mut self) -> Actions<u64, u64> {
//!         Actions::send(Port::Right, 1)
//!     }
//!     fn on_message(&mut self, _from: Port, hops: u64) -> Actions<u64, u64> {
//!         Actions::send(Port::Right, hops + 1).and_halt(hops)
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cert = Explorer::new().explore(|| {
//!     let topology = RingTopology::oriented(3).unwrap();
//!     AsyncEngine::new(topology, vec![Relay, Relay, Relay]).unwrap()
//! })?;
//! assert_eq!(cert.fingerprint.outputs, vec![1, 1, 1]);
//! assert!(cert.executions >= 1);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::error::SimError;
use crate::port::PortId;
use crate::r#async::{AsyncEngine, AsyncPortProcess, Candidate, Scheduler};
use crate::telemetry::FlightRecorder;
use crate::topology::Topology;

/// One scheduling move: deliver the head of the directed link into
/// processor `to` via its local `port`.
pub type Move = (usize, PortId);

fn move_of(c: &Candidate) -> Move {
    (c.to, c.port)
}

/// Two moves commute iff they deliver to different processors (see the
/// module docs for why this is sound for this runtime).
fn independent(a: Move, b: Move) -> bool {
    a.0 != b.0
}

/// The schedule-independent observables the paper's theorems speak about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint<O> {
    /// The ring output vector.
    pub outputs: Vec<O>,
    /// Total messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Digest of the wiring the execution ran over: the static topology
    /// digest, folded (for dynamic topologies) with the active edge set of
    /// every executed round. Two runs with identical outputs but different
    /// wiring are *different* observations, not the same equivalence
    /// class.
    pub wiring: u64,
}

/// A successful certification: every explored interleaving produced the
/// same [`Fingerprint`].
#[derive(Debug, Clone)]
pub struct Certificate<O> {
    /// Complete executions examined (one per equivalence class under
    /// reduction; every interleaving without).
    pub executions: u64,
    /// Executions pruned by sleep sets before completing.
    pub sleep_blocked: u64,
    /// The common fingerprint.
    pub fingerprint: Fingerprint<O>,
}

/// Proof that the algorithm is schedule dependent: two schedules with
/// different fingerprints, each replayed into a witness recording.
#[derive(Debug, Clone)]
pub struct ScheduleRace<O> {
    /// Fingerprint of the first (canonical) execution.
    pub canonical: Fingerprint<O>,
    /// Fingerprint of the diverging execution.
    pub divergent: Fingerprint<O>,
    /// The canonical schedule, as delivery moves.
    pub canonical_schedule: Vec<Move>,
    /// The diverging schedule.
    pub divergent_schedule: Vec<Move>,
    /// FlightRecorder JSONL of the canonical execution.
    pub canonical_witness: String,
    /// FlightRecorder JSONL of the diverging execution.
    pub divergent_witness: String,
}

/// Why exploration stopped without a certificate.
#[derive(Debug, Clone)]
pub enum ExploreError<O> {
    /// Two schedules disagree on outputs or message counts.
    Race(Box<ScheduleRace<O>>),
    /// The engine itself failed (deadlock, livelock, bad config) under
    /// the recorded schedule.
    Engine {
        /// The underlying engine error.
        error: SimError,
        /// The schedule that triggered it.
        schedule: Vec<Move>,
    },
    /// The execution budget ran out before the search completed.
    Budget {
        /// Executions performed when the budget tripped.
        executions: u64,
    },
}

impl<O: fmt::Debug> fmt::Display for ExploreError<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Race(race) => write!(
                f,
                "schedule race: canonical {:?} vs divergent {:?} (schedules of {} and {} moves)",
                race.canonical,
                race.divergent,
                race.canonical_schedule.len(),
                race.divergent_schedule.len()
            ),
            ExploreError::Engine { error, schedule } => {
                write!(f, "engine error after {} moves: {error}", schedule.len())
            }
            ExploreError::Budget { executions } => {
                write!(
                    f,
                    "execution budget exhausted after {executions} executions"
                )
            }
        }
    }
}

impl<O: fmt::Debug> std::error::Error for ExploreError<O> {}

/// One frontier node of the schedule DFS.
struct Node {
    /// Enabled moves at this node, in the engine's deterministic
    /// candidate order.
    enabled: Vec<Move>,
    /// Index into `enabled` of the branch currently being explored.
    chosen: usize,
    /// Sleep set: moves whose subtrees are covered elsewhere. Grows with
    /// each completed sibling branch.
    sleep: BTreeSet<Move>,
}

/// The DFS driver, doubling as the engine's [`Scheduler`] during replay.
struct Dfs {
    path: Vec<Node>,
    /// Delivery events seen so far in the current execution.
    depth: usize,
    /// Set when the frontier's every enabled move is asleep: the rest of
    /// the execution is driven arbitrarily and the result discarded.
    blocked: bool,
    /// `false` disables sleep sets (full enumeration).
    reduce: bool,
}

impl Scheduler for Dfs {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        if self.blocked {
            return 0;
        }
        let d = self.depth;
        self.depth += 1;
        if let Some(node) = self.path.get(d) {
            let want = node.enabled[node.chosen];
            return candidates
                .iter()
                .position(|c| move_of(c) == want)
                .expect("deterministic engine: a replayed prefix re-enables the same moves");
        }
        // Frontier: a new node. Its initial sleep set keeps the parent's
        // slept moves that commute with the move that led here.
        let enabled: Vec<Move> = candidates.iter().map(move_of).collect();
        let sleep: BTreeSet<Move> = match self.path.last() {
            Some(parent) if self.reduce => {
                let taken = parent.enabled[parent.chosen];
                parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&m| independent(m, taken))
                    .collect()
            }
            _ => BTreeSet::new(),
        };
        match (0..enabled.len()).find(|&i| !sleep.contains(&enabled[i])) {
            Some(chosen) => {
                self.path.push(Node {
                    enabled,
                    chosen,
                    sleep,
                });
                self.path[d].chosen
            }
            None => {
                // Every continuation is covered elsewhere: prune.
                self.blocked = true;
                0
            }
        }
    }
}

impl Dfs {
    fn schedule(&self) -> Vec<Move> {
        self.path.iter().map(|n| n.enabled[n.chosen]).collect()
    }

    /// Advances to the next unexplored branch; `false` when the whole
    /// tree is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(top) = self.path.last_mut() {
            let taken = top.enabled[top.chosen];
            if self.reduce {
                top.sleep.insert(taken);
            }
            let next = (top.chosen + 1..top.enabled.len())
                .find(|&i| self.reduce && !top.sleep.contains(&top.enabled[i]))
                .or_else(|| {
                    if self.reduce {
                        None
                    } else {
                        (top.chosen + 1 < top.enabled.len()).then_some(top.chosen + 1)
                    }
                });
            if let Some(next) = next {
                top.chosen = next;
                return true;
            }
            self.path.pop();
        }
        false
    }
}

/// Replays a fixed schedule (used to regenerate witness recordings).
struct Replay<'a> {
    schedule: &'a [Move],
    depth: usize,
}

impl Scheduler for Replay<'_> {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        let want = self.schedule[self.depth];
        self.depth += 1;
        candidates
            .iter()
            .position(|c| move_of(c) == want)
            .expect("deterministic engine: a recorded schedule replays verbatim")
    }
}

/// Default execution budget: far above any small-`n` algorithm's reduced
/// search space, low enough to fail fast on accidental blowup.
pub const DEFAULT_MAX_EXECUTIONS: u64 = 250_000;

/// Configuration for an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Explorer {
    max_executions: u64,
    reduce: bool,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with sleep-set reduction on and the default budget.
    #[must_use]
    pub fn new() -> Explorer {
        Explorer {
            max_executions: DEFAULT_MAX_EXECUTIONS,
            reduce: true,
        }
    }

    /// Caps the number of executions before giving up with
    /// [`ExploreError::Budget`].
    #[must_use]
    pub fn max_executions(mut self, max_executions: u64) -> Explorer {
        self.max_executions = max_executions;
        self
    }

    /// Toggles sleep-set reduction. With `false`, every interleaving is
    /// executed — exponentially more work, but [`Certificate::executions`]
    /// becomes the exact interleaving count.
    #[must_use]
    pub fn reduction(mut self, reduce: bool) -> Explorer {
        self.reduce = reduce;
        self
    }

    /// Explores every inequivalent schedule of the engine produced by
    /// `make`, certifying fingerprint equality.
    ///
    /// `make` is called once per execution and must build the same
    /// initial state every time (same topology, same inputs, same
    /// processes) — exploration is meaningless otherwise.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Race`] on a schedule race (with witnesses),
    /// [`ExploreError::Engine`] if a schedule deadlocks or exhausts the
    /// engine's own budgets, [`ExploreError::Budget`] if the search space
    /// exceeds the execution cap.
    pub fn explore<P: AsyncPortProcess, T: Topology, F>(
        &self,
        mut make: F,
    ) -> Result<Certificate<P::Output>, ExploreError<P::Output>>
    where
        F: FnMut() -> AsyncEngine<P, T>,
    {
        let mut dfs = Dfs {
            path: Vec::new(),
            depth: 0,
            blocked: false,
            reduce: self.reduce,
        };
        let mut executions = 0u64;
        let mut sleep_blocked = 0u64;
        let mut canonical: Option<(Fingerprint<P::Output>, Vec<Move>)> = None;

        loop {
            if executions + sleep_blocked >= self.max_executions {
                return Err(ExploreError::Budget { executions });
            }
            dfs.depth = 0;
            dfs.blocked = false;
            let mut engine = make();
            let report = engine.run(&mut dfs);
            if dfs.blocked {
                sleep_blocked += 1;
            } else {
                let report = report.map_err(|error| ExploreError::Engine {
                    error,
                    schedule: dfs.schedule(),
                })?;
                executions += 1;
                let fp = Fingerprint {
                    messages: report.messages,
                    bits: report.bits,
                    wiring: wiring_digest_of(engine.topology(), report.max_epoch),
                    outputs: report.into_outputs(),
                };
                match &canonical {
                    None => canonical = Some((fp, dfs.schedule())),
                    Some((want, canonical_schedule)) if *want != fp => {
                        let divergent_schedule = dfs.schedule();
                        return Err(ExploreError::Race(Box::new(ScheduleRace {
                            canonical: want.clone(),
                            divergent: fp,
                            canonical_witness: witness(&mut make, canonical_schedule),
                            divergent_witness: witness(&mut make, &divergent_schedule),
                            canonical_schedule: canonical_schedule.clone(),
                            divergent_schedule,
                        })));
                    }
                    Some(_) => {}
                }
            }
            if !dfs.backtrack() {
                break;
            }
        }

        let (fingerprint, _) = canonical.expect("at least the first execution completes");
        Ok(Certificate {
            executions,
            sleep_blocked,
            fingerprint,
        })
    }
}

/// The wiring observable of one execution: the topology digest, folded
/// with each executed round's active edge set when the topology is
/// dynamic (see [`Fingerprint::wiring`]).
fn wiring_digest_of(topology: &impl Topology, max_epoch: u64) -> u64 {
    let mut digest = topology.wiring_digest();
    if topology.is_dynamic() {
        for round in 0..=max_epoch {
            digest = crate::topology::fnv_fold(digest, topology.round_digest(round));
        }
    }
    digest
}

/// Re-runs `schedule` with a [`FlightRecorder`] attached and returns the
/// witness JSONL.
fn witness<P: AsyncPortProcess, T: Topology, F>(make: &mut F, schedule: &[Move]) -> String
where
    F: FnMut() -> AsyncEngine<P, T>,
{
    let mut engine = make();
    let mut recorder = FlightRecorder::new(engine.n(), "explore-witness");
    let mut replay = Replay { schedule, depth: 0 };
    // The schedule already ran once; ignore the (identical) outcome and
    // keep whatever the recorder captured even on error paths.
    let _ = engine.run_with_observer(&mut replay, &mut recorder);
    recorder.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Port;
    use crate::r#async::{Actions, AsyncProcess, Emit};
    use crate::topology::RingTopology;

    /// Deterministic under any schedule: forward one token, halt.
    #[derive(Debug, Clone)]
    struct Relay;
    impl AsyncProcess for Relay {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self) -> Actions<u64, u64> {
            Actions::send(Port::Right, 1)
        }
        fn on_message(&mut self, _from: Port, hops: u64) -> Actions<u64, u64> {
            Actions::send(Port::Right, hops + 1).and_halt(hops)
        }
    }

    fn relay_engine(n: usize) -> AsyncEngine<Relay> {
        let topology = RingTopology::oriented(n).expect("n >= 2");
        AsyncEngine::new(topology, (0..n).map(|_| Relay).collect()).expect("lengths match")
    }

    #[test]
    fn certifies_a_schedule_independent_algorithm() {
        let cert = Explorer::new()
            .explore(|| relay_engine(3))
            .expect("relay is schedule independent");
        assert_eq!(cert.fingerprint.outputs, vec![1, 1, 1]);
        assert_eq!(cert.fingerprint.messages, 6);
        assert!(cert.executions >= 1);
    }

    #[test]
    fn reduction_explores_no_more_than_full_enumeration() {
        let full = Explorer::new()
            .reduction(false)
            .explore(|| relay_engine(3))
            .expect("relay certifies");
        let reduced = Explorer::new()
            .explore(|| relay_engine(3))
            .expect("relay certifies");
        assert!(
            reduced.executions <= full.executions,
            "reduced {} > full {}",
            reduced.executions,
            full.executions
        );
        assert_eq!(reduced.fingerprint, full.fingerprint);
    }

    /// Outputs depend on which neighbor's token lands first: a seeded
    /// schedule race the explorer must detect.
    #[derive(Debug, Clone)]
    struct FirstPortWins;
    impl AsyncProcess for FirstPortWins {
        type Msg = u8;
        type Output = u8;
        fn on_start(&mut self) -> Actions<u8, u8> {
            Actions::send_both(0, 1)
        }
        fn on_message(&mut self, from: Port, _msg: u8) -> Actions<u8, u8> {
            Actions::halt(u8::from(from == Port::Right))
        }
    }

    #[test]
    fn detects_a_seeded_schedule_race_with_witnesses() {
        let result = Explorer::new().explore(|| {
            let topology = RingTopology::oriented(3).expect("n >= 2");
            AsyncEngine::new(topology, vec![FirstPortWins; 3]).expect("lengths match")
        });
        let Err(ExploreError::Race(race)) = result else {
            panic!("expected a schedule race, got {result:?}");
        };
        assert_ne!(race.canonical.outputs, race.divergent.outputs);
        assert_eq!(race.canonical.messages, race.divergent.messages);
        // Both witnesses must round-trip through the recording parser so
        // `tracer` can replay them.
        for witness in [&race.canonical_witness, &race.divergent_witness] {
            let rec =
                crate::telemetry::Recording::parse_jsonl(witness).expect("witness JSONL parses");
            assert_eq!(rec.messages(), race.canonical.messages);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Relay at n=5 has far more than 2 interleavings.
        let result = Explorer::new()
            .reduction(false)
            .max_executions(2)
            .explore(|| relay_engine(5));
        assert!(matches!(result, Err(ExploreError::Budget { .. })));
    }

    #[test]
    fn engine_errors_surface_with_the_schedule() {
        #[derive(Debug, Clone)]
        struct Mute;
        impl AsyncProcess for Mute {
            type Msg = u8;
            type Output = u8;
            fn on_start(&mut self) -> Actions<u8, u8> {
                Actions::idle()
            }
            fn on_message(&mut self, _from: Port, _msg: u8) -> Actions<u8, u8> {
                Actions::idle()
            }
        }
        let result = Explorer::new().explore(|| {
            let topology = RingTopology::oriented(2).expect("n >= 2");
            AsyncEngine::new(topology, vec![Mute, Mute]).expect("lengths match")
        });
        assert!(matches!(
            result,
            Err(ExploreError::Engine {
                error: SimError::QuiescentWithoutHalt { .. },
                ..
            })
        ));
    }
}
