//! The [`Message`] trait: anything the engines can send on a channel.

/// A value that can travel over a ring channel.
///
/// The paper analyses two cost measures (§2): the total number of *messages*
/// and the total number of *bits* sent, for some binary encoding of the
/// messages. [`Message::bit_len`] supplies that encoding length so that both
/// measures are tracked by the engines.
///
/// A "zero content" message (paper §4.2.1, time-encoding) is perfectly
/// legal: it has `bit_len() == 0` but still counts as one message.
pub trait Message: Clone + std::fmt::Debug {
    /// Number of bits in a binary encoding of this message.
    fn bit_len(&self) -> usize;
}

impl Message for () {
    fn bit_len(&self) -> usize {
        0
    }
}

impl Message for bool {
    fn bit_len(&self) -> usize {
        1
    }
}

macro_rules! impl_message_for_int {
    ($($t:ty),*) => {$(
        impl Message for $t {
            fn bit_len(&self) -> usize {
                <$t>::BITS as usize
            }
        }
    )*};
}

impl_message_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<M: Message> Message for Vec<M> {
    fn bit_len(&self) -> usize {
        self.iter().map(Message::bit_len).sum()
    }
}

impl<M: Message> Message for Option<M> {
    fn bit_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Message::bit_len)
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn bit_len(&self) -> usize {
        self.0.bit_len() + self.1.bit_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_content_messages_have_no_bits() {
        assert_eq!(().bit_len(), 0);
    }

    #[test]
    fn integer_bit_lengths() {
        assert_eq!(0u8.bit_len(), 8);
        assert_eq!(0u64.bit_len(), 64);
        assert_eq!(true.bit_len(), 1);
    }

    #[test]
    fn composite_bit_lengths() {
        assert_eq!(vec![true, false, true].bit_len(), 3);
        assert_eq!(Some(7u8).bit_len(), 9);
        assert_eq!(None::<u8>.bit_len(), 1);
        assert_eq!((true, 1u8).bit_len(), 9);
    }
}
