//! The synchronous (lock-step) execution engine (paper §2).
//!
//! All processors share a global clock. In each cycle a processor may send
//! one message to each neighbour; messages sent in cycle `t` are available
//! to the receiver in cycle `t + 1`, so information travels exactly one hop
//! per cycle — the property Lemma 3.1 (and every lower bound in the paper)
//! depends on. The engine enforces this by double-buffering inboxes.
//!
//! Processors may have individual *wake-up* cycles (paper §4.2.3): a
//! processor is idle until its spontaneous wake-up time or until a message
//! arrives, whichever comes first, and its `local_cycle` counts from that
//! moment.

use std::fmt;

use crate::config::RingConfig;
use crate::error::SimError;
use crate::message::Message;
use crate::port::Port;
use crate::topology::RingTopology;

/// The messages a processor received at the start of a cycle (sent by its
/// neighbours in the previous cycle). At most one message per port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<M> {
    /// Message that arrived on the local left port, if any.
    pub from_left: Option<M>,
    /// Message that arrived on the local right port, if any.
    pub from_right: Option<M>,
}

impl<M> Received<M> {
    /// A reception with no messages.
    #[must_use]
    pub fn empty() -> Received<M> {
        Received {
            from_left: None,
            from_right: None,
        }
    }

    /// Whether no message arrived this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.from_left.is_none() && self.from_right.is_none()
    }

    /// Iterates over the (port, message) pairs that arrived.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &M)> {
        self.from_left
            .iter()
            .map(|m| (Port::Left, m))
            .chain(self.from_right.iter().map(|m| (Port::Right, m)))
    }

    /// The message that arrived on `port`, if any.
    #[must_use]
    pub fn on(&self, port: Port) -> Option<&M> {
        match port {
            Port::Left => self.from_left.as_ref(),
            Port::Right => self.from_right.as_ref(),
        }
    }
}

impl<M> Default for Received<M> {
    fn default() -> Self {
        Received::empty()
    }
}

/// What a processor does in one cycle: at most one message per port, and
/// possibly halting with an output. Messages emitted in the halting step
/// are still delivered (the paper's AND algorithm "forwards it and halts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step<M, O> {
    /// Message to send on the local left port.
    pub to_left: Option<M>,
    /// Message to send on the local right port.
    pub to_right: Option<M>,
    /// `Some(output)` to halt at the end of this cycle.
    pub halt: Option<O>,
}

impl<M, O> Step<M, O> {
    /// Do nothing this cycle.
    #[must_use]
    pub fn idle() -> Step<M, O> {
        Step {
            to_left: None,
            to_right: None,
            halt: None,
        }
    }

    /// Send `m` on the left port only.
    #[must_use]
    pub fn send_left(m: M) -> Step<M, O> {
        Step {
            to_left: Some(m),
            to_right: None,
            halt: None,
        }
    }

    /// Send `m` on the right port only.
    #[must_use]
    pub fn send_right(m: M) -> Step<M, O> {
        Step {
            to_left: None,
            to_right: Some(m),
            halt: None,
        }
    }

    /// Send on both ports.
    #[must_use]
    pub fn send_both(left: M, right: M) -> Step<M, O> {
        Step {
            to_left: Some(left),
            to_right: Some(right),
            halt: None,
        }
    }

    /// Send `m` on `port`.
    #[must_use]
    pub fn send(port: Port, m: M) -> Step<M, O> {
        match port {
            Port::Left => Step::send_left(m),
            Port::Right => Step::send_right(m),
        }
    }

    /// Halt immediately with `output`, sending nothing.
    #[must_use]
    pub fn halt(output: O) -> Step<M, O> {
        Step {
            to_left: None,
            to_right: None,
            halt: Some(output),
        }
    }

    /// Adds a halt to this step (messages are still sent).
    #[must_use]
    pub fn and_halt(mut self, output: O) -> Step<M, O> {
        self.halt = Some(output);
        self
    }
}

/// A processor of a synchronous ring algorithm.
///
/// The engine calls [`SyncProcess::step`] once per cycle from the
/// processor's wake-up on. `local_cycle` is `0` on the first call and the
/// `rx` of call `t` contains exactly the messages the neighbours emitted in
/// the previous cycle.
pub trait SyncProcess {
    /// Message type sent on the channels.
    type Msg: Message;
    /// Output state when the processor halts.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Executes one cycle.
    fn step(&mut self, local_cycle: u64, rx: Received<Self::Msg>) -> Step<Self::Msg, Self::Output>;
}

/// Outcome of a completed synchronous run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncReport<O> {
    /// Total messages sent (the paper's message complexity).
    pub messages: u64,
    /// Total bits sent (the paper's bit complexity).
    pub bits: u64,
    /// Global cycles elapsed until the last processor halted.
    pub cycles: u64,
    /// Messages delivered to already-halted processors (and discarded).
    pub dropped: u64,
    /// Messages sent in each global cycle (index = cycle).
    pub per_cycle_messages: Vec<u64>,
    /// Global cycle at which each processor halted.
    pub halt_cycles: Vec<u64>,
    outputs: Vec<O>,
}

impl<O> SyncReport<O> {
    /// The ring output `O(1), …, O(n)`.
    #[must_use]
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the report, returning the ring output.
    #[must_use]
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }

    /// Whether all processors halted in the same global cycle — the start
    /// synchronization success criterion (paper §4.2.3).
    #[must_use]
    pub fn halted_simultaneously(&self) -> bool {
        self.halt_cycles.iter().all(|&c| c == self.halt_cycles[0])
    }
}

/// One cycle's collected emissions: (sender, step) pairs.
type Emissions<M, O> = Vec<(usize, Step<M, O>)>;

/// Driver for a synchronous ring computation.
#[derive(Debug, Clone)]
pub struct SyncEngine<P: SyncProcess> {
    topology: RingTopology,
    procs: Vec<P>,
    wake_at: Vec<u64>,
    max_cycles: u64,
}

/// Default cycle budget: generous enough for every algorithm in this
/// repository at the ring sizes the experiments use, small enough to catch
/// deadlocks quickly.
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

impl<P: SyncProcess> SyncEngine<P> {
    /// Builds an engine over `topology` with one process per processor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if `procs.len() != n`.
    pub fn new(topology: RingTopology, procs: Vec<P>) -> Result<SyncEngine<P>, SimError> {
        if procs.len() != topology.n() {
            return Err(SimError::LengthMismatch {
                expected: topology.n(),
                actual: procs.len(),
            });
        }
        let n = topology.n();
        Ok(SyncEngine {
            topology,
            procs,
            wake_at: vec![0; n],
            max_cycles: DEFAULT_MAX_CYCLES,
        })
    }

    /// Builds an engine from a ring configuration, constructing each
    /// process from its index and input.
    ///
    /// # Panics
    ///
    /// Panics only if the configuration is internally inconsistent, which
    /// [`RingConfig`] constructors prevent.
    pub fn from_config<V>(config: &RingConfig<V>, mut make: impl FnMut(usize, &V) -> P) -> SyncEngine<P> {
        let procs = config
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, v)| make(i, v))
            .collect();
        SyncEngine::new(config.topology().clone(), procs).expect("config is self-consistent")
    }

    /// Sets per-processor spontaneous wake-up cycles (default: all zero,
    /// i.e. simultaneous start). A message arriving earlier wakes the
    /// processor at its arrival cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if the vector length is not `n`.
    pub fn set_wakeups(&mut self, wake_at: Vec<u64>) -> Result<&mut Self, SimError> {
        if wake_at.len() != self.topology.n() {
            return Err(SimError::LengthMismatch {
                expected: self.topology.n(),
                actual: wake_at.len(),
            });
        }
        self.wake_at = wake_at;
        Ok(self)
    }

    /// Sets the cycle budget after which the run aborts with
    /// [`SimError::MaxCyclesExceeded`].
    pub fn set_max_cycles(&mut self, max_cycles: u64) -> &mut Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Runs the computation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run(&mut self) -> Result<SyncReport<P::Output>, SimError> {
        self.run_inner(|_, _| {}, |_| {})
    }

    /// Runs the computation, invoking `observe(cycle, procs)` after every
    /// cycle's state transitions — used by indistinguishability tests that
    /// compare processor states (Lemma 3.1/6.1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run_observed(
        &mut self,
        observe: impl FnMut(u64, &[P]),
    ) -> Result<SyncReport<P::Output>, SimError> {
        self.run_inner(observe, |_| {})
    }

    /// Runs the computation while recording every message send into a
    /// [`crate::trace::Trace`] for space-time rendering.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run_traced(
        &mut self,
    ) -> Result<(SyncReport<P::Output>, crate::trace::Trace), SimError> {
        let mut trace = crate::trace::Trace::new(self.topology.n());
        let report = self.run_inner(|_, _| {}, |ev| trace.record(ev))?;
        Ok((report, trace))
    }

    fn run_inner(
        &mut self,
        mut observe: impl FnMut(u64, &[P]),
        mut on_send: impl FnMut(crate::trace::SendEvent),
    ) -> Result<SyncReport<P::Output>, SimError> {
        let n = self.topology.n();
        let mut halted: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut halt_cycles = vec![0u64; n];
        let mut awake = vec![false; n];
        let mut local_cycle = vec![0u64; n];
        let mut inbox: Vec<Received<P::Msg>> = (0..n).map(|_| Received::empty()).collect();
        let mut messages = 0u64;
        let mut bits = 0u64;
        let mut dropped = 0u64;
        let mut per_cycle = Vec::new();

        for cycle in 0..self.max_cycles {
            // Wake-ups: spontaneous or message-triggered.
            for i in 0..n {
                if !awake[i] && (cycle >= self.wake_at[i] || !inbox[i].is_empty()) {
                    awake[i] = true;
                }
            }

            // Step every awake, running processor on last cycle's inbox.
            let mut outgoing: Emissions<P::Msg, P::Output> = Vec::new();
            for i in 0..n {
                if !awake[i] || halted[i].is_some() {
                    if halted[i].is_some() && !inbox[i].is_empty() {
                        dropped += u64::from(inbox[i].from_left.is_some())
                            + u64::from(inbox[i].from_right.is_some());
                    }
                    inbox[i] = Received::empty();
                    continue;
                }
                let rx = std::mem::take(&mut inbox[i]);
                let step = self.procs[i].step(local_cycle[i], rx);
                local_cycle[i] += 1;
                outgoing.push((i, step));
            }

            // Deliver into the next cycle's inboxes and account costs.
            let mut sent_this_cycle = 0u64;
            for (i, step) in outgoing {
                for (port, msg) in [(Port::Left, step.to_left), (Port::Right, step.to_right)] {
                    if let Some(msg) = msg {
                        sent_this_cycle += 1;
                        bits += msg.bit_len() as u64;
                        let (j, arrival) = self.topology.neighbor(i, port);
                        on_send(crate::trace::SendEvent {
                            cycle,
                            from: i,
                            to: j,
                            bits: msg.bit_len(),
                        });
                        let slot = match arrival {
                            Port::Left => &mut inbox[j].from_left,
                            Port::Right => &mut inbox[j].from_right,
                        };
                        debug_assert!(slot.is_none(), "one message per port per cycle");
                        *slot = Some(msg);
                    }
                }
                if let Some(output) = step.halt {
                    halted[i] = Some(output);
                    halt_cycles[i] = cycle;
                }
            }
            messages += sent_this_cycle;
            per_cycle.push(sent_this_cycle);
            observe(cycle, &self.procs);

            if halted.iter().all(Option::is_some) {
                // Anything still in flight at halt time is dropped.
                dropped += inbox
                    .iter()
                    .map(|r| u64::from(r.from_left.is_some()) + u64::from(r.from_right.is_some()))
                    .sum::<u64>();
                return Ok(SyncReport {
                    messages,
                    bits,
                    cycles: cycle + 1,
                    dropped,
                    per_cycle_messages: per_cycle,
                    halt_cycles,
                    outputs: halted.into_iter().map(Option::unwrap).collect(),
                });
            }
        }

        Err(SimError::MaxCyclesExceeded {
            max_cycles: self.max_cycles,
            running: halted.iter().filter(|h| h.is_none()).count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use crate::port::Orientation;

    /// Forwards a token right for `ttl` hops, then halts everyone via a
    /// final broadcast-free timeout.
    #[derive(Debug, Clone)]
    struct Relay {
        is_source: bool,
        n: u64,
    }

    impl SyncProcess for Relay {
        type Msg = u64;
        type Output = u64;
        fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
            // Source emits 0 at cycle 0; everyone forwards hop+1 to the
            // right; all halt at cycle n with the largest hop count seen.
            if cycle == self.n {
                return Step::halt(u64::from(self.is_source));
            }
            if self.is_source && cycle == 0 {
                return Step::send_right(1);
            }
            if let Some(h) = rx.from_left {
                if h < self.n {
                    return Step::send_right(h + 1);
                }
            }
            Step::idle()
        }
    }

    #[test]
    fn token_travels_one_hop_per_cycle() {
        let n = 6u64;
        let config = RingConfig::oriented(vec![(); 6]);
        let mut engine = SyncEngine::from_config(&config, |i, ()| Relay {
            is_source: i == 0,
            n,
        });
        let report = engine.run().unwrap();
        // Token forwarded n-1 times plus initial send = n messages... the
        // token with hop count n is not re-sent, so exactly n sends
        // happen: hops 1..=n-1 forwarded, plus the initial. Wait: source
        // sends hop 1; receivers forward h+1 while h < n. Receiver of
        // hop n-1 sends hop n; receiver of hop n does not forward.
        assert_eq!(report.messages, n);
        assert_eq!(report.cycles, n + 1);
        // Exactly one message per cycle for the first n cycles.
        assert_eq!(&report.per_cycle_messages[..n as usize], vec![1; 6].as_slice());
    }

    #[derive(Debug)]
    struct HaltAt(u64);
    impl SyncProcess for HaltAt {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, cycle: u64, _rx: Received<()>) -> Step<(), u64> {
            if cycle == self.0 {
                Step::halt(cycle)
            } else {
                Step::idle()
            }
        }
    }

    #[test]
    fn wakeups_shift_local_clocks() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(topo, vec![HaltAt(2), HaltAt(2), HaltAt(2)]).unwrap();
        engine.set_wakeups(vec![0, 3, 5]).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.halt_cycles, vec![2, 5, 7]);
        assert!(!report.halted_simultaneously());
        assert_eq!(report.outputs(), &[2, 2, 2]);
    }

    #[derive(Debug)]
    struct WakeProbe {
        woken_by_msg: bool,
    }
    impl SyncProcess for WakeProbe {
        type Msg = ();
        type Output = bool;
        fn step(&mut self, cycle: u64, rx: Received<()>) -> Step<(), bool> {
            if cycle == 0 {
                self.woken_by_msg = !rx.is_empty();
                // First processor pings its right neighbour.
                if !self.woken_by_msg {
                    return Step::send_right(());
                }
            }
            if cycle >= 1 {
                return Step::halt(self.woken_by_msg);
            }
            Step::idle()
        }
    }

    #[test]
    fn message_wakes_sleeping_processor() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = SyncEngine::new(
            topo,
            vec![
                WakeProbe { woken_by_msg: false },
                WakeProbe { woken_by_msg: false },
            ],
        )
        .unwrap();
        // Processor 1 would sleep until cycle 100, but the ping from 0
        // arrives at cycle 1 and wakes it.
        engine.set_wakeups(vec![0, 100]).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.outputs(), &[false, true]);
        assert_eq!(report.halt_cycles, vec![1, 2]);
    }

    #[derive(Debug)]
    struct Never;
    impl SyncProcess for Never {
        type Msg = ();
        type Output = ();
        fn step(&mut self, _c: u64, _rx: Received<()>) -> Step<(), ()> {
            Step::idle()
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = SyncEngine::new(topo, vec![Never, Never]).unwrap();
        engine.set_max_cycles(10);
        assert!(matches!(
            engine.run(),
            Err(SimError::MaxCyclesExceeded {
                max_cycles: 10,
                running: 2
            })
        ));
    }

    #[derive(Debug)]
    struct SendOnceAndHalt;
    impl SyncProcess for SendOnceAndHalt {
        type Msg = u8;
        type Output = ();
        fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
            if cycle == 0 {
                Step::send_both(1, 2).and_halt(())
            } else {
                Step::idle()
            }
        }
    }

    #[test]
    fn final_step_messages_are_sent_then_dropped_at_halted_peers() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine =
            SyncEngine::new(topo, vec![SendOnceAndHalt, SendOnceAndHalt, SendOnceAndHalt]).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.messages, 6);
        assert_eq!(report.bits, 48);
        // All six messages land on processors that halted in cycle 0.
        assert_eq!(report.dropped, 6);
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn counterclockwise_delivery_crosses_ports() {
        #[derive(Debug)]
        struct Probe {
            idx: usize,
            got: Option<(Port, u8)>,
        }
        impl SyncProcess for Probe {
            type Msg = u8;
            type Output = Option<(Port, u8)>;
            fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, Self::Output> {
                if cycle == 0 && self.idx == 0 {
                    return Step::send_right(42);
                }
                if let Some((p, m)) = rx.iter().next().map(|(p, &m)| (p, m)) {
                    self.got = Some((p, m));
                }
                if cycle == 2 {
                    return Step::halt(self.got);
                }
                Step::idle()
            }
        }
        // Processor 1 is counterclockwise: processor 0's rightward message
        // arrives on 1's *right* port.
        let topo = RingTopology::new(vec![
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Clockwise,
        ])
        .unwrap();
        let mut engine = SyncEngine::new(
            topo,
            (0..3).map(|idx| Probe { idx, got: None }).collect(),
        )
        .unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.outputs()[1], Some((Port::Right, 42)));
        assert_eq!(report.outputs()[2], None);
    }
}
