//! The synchronous (lock-step) execution engine (paper §2).
//!
//! All processors share a global clock. In each cycle a processor may send
//! one message to each neighbour; messages sent in cycle `t` are available
//! to the receiver in cycle `t + 1`, so information travels exactly one hop
//! per cycle — the property Lemma 3.1 (and every lower bound in the paper)
//! depends on. The engine enforces this by tagging each message with its
//! due cycle in the shared [`LinkFabric`], which refuses to release it
//! early.
//!
//! Processors may have individual *wake-up* cycles (paper §4.2.3): a
//! processor is idle until its spontaneous wake-up time or until a message
//! arrives, whichever comes first, and its `local_cycle` counts from that
//! moment.
//!
//! The engine runs over any [`Topology`]. On a *dynamic* topology
//! ([`Topology::is_dynamic`]), a send on a port whose wire is inactive in
//! the current round (`round` = global cycle) is absorbed: the edge does
//! not exist this round, so nothing is transmitted, metered or observed —
//! the dynamic-network convention that a processor may broadcast blindly
//! and only its current neighbours hear it.
//!
//! This engine is a thin driver over [`crate::runtime`]: queues, cost
//! accounting and trace events all come from the shared substrate.

use std::fmt;

use crate::config::RingConfig;
use crate::error::SimError;
use crate::message::Message;
use crate::runtime::{
    CausalClocks, CostMeter, LinkFabric, NullObserver, Observer, PortActions, PortRx, SendMeta,
    TraceEvent,
};
use crate::topology::{RingTopology, Topology};

pub use crate::runtime::{Emit, Received, Step};

/// A processor of a synchronous ring algorithm.
///
/// The engine calls [`SyncProcess::step`] once per cycle from the
/// processor's wake-up on. `local_cycle` is `0` on the first call and the
/// `rx` of call `t` contains exactly the messages the neighbours emitted in
/// the previous cycle.
pub trait SyncProcess {
    /// Message type sent on the channels.
    type Msg: Message;
    /// Output state when the processor halts.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Executes one cycle.
    fn step(&mut self, local_cycle: u64, rx: Received<Self::Msg>) -> Step<Self::Msg, Self::Output>;
}

/// A processor of a synchronous algorithm on an arbitrary port-labelled
/// topology: the general form the engine actually executes.
///
/// Every [`SyncProcess`] is automatically a `SyncPortProcess` (its
/// two-port `step` is lifted port-for-port), so ring algorithms run
/// unchanged. Processes for higher-degree topologies implement this trait
/// directly; `rx.ports()` is their local degree — the only topology
/// knowledge an anonymous process may use.
pub trait SyncPortProcess {
    /// Message type sent on the channels.
    type Msg: Message;
    /// Output state when the processor halts.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Executes one cycle: at most one message per port.
    fn step_ports(
        &mut self,
        local_cycle: u64,
        rx: PortRx<Self::Msg>,
    ) -> PortActions<Self::Msg, Self::Output>;
}

impl<P: SyncProcess> SyncPortProcess for P {
    type Msg = P::Msg;
    type Output = P::Output;

    fn step_ports(
        &mut self,
        local_cycle: u64,
        rx: PortRx<Self::Msg>,
    ) -> PortActions<Self::Msg, Self::Output> {
        self.step(local_cycle, rx.into_ring()).into()
    }
}

/// Outcome of a completed synchronous run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncReport<O> {
    /// Total messages sent (the paper's message complexity).
    pub messages: u64,
    /// Total bits sent (the paper's bit complexity).
    pub bits: u64,
    /// Global cycles elapsed until the last processor halted.
    pub cycles: u64,
    /// Messages delivered to already-halted processors (and discarded).
    pub dropped: u64,
    /// Messages sent in each global cycle (index = cycle).
    pub per_cycle_messages: Vec<u64>,
    /// Global cycle at which each processor halted.
    pub halt_cycles: Vec<u64>,
    outputs: Vec<O>,
}

impl<O> SyncReport<O> {
    /// The ring output `O(1), …, O(n)`.
    #[must_use]
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// Consumes the report, returning the ring output.
    #[must_use]
    pub fn into_outputs(self) -> Vec<O> {
        self.outputs
    }

    /// Whether all processors halted in the same global cycle — the start
    /// synchronization success criterion (paper §4.2.3).
    #[must_use]
    pub fn halted_simultaneously(&self) -> bool {
        self.halt_cycles.iter().all(|&c| c == self.halt_cycles[0])
    }
}

/// Driver for a synchronous computation over any [`Topology`] (defaults
/// to the ring).
#[derive(Debug, Clone)]
pub struct SyncEngine<P: SyncPortProcess, T: Topology = RingTopology> {
    topology: T,
    procs: Vec<P>,
    wake_at: Vec<u64>,
    max_cycles: u64,
}

/// Default cycle budget: generous enough for every algorithm in this
/// repository at the ring sizes the experiments use, small enough to catch
/// deadlocks quickly.
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

impl<P: SyncPortProcess> SyncEngine<P, RingTopology> {
    /// Builds an engine from a ring configuration, constructing each
    /// process from its index and input.
    ///
    /// # Panics
    ///
    /// Panics only if the configuration is internally inconsistent, which
    /// [`RingConfig`] constructors prevent.
    pub fn from_config<V>(
        config: &RingConfig<V>,
        mut make: impl FnMut(usize, &V) -> P,
    ) -> SyncEngine<P> {
        let procs = config
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, v)| make(i, v))
            .collect();
        SyncEngine::new(config.topology().clone(), procs).expect("config is self-consistent")
    }
}

impl<P: SyncPortProcess, T: Topology> SyncEngine<P, T> {
    /// Builds an engine over `topology` with one process per processor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if `procs.len() != n`.
    pub fn new(topology: T, procs: Vec<P>) -> Result<SyncEngine<P, T>, SimError> {
        if procs.len() != topology.n() {
            return Err(SimError::LengthMismatch {
                expected: topology.n(),
                actual: procs.len(),
            });
        }
        let n = topology.n();
        Ok(SyncEngine {
            topology,
            procs,
            wake_at: vec![0; n],
            max_cycles: DEFAULT_MAX_CYCLES,
        })
    }

    /// Sets per-processor spontaneous wake-up cycles (default: all zero,
    /// i.e. simultaneous start). A message arriving earlier wakes the
    /// processor at its arrival cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LengthMismatch`] if the vector length is not `n`.
    pub fn set_wakeups(&mut self, wake_at: Vec<u64>) -> Result<&mut Self, SimError> {
        if wake_at.len() != self.topology.n() {
            return Err(SimError::LengthMismatch {
                expected: self.topology.n(),
                actual: wake_at.len(),
            });
        }
        self.wake_at = wake_at;
        Ok(self)
    }

    /// Sets the cycle budget after which the run aborts with
    /// [`SimError::MaxCyclesExceeded`].
    pub fn set_max_cycles(&mut self, max_cycles: u64) -> &mut Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Runs the computation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run(&mut self) -> Result<SyncReport<P::Output>, SimError> {
        self.run_inner(|_, _| {}, &mut NullObserver)
    }

    /// Runs the computation, invoking `observe(cycle, procs)` after every
    /// cycle's state transitions — used by indistinguishability tests that
    /// compare processor states (Lemma 3.1/6.1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run_observed(
        &mut self,
        observe: impl FnMut(u64, &[P]),
    ) -> Result<SyncReport<P::Output>, SimError> {
        self.run_inner(observe, &mut NullObserver)
    }

    /// Runs the computation while streaming every [`TraceEvent`] to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run_with_observer(
        &mut self,
        observer: &mut impl Observer,
    ) -> Result<SyncReport<P::Output>, SimError> {
        self.run_inner(|_, _| {}, observer)
    }

    /// Runs the computation while recording every message send into a
    /// [`crate::trace::Trace`] for space-time rendering.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if some processor fails to
    /// halt within the cycle budget.
    pub fn run_traced(&mut self) -> Result<(SyncReport<P::Output>, crate::trace::Trace), SimError> {
        let mut trace = crate::trace::Trace::new(self.topology.n());
        let report = self.run_inner(|_, _| {}, &mut trace)?;
        Ok((report, trace))
    }

    fn run_inner(
        &mut self,
        mut observe: impl FnMut(u64, &[P]),
        observer: &mut impl Observer,
    ) -> Result<SyncReport<P::Output>, SimError> {
        let n = self.topology.n();
        let procs = &mut self.procs;
        let wake_at = &self.wake_at;
        let mut halted: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut halt_cycles = vec![0u64; n];
        let mut awake = vec![false; n];
        let mut local_cycle = vec![0u64; n];
        let mut meter = CostMeter::new();
        let mut fabric: LinkFabric<P::Msg> = LinkFabric::new(&self.topology);
        let mut clocks = CausalClocks::new(n);

        for cycle in 0..self.max_cycles {
            // Wake-ups: spontaneous or message-triggered. Messages due this
            // cycle were sent last cycle, so the due set is fixed before any
            // processor steps.
            for i in 0..n {
                if !awake[i] && (cycle >= wake_at[i] || fabric.has_due(i, cycle)) {
                    awake[i] = true;
                }
            }

            // Step every awake, running processor on last cycle's sends;
            // emissions go back into the fabric due next cycle, so they
            // cannot be consumed within this one.
            for i in 0..n {
                if halted[i].is_some() {
                    let (_, stamps) = fabric.take_due(i, cycle);
                    for (port, stamp) in stamps.iter() {
                        meter.record_drop();
                        observer.on_event(&TraceEvent::Deliver {
                            time: cycle,
                            to: i,
                            port,
                            seq: stamp.seq,
                            dropped: true,
                        });
                    }
                    continue;
                }
                if !awake[i] {
                    continue;
                }
                let (rx, stamps) = fabric.take_due(i, cycle);
                for (port, stamp) in stamps.iter() {
                    clocks.consume(i, *stamp);
                    observer.on_event(&TraceEvent::Deliver {
                        time: cycle,
                        to: i,
                        port,
                        seq: stamp.seq,
                        dropped: false,
                    });
                }
                let step = procs[i].step_ports(local_cycle[i], rx);
                local_cycle[i] += 1;
                for (port, msg) in step.sends {
                    // Dynamic topologies: a send on an inactive wire is
                    // absorbed — the edge does not exist this round.
                    if !self.topology.is_active(cycle, i, port) {
                        continue;
                    }
                    let (lamport, parent) = clocks.stamp_send(i);
                    let meta = SendMeta {
                        send_time: cycle,
                        due_time: cycle + 1,
                        span: step.span,
                        lamport,
                        parent,
                    };
                    fabric.send(i, port, msg, meta, &mut meter, observer);
                }
                if let Some(output) = step.halt {
                    halted[i] = Some(output);
                    halt_cycles[i] = cycle;
                    observer.on_event(&TraceEvent::Halt {
                        time: cycle,
                        processor: i,
                    });
                }
            }
            meter.close_time(cycle);
            observe(cycle, procs);

            if halted.iter().all(Option::is_some) {
                // Anything still in flight at halt time is dropped.
                for _ in 0..fabric.drain_remaining() {
                    meter.record_drop();
                }
                return Ok(SyncReport {
                    messages: meter.messages,
                    bits: meter.bits,
                    cycles: cycle + 1,
                    dropped: meter.dropped,
                    per_cycle_messages: meter.per_time_messages,
                    halt_cycles,
                    outputs: halted
                        .into_iter()
                        .map(|h| h.expect("all_halted branch: every slot is Some"))
                        .collect(),
                });
            }
        }

        let running = halted.iter().filter(|h| h.is_none()).count();
        let components = self.topology.components();
        if components > 1 {
            // A partition is not an algorithm bug: report it as such.
            return Err(SimError::DisconnectedTopology {
                components,
                running,
            });
        }
        Err(SimError::MaxCyclesExceeded {
            max_cycles: self.max_cycles,
            running,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use crate::port::{Orientation, Port, PortId};

    /// Forwards a token right for `ttl` hops, then halts everyone via a
    /// final broadcast-free timeout.
    #[derive(Debug, Clone)]
    struct Relay {
        is_source: bool,
        n: u64,
    }

    impl SyncProcess for Relay {
        type Msg = u64;
        type Output = u64;
        fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
            // Source emits 0 at cycle 0; everyone forwards hop+1 to the
            // right; all halt at cycle n with the largest hop count seen.
            if cycle == self.n {
                return Step::halt(u64::from(self.is_source));
            }
            if self.is_source && cycle == 0 {
                return Step::send_right(1);
            }
            if let Some(h) = rx.from_left {
                if h < self.n {
                    return Step::send_right(h + 1);
                }
            }
            Step::idle()
        }
    }

    #[test]
    fn token_travels_one_hop_per_cycle() {
        let n = 6u64;
        let config = RingConfig::oriented(vec![(); 6]);
        let mut engine = SyncEngine::from_config(&config, |i, ()| Relay {
            is_source: i == 0,
            n,
        });
        let report = engine.run().unwrap();
        // Token forwarded n-1 times plus initial send = n messages... the
        // token with hop count n is not re-sent, so exactly n sends
        // happen: hops 1..=n-1 forwarded, plus the initial. Wait: source
        // sends hop 1; receivers forward h+1 while h < n. Receiver of
        // hop n-1 sends hop n; receiver of hop n does not forward.
        assert_eq!(report.messages, n);
        assert_eq!(report.cycles, n + 1);
        // Exactly one message per cycle for the first n cycles.
        assert_eq!(
            &report.per_cycle_messages[..n as usize],
            vec![1; 6].as_slice()
        );
    }

    #[derive(Debug)]
    struct HaltAt(u64);
    impl SyncProcess for HaltAt {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, cycle: u64, _rx: Received<()>) -> Step<(), u64> {
            if cycle == self.0 {
                Step::halt(cycle)
            } else {
                Step::idle()
            }
        }
    }

    #[test]
    fn wakeups_shift_local_clocks() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(topo, vec![HaltAt(2), HaltAt(2), HaltAt(2)]).unwrap();
        engine.set_wakeups(vec![0, 3, 5]).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.halt_cycles, vec![2, 5, 7]);
        assert!(!report.halted_simultaneously());
        assert_eq!(report.outputs(), &[2, 2, 2]);
    }

    #[derive(Debug)]
    struct WakeProbe {
        woken_by_msg: bool,
    }
    impl SyncProcess for WakeProbe {
        type Msg = ();
        type Output = bool;
        fn step(&mut self, cycle: u64, rx: Received<()>) -> Step<(), bool> {
            if cycle == 0 {
                self.woken_by_msg = !rx.is_empty();
                // First processor pings its right neighbour.
                if !self.woken_by_msg {
                    return Step::send_right(());
                }
            }
            if cycle >= 1 {
                return Step::halt(self.woken_by_msg);
            }
            Step::idle()
        }
    }

    #[test]
    fn message_wakes_sleeping_processor() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = SyncEngine::new(
            topo,
            vec![
                WakeProbe {
                    woken_by_msg: false,
                },
                WakeProbe {
                    woken_by_msg: false,
                },
            ],
        )
        .unwrap();
        // Processor 1 would sleep until cycle 100, but the ping from 0
        // arrives at cycle 1 and wakes it.
        engine.set_wakeups(vec![0, 100]).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.outputs(), &[false, true]);
        assert_eq!(report.halt_cycles, vec![1, 2]);
    }

    #[derive(Debug)]
    struct Never;
    impl SyncProcess for Never {
        type Msg = ();
        type Output = ();
        fn step(&mut self, _c: u64, _rx: Received<()>) -> Step<(), ()> {
            Step::idle()
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = SyncEngine::new(topo, vec![Never, Never]).unwrap();
        engine.set_max_cycles(10);
        assert!(matches!(
            engine.run(),
            Err(SimError::MaxCyclesExceeded {
                max_cycles: 10,
                running: 2
            })
        ));
    }

    #[derive(Debug)]
    struct SendOnceAndHalt;
    impl SyncProcess for SendOnceAndHalt {
        type Msg = u8;
        type Output = ();
        fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
            if cycle == 0 {
                Step::send_both(1, 2).and_halt(())
            } else {
                Step::idle()
            }
        }
    }

    #[test]
    fn final_step_messages_are_sent_then_dropped_at_halted_peers() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(
            topo,
            vec![SendOnceAndHalt, SendOnceAndHalt, SendOnceAndHalt],
        )
        .unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.messages, 6);
        assert_eq!(report.bits, 48);
        // All six messages land on processors that halted in cycle 0.
        assert_eq!(report.dropped, 6);
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn counterclockwise_delivery_crosses_ports() {
        #[derive(Debug)]
        struct Probe {
            idx: usize,
            got: Option<(Port, u8)>,
        }
        impl SyncProcess for Probe {
            type Msg = u8;
            type Output = Option<(Port, u8)>;
            fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, Self::Output> {
                if cycle == 0 && self.idx == 0 {
                    return Step::send_right(42);
                }
                if let Some((p, m)) = rx.iter().next().map(|(p, &m)| (p, m)) {
                    self.got = Some((p, m));
                }
                if cycle == 2 {
                    return Step::halt(self.got);
                }
                Step::idle()
            }
        }
        // Processor 1 is counterclockwise: processor 0's rightward message
        // arrives on 1's *right* port.
        let topo = RingTopology::new(vec![
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Clockwise,
        ])
        .unwrap();
        let mut engine =
            SyncEngine::new(topo, (0..3).map(|idx| Probe { idx, got: None }).collect()).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.outputs()[1], Some((Port::Right, 42)));
        assert_eq!(report.outputs()[2], None);
    }

    /// A general-topology process: floods a counter on every port until a
    /// fixed cycle, then halts with the number of messages it heard.
    #[derive(Debug)]
    struct Chatter {
        heard: u64,
        until: u64,
    }
    impl SyncPortProcess for Chatter {
        type Msg = u8;
        type Output = u64;
        fn step_ports(&mut self, cycle: u64, rx: PortRx<u8>) -> PortActions<u8, u64> {
            self.heard += rx.iter().count() as u64;
            if cycle == self.until {
                return PortActions::halt(self.heard);
            }
            let everywhere: Vec<PortId> = (0..rx.ports()).map(|p| PortId::new(p as u16)).collect();
            PortActions::send_each(&everywhere, 1)
        }
    }

    #[test]
    fn general_graphs_run_on_the_sync_engine() {
        use crate::graph::GraphTopology;
        // A star: the hub has three ports, the leaves one each.
        let topo = GraphTopology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let procs = (0..4).map(|_| Chatter { heard: 0, until: 2 }).collect();
        let mut engine = SyncEngine::new(topo, procs).unwrap();
        let report = engine.run().unwrap();
        // Cycles 0 and 1 broadcast on every directed link: 2 * 6 sends.
        assert_eq!(report.messages, 12);
        // Hub hears 3 per reception cycle, each leaf 1.
        assert_eq!(report.outputs(), &[6, 2, 2, 2]);
    }

    #[test]
    fn inactive_wires_absorb_sends_unmetered() {
        use crate::dynamic::DynamicTopology;
        use crate::graph::GraphTopology;
        let base = GraphTopology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        // Round 0 activates only {0,1}; round 1 activates only {1,2};
        // later rounds clamp to round 1's edge set.
        let topo = DynamicTopology::new(
            base,
            vec![vec![true, false, false], vec![false, true, false]],
        )
        .unwrap();
        let procs = (0..3).map(|_| Chatter { heard: 0, until: 2 }).collect();
        let mut engine = SyncEngine::new(topo, procs).unwrap();
        let report = engine.run().unwrap();
        // Each broadcast cycle offers 6 directed sends but only the active
        // edge's 2 survive; the rest are absorbed without metering.
        assert_eq!(report.messages, 4);
        assert_eq!(report.outputs(), &[1, 2, 1]);
    }

    #[test]
    fn disconnected_graphs_get_a_distinct_verdict() {
        use crate::graph::GraphTopology;
        let topo = GraphTopology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        // Processes that wait forever for a cycle delivering two messages
        // at once — impossible for degree-1 nodes across a partition.
        #[derive(Debug)]
        struct WaitForPair;
        impl SyncPortProcess for WaitForPair {
            type Msg = u8;
            type Output = u64;
            fn step_ports(&mut self, _cycle: u64, rx: PortRx<u8>) -> PortActions<u8, u64> {
                let heard = rx.iter().count() as u64;
                if heard >= 2 {
                    return PortActions::halt(heard);
                }
                let everywhere: Vec<PortId> =
                    (0..rx.ports()).map(|p| PortId::new(p as u16)).collect();
                PortActions::send_each(&everywhere, 0)
            }
        }
        let procs = (0..4).map(|_| WaitForPair).collect();
        let mut engine = SyncEngine::new(topo, procs).unwrap();
        engine.set_max_cycles(64);
        assert!(matches!(
            engine.run(),
            Err(SimError::DisconnectedTopology {
                components: 2,
                running: 4
            })
        ));
    }

    /// The halting-cycle drop path also streams `Deliver { dropped: true }`
    /// events — the unified stream covers drops, not just sends.
    #[test]
    fn observer_sees_sends_deliveries_and_halts() {
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(
            topo,
            vec![SendOnceAndHalt, SendOnceAndHalt, SendOnceAndHalt],
        )
        .unwrap();
        let mut sends = 0u64;
        let mut drops = 0u64;
        let mut halts = 0u64;
        let report = {
            let mut obs = |ev: &TraceEvent| match ev {
                TraceEvent::Send(_) => sends += 1,
                TraceEvent::Deliver { dropped, .. } => drops += u64::from(*dropped),
                TraceEvent::Halt { .. } => halts += 1,
            };
            engine.run_with_observer(&mut obs).unwrap()
        };
        assert_eq!(sends, report.messages);
        assert_eq!(halts, 3);
        // The six in-flight messages are drained at end of run, not
        // delivered, so no dropped Deliver events fire here.
        assert_eq!(drops, 0);
        assert_eq!(report.dropped, 6);
    }
}
