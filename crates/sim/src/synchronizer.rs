//! Local synchronization (the "α-synchronizer"): running a synchronous
//! algorithm on an asynchronous ring (paper §3).
//!
//! Each processor sends one *envelope* per simulated cycle to each
//! neighbour — carrying the real payload when the wrapped algorithm sends
//! one, and empty otherwise — and advances to the next simulated cycle only
//! after receiving the previous cycle's envelope from both neighbours. This
//! preserves the synchronous semantics exactly (including the information
//! carried by the *absence* of a message), at a message cost of `2n` per
//! simulated cycle.
//!
//! When the wrapped processor halts, its final envelope carries a `closing`
//! flag: neighbours henceforth treat that port as silent.

use crate::message::Message;
use crate::port::Port;
use crate::r#async::{Actions, AsyncProcess};
use crate::runtime::Emit;
use crate::sync::{Received, Step, SyncProcess};
use std::collections::VecDeque;

/// One simulated-cycle envelope.
///
/// The `cycle` tag is redundant on FIFO links (the `t`-th envelope on a
/// link always belongs to cycle `t`) and is kept only for internal
/// assertions; the accounted encoding is `closing` flag + payload-present
/// flag + payload bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated cycle this envelope belongs to.
    pub cycle: u64,
    /// The wrapped algorithm's message for this cycle, if any.
    pub payload: Option<M>,
    /// True when the sender halted at this cycle and will send no more.
    pub closing: bool,
}

impl<M: Message> Message for Envelope<M> {
    fn bit_len(&self) -> usize {
        2 + self.payload.as_ref().map_or(0, Message::bit_len)
    }
}

#[derive(Debug)]
enum PortState<M> {
    /// Queue of payloads received and not yet consumed, in cycle order.
    Open(VecDeque<Option<M>>),
    /// The neighbour announced it halted: all future cycles read `None`.
    /// The queue holds payloads that arrived before the close.
    Closing(VecDeque<Option<M>>),
}

impl<M> PortState<M> {
    fn push(&mut self, payload: Option<M>, closing: bool) {
        match self {
            PortState::Open(q) => {
                q.push_back(payload);
                if closing {
                    let q = std::mem::take(q);
                    *self = PortState::Closing(q);
                }
            }
            PortState::Closing(_) => panic!("envelope after closing envelope"),
        }
    }

    /// Whether a payload (possibly `None`) is available for the next
    /// unconsumed cycle.
    fn ready(&self) -> bool {
        match self {
            PortState::Open(q) => !q.is_empty(),
            PortState::Closing(_) => true,
        }
    }

    fn pop(&mut self) -> Option<M> {
        match self {
            PortState::Open(q) => q.pop_front().expect("checked by ready()"),
            PortState::Closing(q) => q.pop_front().flatten(),
        }
    }
}

/// Adapter that runs a [`SyncProcess`] on an asynchronous ring.
///
/// ```
/// use anonring_sim::r#async::{AsyncEngine, RandomScheduler};
/// use anonring_sim::sync::{Emit, Received, Step, SyncProcess};
/// use anonring_sim::synchronizer::Synchronized;
/// use anonring_sim::RingTopology;
///
/// #[derive(Debug)]
/// struct TwoCycleCount(u64);
/// impl SyncProcess for TwoCycleCount {
///     type Msg = u64;
///     type Output = u64;
///     fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
///         match cycle {
///             0 => Step::send_right(self.0),
///             1 => {
///                 self.0 += rx.from_left.unwrap_or(0);
///                 Step::send_right(self.0)
///             }
///             _ => Step::halt(self.0 + rx.from_left.unwrap_or(0)),
///         }
///     }
/// }
///
/// let topo = RingTopology::oriented(3).unwrap();
/// let procs = (0..3).map(|i| Synchronized::new(TwoCycleCount(i))).collect();
/// let mut engine = AsyncEngine::new(topo, procs).unwrap();
/// let report = engine.run(&mut RandomScheduler::new(1)).unwrap();
/// assert_eq!(report.outputs().len(), 3);
/// ```
#[derive(Debug)]
pub struct Synchronized<P: SyncProcess> {
    inner: P,
    cycle: u64,
    left: PortState<P::Msg>,
    right: PortState<P::Msg>,
    halted: bool,
}

impl<P: SyncProcess> Synchronized<P> {
    /// Wraps a synchronous processor.
    #[must_use]
    pub fn new(inner: P) -> Synchronized<P> {
        Synchronized {
            inner,
            cycle: 0,
            left: PortState::Open(VecDeque::new()),
            right: PortState::Open(VecDeque::new()),
            halted: false,
        }
    }

    /// Executes as many simulated cycles as the buffered envelopes allow.
    fn advance(&mut self) -> Actions<Envelope<P::Msg>, P::Output> {
        let mut actions = Actions::idle();
        while !self.halted && (self.cycle == 0 || (self.left.ready() && self.right.ready())) {
            let rx = if self.cycle == 0 {
                Received::empty()
            } else {
                Received {
                    from_left: self.left.pop(),
                    from_right: self.right.pop(),
                }
            };
            // An envelope batch can straddle several simulated cycles, so a
            // single outer span cannot represent the inner steps' spans
            // faithfully; envelope traffic is deliberately unannotated.
            let Step {
                to_left,
                to_right,
                halt,
                span: _,
            } = self.inner.step(self.cycle, rx);
            let closing = halt.is_some();
            actions = actions
                .and_send(
                    Port::Left,
                    Envelope {
                        cycle: self.cycle,
                        payload: to_left,
                        closing,
                    },
                )
                .and_send(
                    Port::Right,
                    Envelope {
                        cycle: self.cycle,
                        payload: to_right,
                        closing,
                    },
                );
            self.cycle += 1;
            if let Some(output) = halt {
                self.halted = true;
                actions = actions.and_halt(output);
            }
        }
        actions
    }
}

impl<P: SyncProcess> AsyncProcess for Synchronized<P> {
    type Msg = Envelope<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self) -> Actions<Self::Msg, Self::Output> {
        self.advance()
    }

    fn on_message(
        &mut self,
        from: Port,
        env: Envelope<P::Msg>,
    ) -> Actions<Self::Msg, Self::Output> {
        let port = match from {
            Port::Left => &mut self.left,
            Port::Right => &mut self.right,
        };
        port.push(env.payload, env.closing);
        self.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use crate::r#async::{AsyncEngine, FifoScheduler, RandomScheduler, SynchronizingScheduler};
    use crate::sync::SyncEngine;

    /// Collects the inputs of both neighbours over two cycles, halting at
    /// different times depending on the input (exercises the closing
    /// protocol).
    #[derive(Debug, Clone)]
    struct Gossip {
        input: u8,
        seen: Vec<u8>,
    }

    impl SyncProcess for Gossip {
        type Msg = u8;
        type Output = Vec<u8>;
        fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, Vec<u8>> {
            for (_, &m) in rx.iter() {
                self.seen.push(m);
            }
            match cycle {
                0 => Step::send_both(self.input, self.input),
                // Zero-input processors halt a cycle earlier.
                1 if self.input == 0 => {
                    let mut out = vec![self.input];
                    out.extend_from_slice(&self.seen);
                    out.sort_unstable();
                    Step::halt(out)
                }
                1 => Step::send_both(self.input, self.input),
                _ => {
                    let mut out = vec![self.input];
                    out.extend_from_slice(&self.seen);
                    out.sort_unstable();
                    Step::halt(out)
                }
            }
        }
    }

    fn sync_outputs(config: &RingConfig<u8>) -> Vec<Vec<u8>> {
        let mut engine = SyncEngine::from_config(config, |_, &input| Gossip {
            input,
            seen: Vec::new(),
        });
        engine.run().unwrap().into_outputs()
    }

    fn async_outputs(
        config: &RingConfig<u8>,
        sched: &mut dyn crate::r#async::Scheduler,
    ) -> Vec<Vec<u8>> {
        let mut engine = AsyncEngine::from_config(config, |_, &input| {
            Synchronized::new(Gossip {
                input,
                seen: Vec::new(),
            })
        });
        engine.run(sched).unwrap().into_outputs()
    }

    #[test]
    fn synchronized_run_matches_synchronous_run() {
        for bits in ["11011", "0110", "10", "111", "000"] {
            let config = RingConfig::oriented_bits(bits).unwrap();
            let want = sync_outputs(&config);
            assert_eq!(
                async_outputs(&config, &mut SynchronizingScheduler),
                want,
                "sync-adversary {bits}"
            );
            assert_eq!(
                async_outputs(&config, &mut FifoScheduler),
                want,
                "fifo {bits}"
            );
            for seed in 0..5 {
                assert_eq!(
                    async_outputs(&config, &mut RandomScheduler::new(seed)),
                    want,
                    "random {seed} {bits}"
                );
            }
        }
    }

    #[test]
    fn envelope_bit_accounting() {
        let e = Envelope::<u8> {
            cycle: 3,
            payload: Some(1),
            closing: false,
        };
        assert_eq!(e.bit_len(), 10);
        let empty = Envelope::<u8> {
            cycle: 3,
            payload: None,
            closing: true,
        };
        assert_eq!(empty.bit_len(), 2);
    }
}
