//! # anonring-sim
//!
//! Discrete simulators for distributed computations on a **bidirectional
//! ring** of `n` processors, in both the *synchronous* (lock-step) and
//! *asynchronous* (message-driven) models of Attiya, Snir and Warmuth,
//! *Computing on an Anonymous Ring* (J. ACM 35(4), 1988), §2.
//!
//! The crate provides the substrate every other `anonring` crate builds on:
//!
//! * [`Topology`] — the port-labelled directed-multigraph abstraction all
//!   routing goes through, with three instances: the ring, arbitrary
//!   static graphs ([`GraphTopology`]) and per-round dynamic edge sets
//!   ([`DynamicTopology`]);
//! * [`RingTopology`] — channel wiring with *per-processor orientations*
//!   `D(i)`, so that "left" and "right" are local, possibly inconsistent
//!   notions, exactly as in the paper;
//! * [`RingConfig`] — an initial ring configuration `R = ⟨D(i), I(i)⟩ᵢ`;
//! * [`neighborhood`] — `k`-neighborhoods and the symmetry index `SI(R, k)`
//!   used by all lower-bound arguments;
//! * [`runtime`] — the shared execution core both engines drive: the
//!   per-directed-link FIFO fabric, the single [`runtime::CostMeter`] every
//!   message/bit/time figure comes from, the [`runtime::Emit`] send-helper
//!   vocabulary, and the unified [`runtime::TraceEvent`] observer stream;
//! * [`sync`] — the synchronous engine: clock-driven cycles, per-processor
//!   wake-up times, message/bit/cycle accounting;
//! * [`r#async`] — the asynchronous engine with pluggable schedulers
//!   including the *synchronizing adversary* of Theorem 5.1;
//! * [`synchronizer`] — the §3 local-synchronization adapter that runs any
//!   synchronous algorithm on an asynchronous ring;
//! * [`trace`] — space-time diagrams, recorded through the observer stream
//!   and therefore available for both models;
//! * [`telemetry`] — the observability layer over the same stream: a
//!   labelled metrics registry, per-phase span profiles, and a JSONL
//!   flight recorder with offline replay;
//! * [`profile`] — the hot-path profiler: lock wait/hold/section
//!   histograms, queue-dwell quantiles and allocation counters, gated
//!   behind one atomic and merged into the same metrics registry.
//!
//! ## Cost-model invariants
//!
//! The [`runtime`] layer owns these; the engines are thin drivers over it.
//!
//! * **One hop per cycle** (sync): a message sent at cycle `t` is consumed
//!   by the neighbour at cycle `t + 1`, never earlier.
//! * **FIFO links**: each directed link delivers in send order, in both
//!   models — the async scheduler only ever picks among queue *heads*.
//! * **Meter semantics**: `messages`/`bits` count sends (one
//!   [`Message::bit_len`] call per send, in exactly one place); sync
//!   histograms are indexed by *send cycle* and padded with explicit zeros
//!   for quiet cycles, async histograms by *arrival epoch* (send epoch =
//!   event epoch + 1, Theorem 5.1); messages reaching a halted processor
//!   count as `dropped` — and, in the async model only, as deliveries.
//!
//! ## Example
//!
//! A two-processor exchange where each processor sends its input across the
//! ring and halts with the pair of inputs:
//!
//! ```
//! use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
//! use anonring_sim::RingConfig;
//!
//! struct Exchange { input: u8 }
//! impl SyncProcess for Exchange {
//!     type Msg = u8;
//!     type Output = (u8, u8);
//!     fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, (u8, u8)> {
//!         if cycle == 0 {
//!             Step::send_right(self.input)
//!         } else {
//!             // On a clockwise 2-ring, the right neighbour's message
//!             // arrives on our left port.
//!             let got = rx.from_left.expect("message from neighbour");
//!             Step::halt((self.input, got))
//!         }
//!     }
//! }
//!
//! let config = RingConfig::oriented(vec![3u8, 7u8]);
//! let mut engine = SyncEngine::from_config(&config, |_, &input| Exchange { input });
//! let report = engine.run().unwrap();
//! assert_eq!(report.outputs(), &[(3, 7), (7, 3)]);
//! assert_eq!(report.messages, 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod r#async;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod explore;
pub mod graph;
pub mod message;
pub mod neighborhood;
pub mod port;
pub mod profile;
pub mod runtime;
pub mod sync;
pub mod synchronizer;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod wake;

pub use config::RingConfig;
pub use dynamic::DynamicTopology;
pub use error::SimError;
pub use graph::GraphTopology;
pub use message::Message;
pub use neighborhood::{joint_symmetry_index, neighborhood, symmetry_index, Neighborhood};
pub use port::{Orientation, Port, PortId};
pub use topology::{RingTopology, Topology};
pub use wake::WakeSchedule;
