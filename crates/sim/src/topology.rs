//! Topologies: the general port-labelled wiring abstraction, and the
//! paper's ring as its primary instance.
//!
//! A [`Topology`] is a port-labelled directed multigraph: every processor
//! `i` owns `ports(i)` local port labels, and each `(i, port)` pair wires
//! to exactly one `(j, port')` pair such that following the wire back
//! returns to where it started. All routing in the engines goes through
//! this trait, so the ring ([`RingTopology`]), arbitrary static graphs
//! ([`crate::graph::GraphTopology`]) and per-round dynamic edge sets
//! ([`crate::dynamic::DynamicTopology`]) run on the same substrate.

use crate::error::SimError;
use crate::port::{Orientation, Port, PortId};

/// A port-labelled directed multigraph over `n` anonymous processors.
///
/// Invariants every implementation must uphold:
///
/// * **Involution** — `neighbor_port(neighbor_port(i, p)) == (i, p)`:
///   wires have two fixed ends, so "replying on the arrival port" always
///   gets back to the sender.
/// * **No self-loops** — `neighbor_port(i, p).0 != i` (an anonymous
///   processor cannot distinguish a self-loop from a neighbour).
/// * **Stable port space** — `ports(i)` and the wiring are fixed for the
///   lifetime of the run; *dynamic* topologies vary which wires are
///   [`Topology::is_active`] per round, never the wiring itself.
///
/// Algorithms never see this trait: anonymity means a process knows only
/// its local port count and what arrives on its ports. The trait is
/// substrate API — engines, mailboxes, telemetry and the net driver use
/// it to route and account messages.
pub trait Topology {
    /// Number of processors.
    fn n(&self) -> usize;

    /// Number of local ports of processor `i`.
    fn ports(&self, i: usize) -> usize;

    /// The wire at `(i, port)`: the processor it reaches and the arrival
    /// port there.
    fn neighbor_port(&self, i: usize, port: PortId) -> (usize, PortId);

    /// Whether the wire at `(i, port)` carries messages in `round` — the
    /// dynamic-topology hook. Static topologies leave the default
    /// (always active). Implementations must keep activity symmetric:
    /// a wire is active at both ends or neither.
    fn is_active(&self, round: u64, i: usize, port: PortId) -> bool {
        let _ = (round, i, port);
        true
    }

    /// Whether the active edge set varies between rounds.
    fn is_dynamic(&self) -> bool {
        false
    }

    /// A digest of the full wiring (size, port counts, and every wire),
    /// FNV-1a over the edge list. Two topologies with different wiring
    /// digest differently with overwhelming probability; used by
    /// [`crate::explore`] to keep runs over different wirings apart.
    fn wiring_digest(&self) -> u64 {
        let mut h = fnv_seed(self.n() as u64);
        for i in 0..self.n() {
            h = fnv_fold(h, self.ports(i) as u64);
            for p in 0..self.ports(i) {
                let (j, q) = self.neighbor_port(i, PortId::new(p as u16));
                h = fnv_fold(h, j as u64);
                h = fnv_fold(h, q.index() as u64);
            }
        }
        h
    }

    /// A digest of the edge set *active in `round`*, folded over the
    /// wiring digest. For static topologies every round digests alike;
    /// for dynamic ones, rounds with different active edges differ.
    fn round_digest(&self, round: u64) -> u64 {
        let mut h = self.wiring_digest();
        if !self.is_dynamic() {
            return h;
        }
        for i in 0..self.n() {
            for p in 0..self.ports(i) {
                h = fnv_fold(
                    h,
                    u64::from(self.is_active(round, i, PortId::new(p as u16))),
                );
            }
        }
        h
    }

    /// Number of connected components of the wiring (ignoring per-round
    /// activity). Engines use `> 1` to report
    /// [`SimError::DisconnectedTopology`] instead of a generic deadlock
    /// when a run cannot terminate across a partition.
    fn components(&self) -> usize {
        let n = self.n();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(i) = stack.pop() {
                for p in 0..self.ports(i) {
                    let (j, _) = self.neighbor_port(i, PortId::new(p as u16));
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        components
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_seed(v: u64) -> u64 {
    fnv_fold(FNV_OFFSET, v)
}

/// One FNV-1a folding step over the eight bytes of `v`.
pub(crate) fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The wiring of a bidirectional ring of `n ≥ 2` processors with
/// per-processor orientations `D(i)` (paper §2).
///
/// Physically, channel `c_k` connects processors `k` and `k + 1 (mod n)`.
/// Which *local port* of a processor attaches to which channel depends on
/// its orientation:
///
/// * `D(i) = 1` (clockwise): the right port is on `c_i`, the left port on
///   `c_{i−1}` — so `right(i) = i + 1`, `left(i) = i − 1`;
/// * `D(i) = 0` (counterclockwise): the ports are swapped — so
///   `right(i) = i − 1`, `left(i) = i + 1`.
///
/// Modelling the two channels explicitly keeps `n = 2` well-defined (the
/// two processors are joined by two *distinct* channels, one per side).
///
/// ```
/// use anonring_sim::{Orientation, Port, RingTopology};
///
/// let ring = RingTopology::oriented(5).unwrap();
/// assert_eq!(ring.neighbor(0, Port::Right), (1, Port::Left));
/// assert_eq!(ring.neighbor(0, Port::Left), (4, Port::Right));
///
/// // A counterclockwise processor receives the same message on the
/// // opposite port.
/// let mut d = vec![Orientation::Clockwise; 5];
/// d[1] = Orientation::Counterclockwise;
/// let ring = RingTopology::new(d).unwrap();
/// assert_eq!(ring.neighbor(0, Port::Right), (1, Port::Right));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingTopology {
    orientations: Vec<Orientation>,
}

impl RingTopology {
    /// Builds a ring with the given per-processor orientations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] when fewer than two orientations
    /// are supplied.
    pub fn new(orientations: Vec<Orientation>) -> Result<RingTopology, SimError> {
        if orientations.len() < 2 {
            return Err(SimError::RingTooSmall {
                n: orientations.len(),
            });
        }
        Ok(RingTopology { orientations })
    }

    /// Builds a fully clockwise-oriented ring of `n` processors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] when `n < 2`.
    pub fn oriented(n: usize) -> Result<RingTopology, SimError> {
        RingTopology::new(vec![Orientation::Clockwise; n])
    }

    /// Builds a ring from the paper's bit encoding of `D`
    /// (`1` = clockwise, `0` = counterclockwise).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RingTooSmall`] when fewer than two bits are
    /// supplied.
    pub fn from_bits(bits: &[u8]) -> Result<RingTopology, SimError> {
        RingTopology::new(bits.iter().map(|&b| Orientation::from_bit(b)).collect())
    }

    /// Ring size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.orientations.len()
    }

    /// The orientation `D(i)` of processor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    #[must_use]
    pub fn orientation(&self, i: usize) -> Orientation {
        self.orientations[i]
    }

    /// All orientations, in processor order.
    #[must_use]
    pub fn orientations(&self) -> &[Orientation] {
        &self.orientations
    }

    /// Index arithmetic modulo `n`: the processor `offset` positions
    /// clockwise from `i` (negative offsets go counterclockwise).
    #[must_use]
    pub fn wrap(&self, i: usize, offset: isize) -> usize {
        let n = self.n() as isize;
        (((i as isize + offset) % n + n) % n) as usize
    }

    /// The channel attached to processor `i`'s `port`.
    ///
    /// Channels are numbered so that channel `k` joins processors `k` and
    /// `k + 1 (mod n)`.
    #[must_use]
    pub fn port_channel(&self, i: usize, port: Port) -> usize {
        let cw_side = match self.orientations[i] {
            Orientation::Clockwise => port,
            Orientation::Counterclockwise => port.opposite(),
        };
        match cw_side {
            Port::Right => i,
            Port::Left => self.wrap(i, -1),
        }
    }

    /// The processor reached by sending on `i`'s `port`, together with the
    /// **arrival port**: the receiving processor's local port on which the
    /// message shows up.
    #[must_use]
    pub fn neighbor(&self, i: usize, port: Port) -> (usize, Port) {
        let ch = self.port_channel(i, port);
        let j = if ch == i {
            self.wrap(i, 1)
        } else {
            debug_assert_eq!(ch, self.wrap(i, -1));
            self.wrap(i, -1)
        };
        let arrival = if self.port_channel(j, Port::Left) == ch {
            Port::Left
        } else {
            debug_assert_eq!(self.port_channel(j, Port::Right), ch);
            Port::Right
        };
        (j, arrival)
    }

    /// The paper's `right(i)`: the processor index reached via `i`'s right
    /// port.
    #[must_use]
    pub fn right_of(&self, i: usize) -> usize {
        self.neighbor(i, Port::Right).0
    }

    /// The paper's `left(i)`: the processor index reached via `i`'s left
    /// port.
    #[must_use]
    pub fn left_of(&self, i: usize) -> usize {
        self.neighbor(i, Port::Left).0
    }

    /// Whether the ring is *oriented*: all processors agree on clockwise or
    /// all agree on counterclockwise (equivalently `left(right(i)) = i` for
    /// every `i`, paper §2).
    #[must_use]
    pub fn is_oriented(&self) -> bool {
        self.orientations.iter().all(|&o| o == self.orientations[0])
    }

    /// Whether the ring is *quasi-oriented*: oriented, or the orientation
    /// alternates around the ring (paper §4.2.2). An alternating ring
    /// requires even `n`.
    #[must_use]
    pub fn is_quasi_oriented(&self) -> bool {
        if self.is_oriented() {
            return true;
        }
        (0..self.n()).all(|i| self.orientations[i] != self.orientations[self.wrap(i, 1)])
    }

    /// The topology obtained when the processors in `switch` flip their
    /// orientation — the effect of the orientation problem's output
    /// (paper §2: processors with output 1 switch their left and right
    /// connections).
    ///
    /// # Panics
    ///
    /// Panics if `switch.len() != n`.
    #[must_use]
    pub fn with_switched(&self, switch: &[bool]) -> RingTopology {
        assert_eq!(switch.len(), self.n(), "switch vector length");
        RingTopology {
            orientations: self
                .orientations
                .iter()
                .zip(switch)
                .map(|(&o, &s)| if s { o.flipped() } else { o })
                .collect(),
        }
    }
}

impl Topology for RingTopology {
    fn n(&self) -> usize {
        self.orientations.len()
    }

    fn ports(&self, _i: usize) -> usize {
        2
    }

    fn neighbor_port(&self, i: usize, port: PortId) -> (usize, PortId) {
        let port = port.as_ring().expect("ring processors have ports 0 and 1");
        let (j, arrival) = self.neighbor(i, port);
        (j, PortId::from(arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cw(n: usize) -> RingTopology {
        RingTopology::oriented(n).unwrap()
    }

    #[test]
    fn ring_satisfies_the_topology_trait() {
        let r = RingTopology::from_bits(&[1, 0, 1, 1]).unwrap();
        assert_eq!(Topology::n(&r), 4);
        assert_eq!(r.ports(2), 2);
        for i in 0..4 {
            for p in [PortId::LEFT, PortId::RIGHT] {
                let (j, q) = r.neighbor_port(i, p);
                // Trait routing agrees with the inherent ring routing…
                let (jj, qq) = r.neighbor(i, p.as_ring().unwrap());
                assert_eq!((j, q), (jj, PortId::from(qq)));
                // …and is an involution.
                assert_eq!(r.neighbor_port(j, q), (i, p));
            }
        }
        assert!(!r.is_dynamic());
        assert!(r.is_active(3, 0, PortId::LEFT));
        assert_eq!(r.components(), 1);
        // Static topologies digest identically in every round; different
        // wirings digest apart.
        assert_eq!(r.round_digest(0), r.round_digest(17));
        assert_ne!(r.wiring_digest(), cw(4).wiring_digest());
        assert_ne!(cw(4).wiring_digest(), cw(5).wiring_digest());
    }

    #[test]
    fn rejects_tiny_rings() {
        assert!(matches!(
            RingTopology::oriented(1),
            Err(SimError::RingTooSmall { n: 1 })
        ));
        assert!(RingTopology::oriented(2).is_ok());
    }

    #[test]
    fn clockwise_ring_neighbors() {
        let r = cw(5);
        for i in 0..5 {
            assert_eq!(r.right_of(i), (i + 1) % 5, "right({i})");
            assert_eq!(r.left_of(i), (i + 4) % 5, "left({i})");
            // On an oriented ring a rightward message arrives on the left port.
            assert_eq!(r.neighbor(i, Port::Right), ((i + 1) % 5, Port::Left));
        }
    }

    #[test]
    fn counterclockwise_processor_swaps_ports() {
        let r = RingTopology::from_bits(&[1, 0, 1, 1]).unwrap();
        // Processor 1 is counterclockwise: right(1) = 0.
        assert_eq!(r.right_of(1), 0);
        assert_eq!(r.left_of(1), 2);
        // A message sent right by 0 reaches 1 on 1's *right* port
        // (both processors' "rights" face each other).
        assert_eq!(r.neighbor(0, Port::Right), (1, Port::Right));
    }

    #[test]
    fn two_ring_has_two_distinct_channels() {
        let r = cw(2);
        assert_ne!(
            r.port_channel(0, Port::Left),
            r.port_channel(0, Port::Right)
        );
        assert_eq!(r.neighbor(0, Port::Right), (1, Port::Left));
        assert_eq!(r.neighbor(0, Port::Left), (1, Port::Right));
    }

    #[test]
    fn channels_are_consistent_both_ways() {
        // Sending on a port and "replying" on the arrival port gets back.
        for bits in [
            vec![1, 1, 1],
            vec![0, 0, 0],
            vec![1, 0, 1],
            vec![1, 0, 0, 1],
            vec![0, 1, 0, 1, 1],
        ] {
            let r = RingTopology::from_bits(&bits).unwrap();
            for i in 0..r.n() {
                for p in [Port::Left, Port::Right] {
                    let (j, q) = r.neighbor(i, p);
                    assert_eq!(r.neighbor(j, q), (i, p), "round trip from {i}/{p:?}");
                }
            }
        }
    }

    #[test]
    fn oriented_iff_left_of_right_is_identity() {
        for bits in [
            vec![1, 1, 1, 1],
            vec![0, 0, 0],
            vec![1, 0, 1],
            vec![1, 1, 0],
        ] {
            let r = RingTopology::from_bits(&bits).unwrap();
            let paper_oriented = (0..r.n()).all(|i| r.left_of(r.right_of(i)) == i);
            assert_eq!(r.is_oriented(), paper_oriented, "bits {bits:?}");
        }
    }

    #[test]
    fn quasi_orientation() {
        assert!(RingTopology::from_bits(&[1, 1, 1])
            .unwrap()
            .is_quasi_oriented());
        assert!(RingTopology::from_bits(&[1, 0, 1, 0])
            .unwrap()
            .is_quasi_oriented());
        assert!(!RingTopology::from_bits(&[1, 1, 0])
            .unwrap()
            .is_quasi_oriented());
        // Odd rings cannot alternate.
        assert!(!RingTopology::from_bits(&[1, 0, 1])
            .unwrap()
            .is_quasi_oriented());
    }

    #[test]
    fn switching_flips_selected_processors() {
        let r = RingTopology::from_bits(&[1, 0, 1]).unwrap();
        let s = r.with_switched(&[false, true, false]);
        assert!(s.is_oriented());
        assert_eq!(s.orientation(1), Orientation::Clockwise);
    }

    #[test]
    fn wrap_arithmetic() {
        let r = cw(5);
        assert_eq!(r.wrap(0, -1), 4);
        assert_eq!(r.wrap(4, 2), 1);
        assert_eq!(r.wrap(2, -7), 0);
    }
}
