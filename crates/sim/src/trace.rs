//! Space-time traces of ring computations.
//!
//! The paper's arguments are all about *which cycles carry messages and
//! where*: symmetry means many processors send simultaneously; silence
//! carries information. A [`Trace`] records every send and renders an
//! ASCII space-time diagram — one row per cycle, one column per
//! processor — that makes both phenomena visible.
//!
//! `Trace` is an [`Observer`] over the unified
//! [`crate::runtime::TraceEvent`] stream, so the same rendering works for
//! synchronous runs (rows are cycles) and asynchronous runs (rows are
//! arrival epochs).

use std::fmt;

use crate::runtime::{Observer, TraceEvent};

pub use crate::runtime::SendEvent;

/// A recorded synchronous run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    n: usize,
    events: Vec<SendEvent>,
    /// One past the latest time index observed on *any* event (sends,
    /// deliveries, halts) — so a run that goes quiet, or never sends at
    /// all, still reports its full extent.
    horizon: u64,
}

impl Trace {
    /// An empty trace for a ring of `n` processors.
    #[must_use]
    pub fn new(n: usize) -> Trace {
        Trace {
            n,
            events: Vec::new(),
            horizon: 0,
        }
    }

    /// Records one send.
    pub fn record(&mut self, event: SendEvent) {
        self.extend_horizon(event.cycle);
        self.events.push(event);
    }

    /// Extends the trace's extent to cover time index `time` without
    /// recording a send — used when replaying recordings whose non-send
    /// events (deliveries, halts) outlast the final send.
    pub fn extend_horizon(&mut self, time: u64) {
        self.horizon = self.horizon.max(time + 1);
    }

    /// All recorded sends, in chronological order.
    #[must_use]
    pub fn events(&self) -> &[SendEvent] {
        &self.events
    }

    /// Messages sent per cycle.
    ///
    /// Index 0 is always the run's **first cycle**, even when no send
    /// happens before some cycle `k` — leading quiet cycles appear as
    /// explicit zeros, and the vector extends through the latest observed
    /// event of any kind (a zero-send run over `c` cycles yields `c`
    /// zeros, not an empty vector).
    #[must_use]
    pub fn per_cycle(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.horizon as usize];
        for e in &self.events {
            counts[e.cycle as usize] += 1;
        }
        counts
    }

    /// Renders the space-time diagram: rows are cycles (quiet tail rows
    /// elided), columns processors; `>` is a clockwise send (to the
    /// higher index, wrapping), `<` counterclockwise, `X` both.
    #[must_use]
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let per_cycle = self.per_cycle();
        let total_cycles = per_cycle.len();
        let header: String = (0..self.n)
            .map(|i| ((i % 10) as u8 + b'0') as char)
            .collect();
        out.push_str(&format!("cycle  {header}\n"));
        let mut rendered = 0usize;
        for cycle in 0..total_cycles {
            if per_cycle[cycle] == 0 {
                continue;
            }
            if rendered >= max_rows {
                out.push_str(&format!(
                    "  ...  ({} more active cycles)\n",
                    per_cycle[cycle..].iter().filter(|&&c| c > 0).count()
                ));
                break;
            }
            rendered += 1;
            let mut row = vec![b'.'; self.n];
            for e in self.events.iter().filter(|e| e.cycle == cycle as u64) {
                let clockwise = e.to == (e.from + 1) % self.n;
                let mark = if clockwise { b'>' } else { b'<' };
                row[e.from] = match row[e.from] {
                    b'.' => mark,
                    prev if prev == mark => mark,
                    _ => b'X',
                };
            }
            out.push_str(&format!(
                "{cycle:>5}  {}\n",
                String::from_utf8(row).expect("ascii")
            ));
        }
        out.push_str(&format!(
            "({} messages over {} cycles, {} of them active)\n",
            self.events.len(),
            total_cycles,
            per_cycle.iter().filter(|&&c| c > 0).count()
        ));
        out
    }
}

impl Observer for Trace {
    fn on_event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Send(send) => self.record(*send),
            TraceEvent::Deliver { .. } | TraceEvent::Halt { .. } => {
                self.extend_horizon(event.time());
            }
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
    use crate::RingTopology;

    #[derive(Debug)]
    struct OneShot;
    impl SyncProcess for OneShot {
        type Msg = u8;
        type Output = ();
        fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
            if cycle == 0 {
                Step::send_right(1).and_halt(())
            } else {
                Step::halt(())
            }
        }
    }

    #[test]
    fn traces_record_all_sends() {
        let topo = RingTopology::oriented(4).unwrap();
        let mut engine = SyncEngine::new(topo, vec![OneShot, OneShot, OneShot, OneShot]).unwrap();
        let (report, trace) = engine.run_traced().unwrap();
        assert_eq!(trace.events().len() as u64, report.messages);
        assert_eq!(trace.per_cycle(), vec![4]);
        let art = trace.render(10);
        assert!(art.contains(">>>>"), "{art}");
        assert!(art.contains("4 messages"));
    }

    #[test]
    fn zero_send_runs_report_their_full_extent() {
        #[derive(Debug)]
        struct Mute;
        impl SyncProcess for Mute {
            type Msg = u8;
            type Output = ();
            fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
                if cycle == 3 {
                    Step::halt(())
                } else {
                    Step::idle()
                }
            }
        }
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(topo, vec![Mute, Mute, Mute]).unwrap();
        let (report, trace) = engine.run_traced().unwrap();
        assert_eq!(report.messages, 0);
        // Index 0 is the first cycle even though nothing was ever sent:
        // four quiet cycles (0..=3, the halt cycle) as explicit zeros.
        assert_eq!(trace.per_cycle(), vec![0, 0, 0, 0]);
        let art = trace.render(10);
        assert!(art.contains("0 messages over 4 cycles"), "{art}");
    }

    #[test]
    fn late_start_runs_pad_leading_quiet_cycles() {
        #[derive(Debug)]
        struct LateSend;
        impl SyncProcess for LateSend {
            type Msg = u8;
            type Output = ();
            fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
                match cycle {
                    2 => Step::send_right(1).and_halt(()),
                    _ => Step::idle(),
                }
            }
        }
        let topo = RingTopology::oriented(2).unwrap();
        let mut engine = SyncEngine::new(topo, vec![LateSend, LateSend]).unwrap();
        let (_, trace) = engine.run_traced().unwrap();
        assert_eq!(trace.per_cycle(), vec![0, 0, 2]);
    }

    #[test]
    fn quiet_cycles_are_elided() {
        #[derive(Debug)]
        struct LateSend;
        impl SyncProcess for LateSend {
            type Msg = u8;
            type Output = ();
            fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
                match cycle {
                    5 => Step::send_left(1).and_halt(()),
                    _ => Step::idle(),
                }
            }
        }
        let topo = RingTopology::oriented(3).unwrap();
        let mut engine = SyncEngine::new(topo, vec![LateSend, LateSend, LateSend]).unwrap();
        let (_, trace) = engine.run_traced().unwrap();
        let art = trace.render(10);
        // Only one rendered row despite 6 cycles.
        assert_eq!(art.matches('\n').count(), 3, "{art}");
        assert!(art.contains("<<<"), "{art}");
    }
}
