//! Property tests for the simulation substrate: topology, neighborhoods,
//! symmetry indices and wake schedules.

use anonring_sim::{
    joint_symmetry_index, neighborhood, symmetry_index, Orientation, Port, RingConfig,
    RingTopology, WakeSchedule,
};
use proptest::prelude::*;

fn arb_orientations(max_n: usize) -> impl Strategy<Value = Vec<Orientation>> {
    (2..=max_n)
        .prop_flat_map(|n| proptest::collection::vec((0u8..=1).prop_map(Orientation::from_bit), n))
}

fn arb_config(max_n: usize) -> impl Strategy<Value = RingConfig<u8>> {
    (2..=max_n)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0u8..=1, n),
                proptest::collection::vec((0u8..=1).prop_map(Orientation::from_bit), n),
            )
        })
        .prop_map(|(i, o)| RingConfig::new(i, o).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sending on a port and replying on the arrival port returns to the
    /// sender — channels are symmetric.
    #[test]
    fn topology_channels_are_symmetric(orient in arb_orientations(16)) {
        let topo = RingTopology::new(orient).unwrap();
        for i in 0..topo.n() {
            for p in [Port::Left, Port::Right] {
                let (j, q) = topo.neighbor(i, p);
                prop_assert_eq!(topo.neighbor(j, q), (i, p));
            }
        }
    }

    /// The ring is oriented iff every rightward message arrives on a left
    /// port; for `n ≥ 3` this coincides with the paper's index-level
    /// `left(right(i)) = i` characterization (which is vacuous at
    /// `n = 2`, where any successor map is its own inverse).
    #[test]
    fn oriented_characterization(orient in arb_orientations(16)) {
        let topo = RingTopology::new(orient).unwrap();
        let ports = (0..topo.n()).all(|i| topo.neighbor(i, Port::Right).1 == Port::Left);
        prop_assert_eq!(topo.is_oriented(), ports);
        if topo.n() >= 3 {
            let paper = (0..topo.n()).all(|i| topo.left_of(topo.right_of(i)) == i);
            prop_assert_eq!(topo.is_oriented(), paper);
        }
    }

    /// Switching twice restores the original wiring.
    #[test]
    fn switching_is_an_involution(orient in arb_orientations(12), mask in any::<u16>()) {
        let topo = RingTopology::new(orient).unwrap();
        let switches: Vec<bool> = (0..topo.n()).map(|i| mask >> i & 1 == 1).collect();
        let twice = topo.with_switched(&switches).with_switched(&switches);
        prop_assert_eq!(twice, topo);
    }

    /// Equal (k+1)-neighborhoods imply equal k-neighborhoods.
    #[test]
    fn neighborhood_radius_monotone(config in arb_config(10), k in 0usize..4) {
        for i in 0..config.n() {
            for j in 0..config.n() {
                if neighborhood(&config, i, k + 1) == neighborhood(&config, j, k + 1) {
                    prop_assert_eq!(
                        neighborhood(&config, i, k),
                        neighborhood(&config, j, k)
                    );
                }
            }
        }
    }

    /// The symmetry index is invariant under rotating the configuration.
    #[test]
    fn symmetry_index_rotation_invariant(config in arb_config(10), r in 0usize..10, k in 0usize..4) {
        let rotated = config.rotated(r % config.n());
        prop_assert_eq!(symmetry_index(&config, k), symmetry_index(&rotated, k));
    }

    /// Mirroring is physically invisible: the symmetry index is unchanged
    /// and every processor's neighborhood survives at its mirror image.
    #[test]
    fn mirror_preserves_neighborhoods(config in arb_config(10), k in 0usize..4) {
        let mirrored = config.mirrored();
        prop_assert_eq!(symmetry_index(&config, k), symmetry_index(&mirrored, k));
        let n = config.n();
        for i in 0..n {
            prop_assert_eq!(
                neighborhood(&config, i, k),
                neighborhood(&mirrored, n - 1 - i, k),
                "processor {} vs mirror {}", i, n - 1 - i
            );
        }
    }

    /// The joint index of a configuration with itself is exactly twice
    /// the single index.
    #[test]
    fn joint_index_doubles(config in arb_config(10), k in 0usize..4) {
        prop_assert_eq!(
            joint_symmetry_index(&[config.clone(), config.clone()], k),
            2 * symmetry_index(&config, k)
        );
    }

    /// Every word walk that wraps produces a legal schedule and
    /// `from_times` round-trips it.
    #[test]
    fn wake_schedules_round_trip(word in proptest::collection::vec(0u8..=1, 2..20)) {
        let ones = word.iter().filter(|&&b| b == 1).count();
        let zeros = word.len() - ones;
        prop_assume!(ones.abs_diff(zeros) <= 1);
        // Balanced or near-balanced walks may still wrap illegally if the
        // first step goes the wrong way; only assert when legal.
        if let Ok(w) = WakeSchedule::from_word(&word) {
            prop_assert!(WakeSchedule::from_times(w.as_slice().to_vec()).is_ok());
            prop_assert!(w.as_slice().contains(&0), "normalized to min 0");
        }
    }
}
