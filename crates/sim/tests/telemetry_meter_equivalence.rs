//! Property: the telemetry layer and the cost meter never disagree.
//!
//! Both derive from the single send path in `runtime::LinkFabric`, so for
//! any run — either engine, any adversarial schedule — the [`Telemetry`]
//! observer's totals and its [`MetricsRegistry`] snapshot must equal the
//! engine report's metered `messages`/`bits` figures exactly. (Deliveries
//! are compared in the async model only: the sync engine's end-of-run
//! drain discards in-flight messages without emitting deliver events.)

use anonring_sim::r#async::{
    Actions, AsyncEngine, AsyncProcess, FifoScheduler, RandomScheduler, Scheduler,
    SynchronizingScheduler,
};
use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
use anonring_sim::telemetry::{MetricId, Telemetry};
use anonring_sim::{Port, RingTopology};
use proptest::prelude::*;

/// Synchronous: a processor that chatters on a cycle-dependent pattern
/// (sometimes spanned, sometimes not, sometimes silent) for `rounds`
/// cycles, then halts — leaving its final sends in flight so the drain
/// path is exercised too.
#[derive(Debug)]
struct Chatter {
    seed: u8,
    rounds: u64,
}

impl SyncProcess for Chatter {
    type Msg = u8;
    type Output = ();
    fn step(&mut self, cycle: u64, _rx: Received<u8>) -> Step<u8, ()> {
        let step = match (cycle + u64::from(self.seed)) % 4 {
            0 => Step::send_both(self.seed, self.seed).in_span("both", cycle),
            1 => Step::send_left(self.seed.wrapping_add(1)),
            2 => Step::send_right(self.seed.wrapping_mul(3)).in_span("right", cycle),
            _ => Step::idle(),
        };
        if cycle + 1 >= self.rounds {
            step.and_halt(())
        } else {
            step
        }
    }
}

/// Asynchronous: every processor scatters one message with `ttl`
/// remaining hops in each direction; relays decrement the TTL. Each
/// processor therefore receives exactly `ttl` messages per direction
/// (when `2·ttl < n`... in general, exactly `2·ttl` deliveries counting
/// multiplicity) and halts after the last one — quiescence with
/// universal halt under every schedule.
#[derive(Debug)]
struct Scatter {
    ttl: u8,
    received: u8,
}

impl AsyncProcess for Scatter {
    type Msg = u8;
    type Output = ();
    fn on_start(&mut self) -> Actions<u8, ()> {
        Actions::send(Port::Left, self.ttl - 1)
            .and_send(Port::Right, self.ttl - 1)
            .in_span("scatter", 0)
    }
    fn on_message(&mut self, from: Port, hops_left: u8) -> Actions<u8, ()> {
        self.received += 1;
        let mut actions = if hops_left > 0 {
            Actions::send(from.opposite(), hops_left - 1).in_span("relay", u64::from(hops_left))
        } else {
            Actions::idle()
        };
        if self.received == 2 * self.ttl {
            actions = actions.and_halt(());
        }
        actions
    }
}

fn assert_registry_matches(telemetry: &Telemetry, messages: u64, bits: u64) {
    assert_eq!(telemetry.messages(), messages, "observer messages");
    assert_eq!(telemetry.bits(), bits, "observer bits");
    let registry = telemetry.registry();
    assert_eq!(
        registry.counter(&MetricId::plain("messages_total")),
        messages,
        "registry messages"
    );
    assert_eq!(
        registry.counter(&MetricId::plain("bits_total")),
        bits,
        "registry bits"
    );
    // Per-processor counters partition the total.
    let per_proc: u64 = (0..telemetry.n())
        .map(|i| {
            let proc = i.to_string();
            registry.counter(&MetricId::with_labels("messages_total", &[("proc", &proc)]))
        })
        .sum();
    assert_eq!(per_proc, messages, "per-proc partition");
    // So do the spans (plus the unspanned bucket).
    let spanned: u64 = telemetry
        .phase_profile()
        .iter()
        .map(|(_, s)| s.messages)
        .sum();
    assert_eq!(
        spanned + telemetry.unspanned().messages,
        messages,
        "span partition"
    );
    // And the per-time histogram.
    let per_time: u64 = telemetry.per_time_messages().iter().sum();
    assert_eq!(per_time, messages, "per-time partition");
}

fn check_sync(n: usize, rounds: u64) {
    let topology = RingTopology::oriented(n).unwrap();
    let procs = (0..n)
        .map(|i| Chatter {
            seed: i as u8,
            rounds,
        })
        .collect();
    let mut engine = SyncEngine::new(topology, procs).unwrap();
    let mut telemetry = Telemetry::new(n);
    let report = engine.run_with_observer(&mut telemetry).unwrap();
    assert_registry_matches(&telemetry, report.messages, report.bits);
}

fn check_async(n: usize, ttl: u8, scheduler: &mut dyn Scheduler) {
    let topology = RingTopology::oriented(n).unwrap();
    let procs = (0..n).map(|_| Scatter { ttl, received: 0 }).collect();
    let mut engine = AsyncEngine::new(topology, procs).unwrap();
    let mut telemetry = Telemetry::new(n);
    let report = engine.run_with_observer(scheduler, &mut telemetry).unwrap();
    assert_registry_matches(&telemetry, report.messages, report.bits);
    // Every send is eventually delivered (consumed or dropped) in the
    // async model, and the deliver events must account for all of them.
    assert_eq!(telemetry.deliveries() + telemetry.drops(), report.messages);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sync_engine_telemetry_equals_meter(n in 2usize..=9, rounds in 1u64..=7) {
        check_sync(n, rounds);
    }

    #[test]
    fn async_engine_telemetry_equals_meter_under_adversarial_schedules(
        n in 2usize..=9,
        ttl in 1u8..=4,
        seed in any::<u64>(),
    ) {
        check_async(n, ttl, &mut RandomScheduler::new(seed));
        check_async(n, ttl, &mut SynchronizingScheduler);
        check_async(n, ttl, &mut FifoScheduler);
    }
}
