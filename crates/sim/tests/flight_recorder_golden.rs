//! Golden test: the flight-recorder JSONL format is pinned byte for byte.
//!
//! Downstream tooling (the `tracer` binary, external analysis scripts)
//! parses these artifacts; changing the format requires bumping
//! `RECORDING_VERSION` and updating the expected text here deliberately.

use anonring_sim::port::Port;
use anonring_sim::runtime::{FanOut, Observer, SendEvent, Span, TraceEvent};
use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
use anonring_sim::telemetry::{FlightRecorder, Recording, Telemetry, RECORDING_VERSION};
use anonring_sim::RingTopology;

const GOLDEN: &str = r#"{"type":"meta","version":1,"n":3,"label":"golden \"v1\"","truncated":0}
{"type":"send","t":0,"from":0,"to":1,"port":"left","bits":4,"phase":"labels","round":2}
{"type":"send","t":0,"from":2,"to":1,"port":"right","bits":7}
{"type":"deliver","t":1,"to":1,"port":"left","dropped":false}
{"type":"deliver","t":1,"to":1,"port":"right","dropped":true}
{"type":"halt","t":2,"proc":1}
"#;

fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Send(SendEvent {
            cycle: 0,
            from: 0,
            to: 1,
            port: Port::Left,
            bits: 4,
            span: Some(Span::new("labels", 2)),
        }),
        TraceEvent::Send(SendEvent {
            cycle: 0,
            from: 2,
            to: 1,
            port: Port::Right,
            bits: 7,
            span: None,
        }),
        TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: Port::Left,
            dropped: false,
        },
        TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: Port::Right,
            dropped: true,
        },
        TraceEvent::Halt {
            time: 2,
            processor: 1,
        },
    ]
}

#[test]
fn serialization_matches_the_golden_text_exactly() {
    assert_eq!(RECORDING_VERSION, 1, "format change requires a new golden");
    let mut recorder = FlightRecorder::new(3, "golden \"v1\"");
    for event in golden_events() {
        recorder.on_event(&event);
    }
    assert_eq!(recorder.to_jsonl(), GOLDEN);
}

#[test]
fn golden_text_round_trips_byte_identically() {
    let recording = Recording::parse_jsonl(GOLDEN).unwrap();
    assert_eq!(recording.n, 3);
    assert_eq!(recording.label, "golden \"v1\"");
    assert_eq!(recording.events.len(), 5);
    assert_eq!(recording.to_jsonl(), GOLDEN);
}

/// A real engine run, recorded through FanOut, must round-trip through
/// the parser byte-identically too — not just hand-picked events.
#[test]
fn live_run_round_trips_through_the_replay_parser() {
    #[derive(Debug)]
    struct PingRing;
    impl SyncProcess for PingRing {
        type Msg = u8;
        type Output = ();
        fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, ()> {
            match cycle {
                0 => Step::send_right(1).in_span("ping", 0),
                1 => {
                    let got = rx.from_left.unwrap_or(0);
                    Step::send_right(got + 1).in_span("ping", 1)
                }
                _ => Step::halt(()),
            }
        }
    }
    let n = 4;
    let topology = RingTopology::oriented(n).unwrap();
    let procs = (0..n).map(|_| PingRing).collect();
    let mut engine = SyncEngine::new(topology, procs).unwrap();
    let mut telemetry = Telemetry::new(n);
    let mut recorder = FlightRecorder::new(n, "live");
    {
        let mut fan = FanOut::new().with(&mut telemetry).with(&mut recorder);
        engine.run_with_observer(&mut fan).unwrap();
    }
    let jsonl = recorder.to_jsonl();
    let recording = Recording::parse_jsonl(&jsonl).unwrap();
    assert_eq!(recording.to_jsonl(), jsonl, "byte-identical round-trip");
    // The recording and the aggregating observer saw the same stream.
    assert_eq!(recording.messages(), telemetry.messages());
    assert_eq!(recording.bits(), telemetry.bits());
    assert_eq!(
        recording.phase_profile().len(),
        telemetry.phase_profile().len()
    );
}
