//! Golden test: the flight-recorder JSONL format is pinned byte for byte.
//!
//! Downstream tooling (the `tracer` and `audit` binaries, external
//! analysis scripts) parses these artifacts; changing the format requires
//! bumping `RECORDING_VERSION` and updating the expected text here
//! deliberately. Version-1 artifacts (recorded before causal stamps) must
//! keep parsing and re-serializing byte-identically forever.

use anonring_sim::port::PortId;
use anonring_sim::runtime::{FanOut, Observer, SendEvent, Span, TraceEvent};
use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess};
use anonring_sim::telemetry::{
    FlightRecorder, Recording, Telemetry, OLDEST_PARSEABLE_VERSION, RECORDING_VERSION,
};
use anonring_sim::RingTopology;

const GOLDEN_V2: &str = r#"{"type":"meta","version":2,"n":3,"label":"golden \"v2\"","truncated":0}
{"type":"send","t":0,"from":0,"to":1,"port":"left","bits":4,"seq":0,"lam":1,"phase":"labels","round":2}
{"type":"send","t":0,"from":2,"to":1,"port":"right","bits":7,"seq":1,"lam":1}
{"type":"deliver","t":1,"to":1,"port":"left","seq":0,"dropped":false}
{"type":"deliver","t":1,"to":1,"port":"right","seq":1,"dropped":true}
{"type":"send","t":1,"from":1,"to":2,"port":"right","bits":2,"seq":2,"lam":2,"parent":0}
{"type":"halt","t":2,"proc":1}
"#;

/// A pre-causal artifact, as committed by earlier revisions of the repo.
const GOLDEN_V1: &str = r#"{"type":"meta","version":1,"n":3,"label":"golden \"v1\"","truncated":0}
{"type":"send","t":0,"from":0,"to":1,"port":"left","bits":4,"phase":"labels","round":2}
{"type":"send","t":0,"from":2,"to":1,"port":"right","bits":7}
{"type":"deliver","t":1,"to":1,"port":"left","dropped":false}
{"type":"deliver","t":1,"to":1,"port":"right","dropped":true}
{"type":"halt","t":2,"proc":1}
"#;

fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Send(SendEvent {
            cycle: 0,
            from: 0,
            to: 1,
            port: PortId::LEFT,
            bits: 4,
            seq: 0,
            lamport: 1,
            parent: None,
            span: Some(Span::new("labels", 2)),
        }),
        TraceEvent::Send(SendEvent {
            cycle: 0,
            from: 2,
            to: 1,
            port: PortId::RIGHT,
            bits: 7,
            seq: 1,
            lamport: 1,
            parent: None,
            span: None,
        }),
        TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: PortId::LEFT,
            seq: 0,
            dropped: false,
        },
        TraceEvent::Deliver {
            time: 1,
            to: 1,
            port: PortId::RIGHT,
            seq: 1,
            dropped: true,
        },
        TraceEvent::Send(SendEvent {
            cycle: 1,
            from: 1,
            to: 2,
            port: PortId::RIGHT,
            bits: 2,
            seq: 2,
            lamport: 2,
            parent: Some(0),
            span: None,
        }),
        TraceEvent::Halt {
            time: 2,
            processor: 1,
        },
    ]
}

#[test]
fn serialization_matches_the_golden_text_exactly() {
    assert_eq!(RECORDING_VERSION, 2, "format change requires a new golden");
    assert_eq!(
        OLDEST_PARSEABLE_VERSION, 1,
        "v1 artifacts must keep parsing"
    );
    let mut recorder = FlightRecorder::new(3, "golden \"v2\"");
    for event in golden_events() {
        recorder.on_event(&event);
    }
    assert_eq!(recorder.to_jsonl(), GOLDEN_V2);
}

#[test]
fn golden_text_round_trips_byte_identically() {
    let recording = Recording::parse_jsonl(GOLDEN_V2).unwrap();
    assert_eq!(recording.version, 2);
    assert_eq!(recording.n, 3);
    assert_eq!(recording.label, "golden \"v2\"");
    assert_eq!(recording.events.len(), 6);
    assert_eq!(recording.to_jsonl(), GOLDEN_V2);
}

/// Archived v1 recordings parse (causal fields default to zero / absent)
/// and re-serialize in their own version, byte-identically.
#[test]
fn version_1_artifacts_still_parse_and_round_trip() {
    let recording = Recording::parse_jsonl(GOLDEN_V1).unwrap();
    assert_eq!(recording.version, 1);
    assert_eq!(recording.events.len(), 5);
    assert_eq!(recording.to_jsonl(), GOLDEN_V1);
}

/// Malformed causal edges are parse errors with the 1-based line number
/// and a snippet of the offending line, like any other parse failure.
#[test]
fn malformed_causal_edges_report_line_and_snippet() {
    // A parent edge naming a send that never happened.
    let orphan = "{\"type\":\"meta\",\"version\":2,\"n\":2,\"label\":\"bad\",\"truncated\":0}\n\
                  {\"type\":\"send\",\"t\":0,\"from\":0,\"to\":1,\"port\":\"left\",\"bits\":1,\"seq\":0,\"lam\":1}\n\
                  {\"type\":\"send\",\"t\":1,\"from\":1,\"to\":0,\"port\":\"left\",\"bits\":1,\"seq\":1,\"lam\":2,\"parent\":7}\n";
    let err = Recording::parse_jsonl(orphan).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.message.contains("\"parent\":7"), "{err}");
    assert!(err.to_string().contains("line 3"), "{err}");
    assert!(err.to_string().contains("(in: "), "snippet shown: {err}");

    // Send sequence numbers must be strictly increasing.
    let out_of_order = "{\"type\":\"meta\",\"version\":2,\"n\":2,\"label\":\"bad\",\"truncated\":0}\n\
                        {\"type\":\"send\",\"t\":0,\"from\":0,\"to\":1,\"port\":\"left\",\"bits\":1,\"seq\":5,\"lam\":1}\n\
                        {\"type\":\"send\",\"t\":1,\"from\":1,\"to\":0,\"port\":\"left\",\"bits\":1,\"seq\":5,\"lam\":2}\n";
    let err = Recording::parse_jsonl(out_of_order).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.message.contains("out of order"), "{err}");

    // A delivery of a send that was never recorded.
    let ghost = "{\"type\":\"meta\",\"version\":2,\"n\":2,\"label\":\"bad\",\"truncated\":0}\n\
                 {\"type\":\"deliver\",\"t\":1,\"to\":1,\"port\":\"left\",\"seq\":9,\"dropped\":false}\n";
    let err = Recording::parse_jsonl(ghost).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("\"seq\":9"), "{err}");
}

/// Truncated (ring-buffered) recordings skip causal validation: the
/// evicted prefix may hold the parents and earlier sequence numbers.
#[test]
fn truncated_recordings_skip_causal_validation() {
    let truncated = "{\"type\":\"meta\",\"version\":2,\"n\":2,\"label\":\"cut\",\"truncated\":3}\n\
                     {\"type\":\"send\",\"t\":4,\"from\":0,\"to\":1,\"port\":\"left\",\"bits\":1,\"seq\":8,\"lam\":9,\"parent\":2}\n";
    let recording = Recording::parse_jsonl(truncated).unwrap();
    assert_eq!(recording.truncated, 3);
    assert_eq!(recording.events.len(), 1);
}

/// A real engine run, recorded through FanOut, must round-trip through
/// the replay parser byte-identically too — not just hand-picked events.
#[test]
fn live_run_round_trips_through_the_replay_parser() {
    #[derive(Debug)]
    struct PingRing;
    impl SyncProcess for PingRing {
        type Msg = u8;
        type Output = ();
        fn step(&mut self, cycle: u64, rx: Received<u8>) -> Step<u8, ()> {
            match cycle {
                0 => Step::send_right(1).in_span("ping", 0),
                1 => {
                    let got = rx.from_left.unwrap_or(0);
                    Step::send_right(got + 1).in_span("ping", 1)
                }
                _ => Step::halt(()),
            }
        }
    }
    let n = 4;
    let topology = RingTopology::oriented(n).unwrap();
    let procs = (0..n).map(|_| PingRing).collect();
    let mut engine = SyncEngine::new(topology, procs).unwrap();
    let mut telemetry = Telemetry::new(n);
    let mut recorder = FlightRecorder::new(n, "live");
    {
        let mut fan = FanOut::new().with(&mut telemetry).with(&mut recorder);
        engine.run_with_observer(&mut fan).unwrap();
    }
    let jsonl = recorder.to_jsonl();
    let recording = Recording::parse_jsonl(&jsonl).unwrap();
    assert_eq!(recording.version, RECORDING_VERSION);
    assert_eq!(recording.to_jsonl(), jsonl, "byte-identical round-trip");
    // The recording and the aggregating observer saw the same stream.
    assert_eq!(recording.messages(), telemetry.messages());
    assert_eq!(recording.bits(), telemetry.bits());
    assert_eq!(
        recording.phase_profile().len(),
        telemetry.phase_profile().len()
    );
}
