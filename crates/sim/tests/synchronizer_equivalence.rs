//! Property tests for the §3 synchronizer adapter and the shared runtime's
//! wake-schedule handling.
//!
//! The §3 claim: wrapping any synchronous algorithm in [`Synchronized`]
//! and running it on the asynchronous engine — under *any* adversary —
//! produces the same outputs as running it directly on the synchronous
//! engine, at a message overhead of exactly two envelopes per simulated
//! cycle per processor. Because every envelope costs 2 header bits plus
//! its payload, the bit overhead is exactly `2 × envelopes`, so both the
//! output and the entire cost ledger of the async run are determined by
//! the sync run.

use anonring_sim::r#async::{
    AsyncEngine, FifoScheduler, LifoScheduler, RandomScheduler, Scheduler, SynchronizingScheduler,
};
use anonring_sim::sync::{Emit, Received, Step, SyncEngine, SyncProcess, SyncReport};
use anonring_sim::synchronizer::Synchronized;
use anonring_sim::{Orientation, Port, RingConfig};
use proptest::collection::vec;
use proptest::prelude::*;

/// A deterministic synchronous algorithm with input-dependent halt times,
/// input-dependent silence patterns, and order-sensitive state folding —
/// anything the adapter gets wrong (a lost payload, a misattributed port,
/// a phantom message where the sync run had silence, an extra simulated
/// cycle) changes some processor's output or halt cycle.
#[derive(Debug, Clone)]
struct Mixer {
    input: u8,
    acc: u64,
}

impl Mixer {
    fn new(input: u8) -> Mixer {
        Mixer {
            input,
            acc: u64::from(input).wrapping_mul(0x9e37_79b9),
        }
    }

    /// Local cycle at which this processor halts (its `step` runs for
    /// local cycles `0..=horizon`).
    fn horizon(&self) -> u64 {
        1 + u64::from(self.input % 4)
    }
}

impl SyncProcess for Mixer {
    type Msg = u64;
    type Output = u64;

    fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
        // Non-commutative folding: swapping the ports or reordering
        // deliveries changes the output.
        if let Some(&m) = rx.on(Port::Left) {
            self.acc = self.acc.wrapping_mul(1_000_003).wrapping_add(m);
        }
        if let Some(&m) = rx.on(Port::Right) {
            self.acc = self.acc.wrapping_mul(999_983).wrapping_add(m ^ 0xff);
        }
        if cycle >= self.horizon() {
            return Step::halt(self.acc);
        }
        match (cycle + u64::from(self.input)) % 3 {
            0 => Step::send_both(self.acc ^ cycle, u64::from(self.input)),
            1 => Step::send_left(self.acc.wrapping_add(cycle)),
            _ => Step::idle(), // silence carries information too
        }
    }
}

fn ring(inputs: &[u8], flips: &[bool]) -> RingConfig<u8> {
    let orientations: Vec<Orientation> = flips
        .iter()
        .map(|&f| {
            if f {
                Orientation::Counterclockwise
            } else {
                Orientation::Clockwise
            }
        })
        .collect();
    RingConfig::new(inputs.to_vec(), orientations).expect("same length")
}

fn run_sync(config: &RingConfig<u8>) -> SyncReport<u64> {
    SyncEngine::from_config(config, |_, &input| Mixer::new(input))
        .run()
        .expect("mixer halts")
}

fn check_equivalence(
    config: &RingConfig<u8>,
    scheduler: &mut dyn Scheduler,
    is_synchronizing: bool,
) -> Result<(), TestCaseError> {
    let sync = run_sync(config);
    let async_report =
        AsyncEngine::from_config(config, |_, &input| Synchronized::new(Mixer::new(input)))
            .run(scheduler)
            .expect("adapter halts");

    // Output equivalence: the adapter preserves the synchronous semantics
    // exactly, under any adversary.
    prop_assert_eq!(async_report.outputs(), sync.outputs());

    // Cost equivalence. Processor i executes local cycles 0..=h_i and
    // sends one envelope per port per cycle: 2·(h_i + 1) envelopes. With
    // every processor awake at cycle 0, h_i is the global halt cycle.
    let envelopes: u64 = sync.halt_cycles.iter().map(|h| 2 * (h + 1)).sum();
    prop_assert_eq!(async_report.messages, envelopes);
    // Each envelope costs 2 header bits + its payload; total payload bits
    // across all envelopes are exactly the direct run's bits.
    prop_assert_eq!(async_report.bits, 2 * envelopes + sync.bits);
    prop_assert_eq!(async_report.deliveries, async_report.messages);

    // Under the synchronizing adversary the simulation is lock-step until
    // the first processor halts (cycle-c envelopes arrive at epoch c + 1),
    // so the epoch count reaches at least the earliest halt. After a halt,
    // closed ports let neighbours batch several simulated cycles into one
    // event, so epochs never exceed the direct run's cycle count.
    if is_synchronizing {
        let earliest_halt = sync.halt_cycles.iter().min().copied().unwrap_or(0);
        prop_assert!(
            async_report.max_epoch > earliest_halt,
            "max_epoch {} <= earliest halt {}",
            async_report.max_epoch,
            earliest_halt
        );
        prop_assert!(
            async_report.max_epoch <= sync.cycles,
            "max_epoch {} > sync cycles {}",
            async_report.max_epoch,
            sync.cycles
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adapter_matches_direct_run_under_every_adversary(
        params in (2usize..=8).prop_flat_map(|n| {
            (vec(0u8..=255, n), vec(any::<bool>(), n), any::<u64>())
        }),
    ) {
        let (inputs, flips, seed) = params;
        let config = ring(&inputs, &flips);
        check_equivalence(&config, &mut SynchronizingScheduler, true)?;
        check_equivalence(&config, &mut FifoScheduler, false)?;
        check_equivalence(&config, &mut LifoScheduler, false)?;
        check_equivalence(&config, &mut RandomScheduler::new(seed), false)?;
    }

    /// Wake schedules shift local clocks rigidly: a processor that never
    /// receives a message halts at global cycle `wake + horizon`, and the
    /// run length is the slowest processor's halt cycle plus one. This
    /// pins the runtime's wake handling across random schedules.
    #[test]
    fn wake_schedules_shift_silent_processors_rigidly(
        wakes in (2usize..=8).prop_flat_map(|n| vec(0u64..6, n)),
    ) {
        #[derive(Debug)]
        struct SilentCountdown {
            horizon: u64,
        }
        impl SyncProcess for SilentCountdown {
            type Msg = u64;
            type Output = u64;
            fn step(&mut self, cycle: u64, rx: Received<u64>) -> Step<u64, u64> {
                assert!(rx.is_empty(), "nobody sends");
                if cycle >= self.horizon {
                    Step::halt(cycle)
                } else {
                    Step::idle()
                }
            }
        }
        let n = wakes.len();
        let config = RingConfig::oriented(vec![0u8; n]);
        let mut engine =
            SyncEngine::from_config(&config, |i, _| SilentCountdown { horizon: 2 + i as u64 });
        engine.set_wakeups(wakes.clone()).unwrap();
        let report = engine.run().expect("halts");
        for (i, (&wake, &halt)) in wakes.iter().zip(&report.halt_cycles).enumerate() {
            prop_assert_eq!(halt, wake + 2 + i as u64, "processor {}", i);
        }
        let last = report.halt_cycles.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(report.cycles, last + 1);
        prop_assert_eq!(report.messages, 0);
        prop_assert_eq!(report.per_cycle_messages.len() as u64, report.cycles);
    }
}
