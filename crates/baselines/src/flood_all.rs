//! The label-oblivious `Θ(n²)` baseline: everyone floods, everyone
//! learns everything.
//!
//! This is what an anonymous ring is *forced* to do for minimum finding
//! with possibly-repeated inputs (Corollary 5.2): each processor's label
//! travels `⌊n/2⌋` hops in both directions, `n(n+⊘)` messages in total.
//! On labelled rings it doubles as a correctness oracle for the election
//! algorithms.

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::Elected;

/// A flooded label with its hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodMsg {
    /// Originator's label.
    pub id: u64,
    /// Hops travelled so far.
    pub hops: u64,
}

impl Message for FloodMsg {
    fn bit_len(&self) -> usize {
        128
    }
}

/// The flooding process: collect all labels, output the maximum.
#[derive(Debug, Clone)]
pub struct FloodAll {
    n: usize,
    id: u64,
    seen: Vec<u64>,
}

impl FloodAll {
    /// Creates the process for a ring of size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, id: u64) -> FloodAll {
        assert!(n >= 2, "ring size must be at least 2");
        FloodAll {
            n,
            id,
            seen: Vec::new(),
        }
    }

    fn done(&self) -> bool {
        // Distinct labels: floor(n/2) from each side, minus the double-
        // counted antipode on even rings.
        self.seen.len() >= self.n - 1
    }

    fn finish(&self) -> Elected {
        let max = self.seen.iter().copied().max().unwrap_or(0).max(self.id);
        Elected {
            leader: max,
            is_leader: max == self.id,
        }
    }
}

impl AsyncProcess for FloodAll {
    type Msg = FloodMsg;
    type Output = Elected;

    fn on_start(&mut self) -> Actions<FloodMsg, Elected> {
        let m = FloodMsg {
            id: self.id,
            hops: 1,
        };
        Actions::send(Port::Left, m).and_send(Port::Right, m)
    }

    fn on_message(&mut self, from: Port, msg: FloodMsg) -> Actions<FloodMsg, Elected> {
        if !self.seen.contains(&msg.id) {
            self.seen.push(msg.id);
        }
        let mut actions = if msg.hops < (self.n / 2) as u64 {
            Actions::send(
                from.opposite(),
                FloodMsg {
                    id: msg.id,
                    hops: msg.hops + 1,
                },
            )
        } else {
            Actions::idle()
        };
        if self.done() {
            actions = actions.and_halt(self.finish());
        }
        actions
    }
}

/// Runs the flooding baseline on a ring of distinct labels.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if labels repeat.
pub fn run(
    config: &RingConfig<u64>,
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Elected>, SimError> {
    let mut sorted = config.inputs().to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.n(), "labels must be distinct");
    let n = config.n();
    let mut engine = AsyncEngine::from_config(config, |_, &id| FloodAll::new(n, id));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_election;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler};

    #[test]
    fn finds_maximum_on_any_orientation() {
        use anonring_sim::Orientation;
        let ids = vec![3u64, 9, 4, 1, 5];
        let orientations = vec![
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Clockwise,
            Orientation::Counterclockwise,
            Orientation::Counterclockwise,
        ];
        let config = RingConfig::new(ids.clone(), orientations).unwrap();
        for seed in 0..4 {
            let report = run(&config, &mut RandomScheduler::new(seed)).unwrap();
            assert_valid_election(&ids, report.outputs());
        }
    }

    #[test]
    fn cost_is_quadratic() {
        for n in [5usize, 10, 21, 40] {
            let ids: Vec<u64> = (1..=n as u64).collect();
            let config = RingConfig::oriented(ids);
            let report = run(&config, &mut FifoScheduler).unwrap();
            let quadratic = (n * n / 2) as u64;
            assert!(
                report.messages >= quadratic && report.messages <= 2 * quadratic + n as u64,
                "n={n}: {} messages",
                report.messages
            );
        }
    }
}
