//! Leader-driven input distribution: the paper's introduction in code.
//!
//! "Assume the ring has a unique distinguished processor, the ring
//! *leader*. The leader initiates a message; each processor appends its
//! own initial state and forwards the message; the leader receives back a
//! description of the entire ring; this message is forwarded around the
//! ring." — `2n` messages once a leader exists. Combined with an
//! `O(n log n)` election this solves input distribution on labelled rings
//! in `O(n log n)` messages, against the anonymous ring's `Θ(n²)`
//! asynchronous cost.

use anonring_sim::r#async::{
    Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler, SynchronizingScheduler,
};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::hirschberg_sinclair;

/// Collection-phase messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectMsg {
    /// Inputs gathered so far, leader first.
    Collect(Vec<u64>),
    /// The complete ring description plus hops travelled.
    Distribute {
        /// All inputs, in ring order starting at the leader.
        inputs: Vec<u64>,
        /// Hops from the leader.
        hops: u64,
    },
}

impl Message for CollectMsg {
    fn bit_len(&self) -> usize {
        match self {
            CollectMsg::Collect(v) => 1 + 64 * v.len(),
            CollectMsg::Distribute { inputs, .. } => 1 + 64 + 64 * inputs.len(),
        }
    }
}

/// A processor's complete knowledge after distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distributed {
    /// All ring inputs, starting at the leader, in the send direction.
    pub inputs: Vec<u64>,
    /// This processor's distance from the leader (its index in `inputs`).
    pub offset: u64,
}

/// The collection process (run *after* an election decided `is_leader`).
#[derive(Debug, Clone)]
pub struct LeaderCollect {
    input: u64,
    is_leader: bool,
}

impl LeaderCollect {
    /// Creates the process.
    #[must_use]
    pub fn new(input: u64, is_leader: bool) -> LeaderCollect {
        LeaderCollect { input, is_leader }
    }
}

impl AsyncProcess for LeaderCollect {
    type Msg = CollectMsg;
    type Output = Distributed;

    fn on_start(&mut self) -> Actions<CollectMsg, Distributed> {
        if self.is_leader {
            Actions::send(Port::Right, CollectMsg::Collect(vec![self.input]))
        } else {
            Actions::idle()
        }
    }

    fn on_message(&mut self, from: Port, msg: CollectMsg) -> Actions<CollectMsg, Distributed> {
        debug_assert_eq!(from, Port::Left, "collection travels rightward");
        match msg {
            CollectMsg::Collect(mut inputs) => {
                if self.is_leader {
                    // Full circle: distribute and halt.
                    Actions::send(
                        Port::Right,
                        CollectMsg::Distribute {
                            inputs: inputs.clone(),
                            hops: 1,
                        },
                    )
                    .and_halt(Distributed { inputs, offset: 0 })
                } else {
                    inputs.push(self.input);
                    Actions::send(Port::Right, CollectMsg::Collect(inputs))
                }
            }
            CollectMsg::Distribute { inputs, hops } => {
                debug_assert!(!self.is_leader, "the leader already halted");
                let out = Distributed {
                    inputs: inputs.clone(),
                    offset: hops,
                };
                Actions::send(
                    Port::Right,
                    CollectMsg::Distribute {
                        inputs,
                        hops: hops + 1,
                    },
                )
                .and_halt(out)
            }
        }
    }
}

/// Runs the collection phase given per-processor leadership flags.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented or there is not exactly one leader.
pub fn run(
    config: &RingConfig<u64>,
    leader_flags: &[bool],
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Distributed>, SimError> {
    assert!(config.topology().is_oriented(), "needs an oriented ring");
    assert_eq!(
        leader_flags.iter().filter(|&&l| l).count(),
        1,
        "exactly one leader"
    );
    let mut engine = AsyncEngine::from_config(config, |i, &input| {
        LeaderCollect::new(input, leader_flags[i])
    });
    engine.run(scheduler)
}

/// Full labelled-ring input distribution: Hirschberg–Sinclair election
/// followed by leader-driven collection. Returns the distribution report
/// and the total message/bit cost of both phases.
///
/// # Errors
///
/// Propagates engine errors from either phase.
///
/// # Panics
///
/// Panics if the ring is not oriented or labels repeat.
pub fn elect_and_distribute(
    config: &RingConfig<u64>,
) -> Result<(AsyncReport<Distributed>, u64, u64), SimError> {
    let election = hirschberg_sinclair::run(config, &mut SynchronizingScheduler)?;
    let flags: Vec<bool> = election.outputs().iter().map(|e| e.is_leader).collect();
    let collection = run(config, &flags, &mut SynchronizingScheduler)?;
    let messages = election.messages + collection.messages;
    let bits = election.bits + collection.bits;
    Ok((collection, messages, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonring_sim::r#async::FifoScheduler;

    #[test]
    fn collection_distributes_everything_in_2n_messages() {
        let ids = vec![5u64, 2, 9, 4, 7];
        let config = RingConfig::oriented(ids.clone());
        let flags = vec![false, false, true, false, false]; // 9 leads
        let report = run(&config, &flags, &mut FifoScheduler).unwrap();
        assert_eq!(report.messages, 2 * 5);
        for (i, out) in report.outputs().iter().enumerate() {
            assert_eq!(out.inputs, vec![9, 4, 7, 5, 2], "processor {i}");
            let expected_offset = (i + 5 - 2) % 5;
            assert_eq!(out.offset as usize, expected_offset, "processor {i}");
        }
    }

    #[test]
    fn elect_and_distribute_is_n_log_n_total() {
        for n in [8usize, 32, 128] {
            let ids: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 999983).collect();
            let config = RingConfig::oriented(ids.clone());
            let (report, messages, _bits) = elect_and_distribute(&config).unwrap();
            let max = ids.iter().copied().max().unwrap();
            for out in report.outputs() {
                assert_eq!(out.inputs[0], max);
                assert_eq!(out.inputs.len(), n);
            }
            let bound = 8.0 * n as f64 * ((n as f64).log2() + 2.0) + 3.0 * n as f64;
            assert!(
                (messages as f64) <= bound,
                "n={n}: {messages} messages > {bound}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exactly one leader")]
    fn rejects_multiple_leaders() {
        let config = RingConfig::oriented(vec![1u64, 2, 3]);
        let _ = run(&config, &[true, true, false], &mut FifoScheduler);
    }
}
