//! Hirschberg–Sinclair bidirectional election in `O(n log n)` messages.
//!
//! Candidates probe exponentially growing neighbourhoods: in phase `k` a
//! candidate sends its label `2ᵏ` hops in both directions. A probe is
//! swallowed by any processor with a larger label; a probe that survives
//! its full budget is answered by a reply. A candidate that collects
//! replies from both directions enters the next phase; a probe that
//! returns to its own originator has circled a ring it dominates — that
//! originator is the leader. At most `⌈log n⌉ + 1` phases of `≤ 4n`
//! messages each.

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::Elected;

/// Hirschberg–Sinclair messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsMsg {
    /// Outbound candidacy with a remaining hop budget.
    Probe {
        /// Candidate label.
        id: u64,
        /// Hops this probe may still travel.
        hops_left: u64,
    },
    /// Successful probe acknowledgement travelling back.
    Reply {
        /// Candidate label being acknowledged.
        id: u64,
    },
    /// The winner's announcement.
    Announce {
        /// The leader's label.
        id: u64,
    },
}

impl Message for HsMsg {
    fn bit_len(&self) -> usize {
        match self {
            HsMsg::Probe { .. } => 2 + 64 + 64,
            HsMsg::Reply { .. } | HsMsg::Announce { .. } => 2 + 64,
        }
    }
}

/// The Hirschberg–Sinclair process.
#[derive(Debug, Clone)]
pub struct HirschbergSinclair {
    id: u64,
    phase: u32,
    replies: u8,
}

impl HirschbergSinclair {
    /// Creates the process with the given distinct label.
    #[must_use]
    pub fn new(id: u64) -> HirschbergSinclair {
        HirschbergSinclair {
            id,
            phase: 0,
            replies: 0,
        }
    }

    fn launch(&self) -> Actions<HsMsg, Elected> {
        let probe = HsMsg::Probe {
            id: self.id,
            hops_left: 1 << self.phase,
        };
        Actions::send(Port::Left, probe)
            .and_send(Port::Right, probe)
            .in_span("probe", u64::from(self.phase))
    }
}

impl AsyncProcess for HirschbergSinclair {
    type Msg = HsMsg;
    type Output = Elected;

    fn on_start(&mut self) -> Actions<HsMsg, Elected> {
        self.launch()
    }

    fn on_message(&mut self, from: Port, msg: HsMsg) -> Actions<HsMsg, Elected> {
        match msg {
            HsMsg::Probe { id, hops_left } => {
                if id == self.id {
                    // Our own probe circled the whole ring: we dominate it.
                    return Actions::send(Port::Right, HsMsg::Announce { id })
                        .in_span("announce", 0);
                }
                if id < self.id {
                    return Actions::idle(); // swallowed
                }
                // Relays cannot recover the probe's phase number (the
                // message carries only the remaining budget), so forwarded
                // traffic aggregates under round 0; the per-phase profile
                // counts launches, which the paper's 4·2ᵏ bound is about.
                if hops_left > 1 {
                    Actions::send(
                        from.opposite(),
                        HsMsg::Probe {
                            id,
                            hops_left: hops_left - 1,
                        },
                    )
                    .in_span("forward", 0)
                } else {
                    // Budget exhausted here: acknowledge back.
                    Actions::send(from, HsMsg::Reply { id }).in_span("reply", 0)
                }
            }
            HsMsg::Reply { id } => {
                if id != self.id {
                    return Actions::send(from.opposite(), HsMsg::Reply { id }).in_span("reply", 0);
                }
                self.replies += 1;
                if self.replies == 2 {
                    self.replies = 0;
                    self.phase += 1;
                    self.launch()
                } else {
                    Actions::idle()
                }
            }
            HsMsg::Announce { id } => {
                if id == self.id {
                    Actions::halt(Elected {
                        leader: id,
                        is_leader: true,
                    })
                } else {
                    Actions::send(Port::Right, HsMsg::Announce { id })
                        .and_halt(Elected {
                            leader: id,
                            is_leader: false,
                        })
                        .in_span("announce", 0)
                }
            }
        }
    }
}

/// Runs Hirschberg–Sinclair on a ring of distinct labels.
///
/// The probing phases work on any orientation (each processor uses its
/// own port names consistently); the final announcement lap assumes an
/// oriented ring.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented or labels repeat.
pub fn run(
    config: &RingConfig<u64>,
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Elected>, SimError> {
    assert!(config.topology().is_oriented(), "needs an oriented ring");
    let mut sorted = config.inputs().to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.n(), "labels must be distinct");
    let mut engine = AsyncEngine::from_config(config, |_, &id| HirschbergSinclair::new(id));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_election;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler, SynchronizingScheduler};

    #[test]
    fn elects_maximum_under_any_schedule() {
        for ids in [
            vec![3u64, 1, 4, 15, 5, 9, 2, 6],
            vec![10, 20],
            vec![2, 1, 3],
            (0..33u64).map(|i| (i * 2654435761) % 1000003).collect(),
        ] {
            let config = RingConfig::oriented(ids.clone());
            for seed in 0..4 {
                let report = run(&config, &mut RandomScheduler::new(seed)).unwrap();
                assert_valid_election(&ids, report.outputs());
            }
            let report = run(&config, &mut SynchronizingScheduler).unwrap();
            assert_valid_election(&ids, report.outputs());
        }
    }

    #[test]
    fn message_bound_is_n_log_n() {
        for n in [8usize, 16, 32, 64, 128] {
            // Adversarial: sorted labels force long survivals.
            for ids in [
                (1..=n as u64).collect::<Vec<_>>(),
                (1..=n as u64).rev().collect::<Vec<_>>(),
                (0..n as u64).map(|i| (i * 2654435761) % 999983).collect(),
            ] {
                let config = RingConfig::oriented(ids.clone());
                let report = run(&config, &mut FifoScheduler).unwrap();
                let bound = 8.0 * n as f64 * ((n as f64).log2() + 2.0) + n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n}: {} messages > {bound}",
                    report.messages
                );
                assert_valid_election(&ids, report.outputs());
            }
        }
    }

    #[test]
    fn beats_chang_roberts_worst_case() {
        let n = 64u64;
        let worst: Vec<u64> = (1..=n).rev().collect();
        let config = RingConfig::oriented(worst);
        let hs = run(&config, &mut FifoScheduler).unwrap();
        let cr = crate::chang_roberts::run(&config, &mut FifoScheduler).unwrap();
        assert!(
            hs.messages * 2 < cr.messages,
            "HS {} vs CR {}",
            hs.messages,
            cr.messages
        );
    }
}
