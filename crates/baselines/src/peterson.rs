//! Peterson's unidirectional election in `O(n log n)` messages
//! (TOPLAS 1982) — the same bound the Dolev–Klawe–Rodeh algorithm
//! achieves, with messages flowing in one direction only.
//!
//! Active processors hold *temporary* identifiers that migrate around the
//! ring: in each round an active compares the identifier arriving from
//! its active predecessor (`t1`) with its own (`tid`) and its
//! pre-predecessor's (`t2`); it survives — adopting `t1` — iff `t1` is a
//! strict local maximum. At least half the actives retire per round, so
//! after `O(log n)` rounds a single active remains; it recognises its own
//! identifier returning and announces the maximum.

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::Elected;

/// Peterson messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PetersonMsg {
    /// A circulating temporary identifier.
    Tid(u64),
    /// The winner's announcement (carries the maximum label).
    Announce(u64),
}

impl Message for PetersonMsg {
    fn bit_len(&self) -> usize {
        1 + 64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Still competing; `false` = waiting for the round's first
    /// identifier, `true` = waiting for the second.
    Active {
        await_second: bool,
    },
    Relay,
    Announced,
}

/// The Peterson process.
#[derive(Debug, Clone)]
pub struct Peterson {
    id: u64,
    tid: u64,
    t1: u64,
    role: Role,
}

impl Peterson {
    /// Creates the process with the given distinct label.
    #[must_use]
    pub fn new(id: u64) -> Peterson {
        Peterson {
            id,
            tid: id,
            t1: 0,
            role: Role::Active {
                await_second: false,
            },
        }
    }
}

impl AsyncProcess for Peterson {
    type Msg = PetersonMsg;
    type Output = Elected;

    fn on_start(&mut self) -> Actions<PetersonMsg, Elected> {
        Actions::send(Port::Right, PetersonMsg::Tid(self.tid))
    }

    fn on_message(&mut self, from: Port, msg: PetersonMsg) -> Actions<PetersonMsg, Elected> {
        debug_assert_eq!(from, Port::Left, "unidirectional algorithm");
        match (msg, self.role) {
            (PetersonMsg::Tid(_), Role::Announced) => {
                // Stale identifiers may still be in flight after the
                // decision; the announcement supersedes them.
                Actions::idle()
            }
            (PetersonMsg::Tid(t), Role::Relay) => Actions::send(Port::Right, PetersonMsg::Tid(t)),
            (
                PetersonMsg::Tid(t),
                Role::Active {
                    await_second: false,
                },
            ) => {
                if t == self.tid {
                    // Sole survivor: the identifier circled back.
                    self.role = Role::Announced;
                    return Actions::send(Port::Right, PetersonMsg::Announce(t));
                }
                self.t1 = t;
                self.role = Role::Active { await_second: true };
                // Pass the *received* identifier on, so the next active
                // learns its pre-predecessor's value.
                Actions::send(Port::Right, PetersonMsg::Tid(t))
            }
            (PetersonMsg::Tid(t2), Role::Active { await_second: true }) => {
                if self.t1 > self.tid && self.t1 > t2 {
                    // The predecessor's identifier is a strict local
                    // maximum: carry it into the next round.
                    self.tid = self.t1;
                    self.role = Role::Active {
                        await_second: false,
                    };
                    Actions::send(Port::Right, PetersonMsg::Tid(self.tid))
                } else {
                    self.role = Role::Relay;
                    Actions::idle()
                }
            }
            (PetersonMsg::Announce(max), role) => {
                if role == Role::Announced {
                    Actions::halt(Elected {
                        leader: max,
                        is_leader: self.id == max,
                    })
                } else {
                    Actions::send(Port::Right, PetersonMsg::Announce(max)).and_halt(Elected {
                        leader: max,
                        is_leader: self.id == max,
                    })
                }
            }
        }
    }
}

/// Runs Peterson's algorithm on an oriented ring of distinct labels.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented or labels repeat.
pub fn run(
    config: &RingConfig<u64>,
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Elected>, SimError> {
    assert!(config.topology().is_oriented(), "needs an oriented ring");
    let mut sorted = config.inputs().to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.n(), "labels must be distinct");
    let mut engine = AsyncEngine::from_config(config, |_, &id| Peterson::new(id));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_election;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler};

    #[test]
    fn elects_maximum_under_any_schedule() {
        for ids in [
            vec![3u64, 1, 4, 15, 5, 9, 2, 6],
            vec![10, 20],
            vec![2, 1, 3],
            vec![5, 4, 3, 2, 1, 9, 8, 7, 6],
            (0..40u64).map(|i| (i * 48271) % 99991).collect(),
        ] {
            let config = RingConfig::oriented(ids.clone());
            for seed in 0..4 {
                let report = run(&config, &mut RandomScheduler::new(seed)).unwrap();
                assert_valid_election(&ids, report.outputs());
            }
        }
    }

    #[test]
    fn message_bound_is_n_log_n() {
        for n in [8usize, 32, 128, 256] {
            for ids in [
                (1..=n as u64).collect::<Vec<_>>(),
                (1..=n as u64).rev().collect::<Vec<_>>(),
                (0..n as u64).map(|i| (i * 2654435761) % 999983).collect(),
            ] {
                let config = RingConfig::oriented(ids.clone());
                let report = run(&config, &mut FifoScheduler).unwrap();
                let bound = 2.0 * n as f64 * ((n as f64).log2() + 2.0) + 2.0 * n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n}: {} messages > {bound}",
                    report.messages
                );
                assert_valid_election(&ids, report.outputs());
            }
        }
    }
}
