//! Franklin's bidirectional election (CACM 1982): `O(n log n)` messages.
//!
//! Each round, every surviving candidate sends its label both ways;
//! passives relay. A candidate survives iff it is a *strict local
//! maximum* among surviving candidates — it beats the nearest survivor
//! on each side — so at least half retire per round. A label returning
//! to its own sender means no other candidate absorbed it: that sender
//! is the ring maximum and announces.
//!
//! Compared with Hirschberg–Sinclair (also bidirectional), Franklin needs
//! no hop budgets: distances grow implicitly as candidates thin out.

use std::collections::VecDeque;

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::Elected;

/// Franklin messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FranklinMsg {
    /// A candidate's label, travelling until the next candidate.
    Value(u64),
    /// The winner's announcement.
    Announce(u64),
}

impl Message for FranklinMsg {
    fn bit_len(&self) -> usize {
        1 + 64
    }
}

/// The Franklin process.
#[derive(Debug, Clone)]
pub struct Franklin {
    id: u64,
    active: bool,
    announced: bool,
    /// Election round this candidate is in (survivals increment it).
    round: u64,
    /// Buffered candidate values per port, in FIFO (= round) order.
    pending: [VecDeque<u64>; 2],
}

impl Franklin {
    /// Creates the process with the given distinct label.
    #[must_use]
    pub fn new(id: u64) -> Franklin {
        Franklin {
            id,
            active: true,
            announced: false,
            round: 0,
            pending: [VecDeque::new(), VecDeque::new()],
        }
    }

    /// Decides rounds while values from both sides are available.
    fn decide(&mut self) -> Actions<FranklinMsg, Elected> {
        let mut actions = Actions::idle();
        while self.active && !self.pending[0].is_empty() && !self.pending[1].is_empty() {
            let left = self.pending[0].pop_front().expect("checked");
            let right = self.pending[1].pop_front().expect("checked");
            if left == self.id || right == self.id {
                // Our label circumnavigated: sole survivor.
                self.active = false;
                self.announced = true;
                return actions
                    .and_send(Port::Right, FranklinMsg::Announce(self.id))
                    .in_span("announce", self.round);
            }
            if self.id > left && self.id > right {
                // Strict local maximum: next round.
                self.round += 1;
                actions = actions
                    .and_send(Port::Left, FranklinMsg::Value(self.id))
                    .and_send(Port::Right, FranklinMsg::Value(self.id))
                    .in_span("value", self.round);
            } else {
                self.active = false;
                // Retired candidates relay anything still buffered.
                for (slot, out) in [(0usize, Port::Right), (1, Port::Left)] {
                    while let Some(v) = self.pending[slot].pop_front() {
                        actions = actions.and_send(out, FranklinMsg::Value(v));
                    }
                }
            }
        }
        actions
    }
}

impl AsyncProcess for Franklin {
    type Msg = FranklinMsg;
    type Output = Elected;

    fn on_start(&mut self) -> Actions<FranklinMsg, Elected> {
        Actions::send(Port::Left, FranklinMsg::Value(self.id))
            .and_send(Port::Right, FranklinMsg::Value(self.id))
            .in_span("value", 0)
    }

    fn on_message(&mut self, from: Port, msg: FranklinMsg) -> Actions<FranklinMsg, Elected> {
        match msg {
            FranklinMsg::Value(v) => {
                if self.active {
                    self.pending[usize::from(from == Port::Right)].push_back(v);
                    self.decide()
                } else {
                    // Relay onwards in the same rotational direction (a
                    // relay cannot know the value's round; see HS).
                    Actions::send(from.opposite(), FranklinMsg::Value(v)).in_span("relay", 0)
                }
            }
            FranklinMsg::Announce(leader) => {
                if self.announced {
                    Actions::halt(Elected {
                        leader,
                        is_leader: self.id == leader,
                    })
                } else {
                    self.announced = true;
                    Actions::send(Port::Right, FranklinMsg::Announce(leader))
                        .and_halt(Elected {
                            leader,
                            is_leader: self.id == leader,
                        })
                        .in_span("announce", 0)
                }
            }
        }
    }
}

/// Runs Franklin's algorithm on an oriented ring of distinct labels.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented or labels repeat.
pub fn run(
    config: &RingConfig<u64>,
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Elected>, SimError> {
    assert!(config.topology().is_oriented(), "needs an oriented ring");
    let mut sorted = config.inputs().to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.n(), "labels must be distinct");
    let mut engine = AsyncEngine::from_config(config, |_, &id| Franklin::new(id));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_election;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler, SynchronizingScheduler};

    #[test]
    fn elects_maximum_under_any_schedule() {
        for ids in [
            vec![3u64, 1, 4, 14, 5, 9, 2, 6],
            vec![10, 20],
            vec![2, 1, 3],
            vec![5, 4, 3, 2, 1, 9, 8, 7, 6],
            (0..40u64).map(|i| (i * 48271) % 99991).collect(),
        ] {
            let config = RingConfig::oriented(ids.clone());
            let report = run(&config, &mut SynchronizingScheduler).unwrap();
            assert_valid_election(&ids, report.outputs());
            for seed in 0..4 {
                let report = run(&config, &mut RandomScheduler::new(seed)).unwrap();
                assert_valid_election(&ids, report.outputs());
            }
        }
    }

    #[test]
    fn message_bound_is_n_log_n() {
        for n in [8usize, 32, 128, 512] {
            for ids in [
                (1..=n as u64).collect::<Vec<_>>(),
                (1..=n as u64).rev().collect::<Vec<_>>(),
                (0..n as u64).map(|i| (i * 2654435761) % 999983).collect(),
            ] {
                let config = RingConfig::oriented(ids.clone());
                let report = run(&config, &mut FifoScheduler).unwrap();
                let bound = 2.0 * n as f64 * ((n as f64).log2() + 2.0) + 2.0 * n as f64;
                assert!(
                    (report.messages as f64) <= bound,
                    "n={n}: {} messages > {bound}",
                    report.messages
                );
                assert_valid_election(&ids, report.outputs());
            }
        }
    }
}
