//! Chang–Roberts unidirectional election: simple, `O(n log n)` expected
//! messages, `Θ(n²)` worst case (ids sorted against the ring direction).

use anonring_sim::r#async::{Actions, AsyncEngine, AsyncProcess, AsyncReport, Emit, Scheduler};
use anonring_sim::{Message, Port, RingConfig, SimError};

use crate::Elected;

/// Chang–Roberts messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrMsg {
    /// A circulating candidacy.
    Candidate(u64),
    /// The winner's announcement.
    Announce(u64),
}

impl Message for CrMsg {
    fn bit_len(&self) -> usize {
        1 + 64
    }
}

/// The Chang–Roberts process (oriented rings; candidacies travel
/// rightward).
#[derive(Debug, Clone)]
pub struct ChangRoberts {
    id: u64,
}

impl ChangRoberts {
    /// Creates the process with the given distinct label.
    #[must_use]
    pub fn new(id: u64) -> ChangRoberts {
        ChangRoberts { id }
    }
}

impl AsyncProcess for ChangRoberts {
    type Msg = CrMsg;
    type Output = Elected;

    fn on_start(&mut self) -> Actions<CrMsg, Elected> {
        Actions::send(Port::Right, CrMsg::Candidate(self.id))
    }

    fn on_message(&mut self, from: Port, msg: CrMsg) -> Actions<CrMsg, Elected> {
        debug_assert_eq!(from, Port::Left, "unidirectional algorithm");
        match msg {
            CrMsg::Candidate(j) if j > self.id => Actions::send(Port::Right, CrMsg::Candidate(j)),
            CrMsg::Candidate(j) if j < self.id => Actions::idle(),
            CrMsg::Candidate(_) => {
                // Own candidacy circled the ring: elected.
                Actions::send(Port::Right, CrMsg::Announce(self.id))
            }
            CrMsg::Announce(leader) if leader == self.id => Actions::halt(Elected {
                leader,
                is_leader: true,
            }),
            CrMsg::Announce(leader) => Actions::send(Port::Right, CrMsg::Announce(leader))
                .and_halt(Elected {
                    leader,
                    is_leader: false,
                }),
        }
    }
}

/// Runs Chang–Roberts on an oriented ring of distinct labels.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the ring is not oriented or labels repeat.
pub fn run(
    config: &RingConfig<u64>,
    scheduler: &mut dyn Scheduler,
) -> Result<AsyncReport<Elected>, SimError> {
    assert!(config.topology().is_oriented(), "needs an oriented ring");
    let mut sorted = config.inputs().to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.n(), "labels must be distinct");
    let mut engine = AsyncEngine::from_config(config, |_, &id| ChangRoberts::new(id));
    engine.run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_valid_election;
    use anonring_sim::r#async::{FifoScheduler, RandomScheduler};

    #[test]
    fn elects_maximum_under_any_schedule() {
        for ids in [
            vec![3u64, 1, 4, 14, 5, 9, 2, 6],
            vec![10, 20],
            vec![5, 4, 3, 2, 1],
            vec![1, 2, 3, 4, 5],
        ] {
            let config = RingConfig::oriented(ids.clone());
            for seed in 0..5 {
                let report = run(&config, &mut RandomScheduler::new(seed)).unwrap();
                assert_valid_election(&ids, report.outputs());
            }
        }
    }

    #[test]
    fn worst_case_is_quadratic_best_case_linear() {
        let n = 32u64;
        // Decreasing along the send direction: id k survives k hops.
        let worst: Vec<u64> = (1..=n).rev().collect();
        let best: Vec<u64> = (1..=n).collect();
        let wr = run(&RingConfig::oriented(worst), &mut FifoScheduler).unwrap();
        let br = run(&RingConfig::oriented(best), &mut FifoScheduler).unwrap();
        // worst: sum_{k=1..n} k candidates hops + n announce.
        assert_eq!(wr.messages, n * (n + 1) / 2 + n);
        // best: every candidacy dies after one hop except the max.
        assert_eq!(br.messages, (n - 1) + n + n);
        assert!(wr.messages > 4 * br.messages);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicate_labels() {
        let config = RingConfig::oriented(vec![1u64, 2, 1]);
        let _ = run(&config, &mut FifoScheduler);
    }
}
