//! # anonring-baselines
//!
//! Leader election and input collection on **labelled** rings — the
//! classical algorithms the paper contrasts its anonymous-ring results
//! against ([5, 8, 12] in its bibliography):
//!
//! * [`hirschberg_sinclair`] — bidirectional election in `O(n log n)`
//!   messages (Hirschberg & Sinclair, CACM 1980);
//! * [`peterson`] — unidirectional election in `O(n log n)` messages
//!   (Peterson, TOPLAS 1982; same bound as Dolev–Klawe–Rodeh);
//! * [`franklin`] — bidirectional local-maxima election in `O(n log n)`
//!   messages without hop budgets (Franklin, CACM 1982);
//! * [`chang_roberts`] — the simple unidirectional algorithm:
//!   `O(n log n)` expected, `Θ(n²)` worst case;
//! * [`leader_collect`] — once a leader exists, full input distribution
//!   costs `2n` further messages (the paper's introduction);
//! * [`flood_all`] — the label-oblivious `Θ(n²)` everyone-floods
//!   baseline, the cost anonymous rings cannot avoid for AND/minimum
//!   (Corollary 5.2).
//!
//! Together these reproduce the paper's framing: with distinct labels,
//! extrema finding costs `Θ(n log n)`; without them, `Θ(n²)`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chang_roberts;
pub mod flood_all;
pub mod franklin;
pub mod hirschberg_sinclair;
pub mod leader_collect;
pub mod peterson;

/// Output of an election: the elected leader's label and whether this
/// processor is the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Elected {
    /// The leader's label (the ring maximum).
    pub leader: u64,
    /// Whether this processor is the leader.
    pub is_leader: bool,
}

/// Validates an election result against the ground truth.
///
/// # Panics
///
/// Panics (with a description) if the outputs are not a correct election
/// of the maximum label.
pub fn assert_valid_election(ids: &[u64], outputs: &[Elected]) {
    let max = ids.iter().copied().max().expect("nonempty ring");
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.leader, max, "processor {i} elected {}", out.leader);
        assert_eq!(
            out.is_leader,
            ids[i] == max,
            "processor {i} leadership flag"
        );
    }
}
