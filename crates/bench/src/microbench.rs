//! A tiny wall-clock micro-benchmark harness.
//!
//! The workspace previously used criterion for its `benches/` targets, but
//! the build container cannot fetch registry crates, so the bench binaries
//! are plain `fn main` programs built on this module instead. It keeps the
//! part that matters for the ROADMAP's perf trajectory — stable named
//! series with per-element throughput — without statistical machinery.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Short on purpose: these run in
/// CI on shared hardware, and the JSON sweep artifact is the canonical
/// perf record, not these spot numbers.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u32 = 1000;

/// A named group of related measurements, printed as a markdown table.
pub struct Group {
    name: String,
    rows: Vec<(String, f64, u32, Option<u64>)>,
}

impl Group {
    /// Start a new benchmark group.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Measure `f`, reporting mean wall time per iteration under `name`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        self.bench_with_elements(name, None, &mut f);
    }

    /// Like [`Group::bench`] but also reports throughput as
    /// `elements / second`.
    pub fn bench_elements<R>(&mut self, name: &str, elements: u64, mut f: impl FnMut() -> R) {
        self.bench_with_elements(name, Some(elements), &mut f);
    }

    fn bench_with_elements<R>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        f: &mut impl FnMut() -> R,
    ) {
        // One untimed warmup settles caches and gives a duration estimate.
        let warm = Instant::now();
        std::hint::black_box(f());
        let est = warm.elapsed().max(Duration::from_nanos(100));
        let iters = u32::try_from(TARGET.as_nanos() / est.as_nanos())
            .unwrap_or(MAX_ITERS)
            .clamp(1, MAX_ITERS);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean = start.elapsed().as_secs_f64() / f64::from(iters);
        self.rows.push((name.to_string(), mean, iters, elements));
    }

    /// Print the group's results and consume it.
    pub fn finish(self) {
        println!("\n### {}\n", self.name);
        println!("| benchmark | mean time | iters | throughput |");
        println!("|---|---|---|---|");
        for (name, mean, iters, elements) in &self.rows {
            let throughput = match elements {
                Some(e) => format!("{:.3e} elem/s", *e as f64 / mean),
                None => "-".to_string(),
            };
            println!(
                "| {} | {} | {} | {} |",
                name,
                format_duration(*mean),
                iters,
                throughput
            );
        }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::Group;

    #[test]
    fn groups_record_and_render() {
        let mut g = Group::new("smoke");
        g.bench("noop", || 1 + 1);
        g.bench_elements("counted", 10, || (0..10).sum::<u64>());
        assert_eq!(g.rows.len(), 2);
        assert!(g
            .rows
            .iter()
            .all(|(_, mean, iters, _)| *mean >= 0.0 && *iters >= 1));
        g.finish();
    }
}
